//! Per-morsel zone maps: min/max statistics over fixed-size row ranges.
//!
//! A zone map lets comparison predicates skip whole morsels without touching
//! the data: if a morsel's `[min, max]` range cannot satisfy `col > 900`,
//! none of its rows can. Statistics are kept per Int/Float column only —
//! categorical filters go through dictionary-code masks instead — and cover
//! *valid* rows only, so an all-NULL morsel reports no zone (nothing in it
//! can ever match a comparison).

use crate::column::ColumnData;

/// Rows per morsel. This is also the batch size of the vectorized engines;
/// keeping the two aligned means each scan batch maps to exactly one zone.
pub const MORSEL_ROWS: usize = 2048;

/// Number of morsels needed to cover `rows` rows.
pub fn morsel_count(rows: usize) -> usize {
    rows.div_ceil(MORSEL_ROWS)
}

/// Half-open row range of morsel `m` in a table of `rows` rows.
pub fn morsel_bounds(m: usize, rows: usize) -> (usize, usize) {
    let start = m * MORSEL_ROWS;
    (start, (start + MORSEL_ROWS).min(rows))
}

/// Min/max over the valid rows of one morsel of one column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Zone {
    /// Int column morsel with at least one valid row.
    Int {
        /// Smallest valid value in the morsel.
        min: i64,
        /// Largest valid value in the morsel.
        max: i64,
    },
    /// Float column morsel with at least one valid row (extrema under
    /// `total_cmp`).
    Float {
        /// Smallest valid value in the morsel.
        min: f64,
        /// Largest valid value in the morsel.
        max: f64,
    },
    /// Every row in the morsel is NULL: no comparison can match.
    AllNull,
}

/// Zones for one column, indexed by morsel.
#[derive(Debug, Clone)]
pub struct ColumnZones {
    zones: Vec<Zone>,
}

impl ColumnZones {
    /// Wrap a per-morsel zone vector (index = morsel number).
    pub fn new(zones: Vec<Zone>) -> ColumnZones {
        ColumnZones { zones }
    }

    /// Zone of morsel `m`.
    pub fn zone(&self, m: usize) -> Zone {
        self.zones[m]
    }

    /// All zones, indexed by morsel.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Number of morsels covered.
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// True when the column spans no morsels (empty table).
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }
}

/// Zone maps for every column of a table. Columns without min/max
/// statistics (Str, Bool) hold `None`.
#[derive(Debug, Clone)]
pub struct ZoneMaps {
    n_morsels: usize,
    columns: Vec<Option<ColumnZones>>,
}

impl ZoneMaps {
    /// Build zone maps over `columns`, each holding `rows` rows.
    pub fn build(columns: &[ColumnData], rows: usize) -> ZoneMaps {
        let n_morsels = morsel_count(rows);
        let columns = columns
            .iter()
            .map(|col| match col {
                ColumnData::Int { data, valid } => Some(ColumnZones {
                    zones: int_zones(data, valid, rows),
                }),
                ColumnData::Float { data, valid } => Some(ColumnZones {
                    zones: float_zones(data, valid, rows),
                }),
                ColumnData::Bool { .. } | ColumnData::Str { .. } => None,
            })
            .collect();
        ZoneMaps { n_morsels, columns }
    }

    /// Assemble zone maps from pre-computed per-column zones — the eager
    /// path used by chunked generation, where each worker computes the
    /// zones of its own chunk and the assembler concatenates them.
    ///
    /// # Panics
    /// Panics if any `Some` column covers a number of morsels other than
    /// `n_morsels`.
    pub fn from_column_zones(n_morsels: usize, columns: Vec<Option<ColumnZones>>) -> ZoneMaps {
        for col in columns.iter().flatten() {
            assert_eq!(col.len(), n_morsels, "column zone count mismatch");
        }
        ZoneMaps { n_morsels, columns }
    }

    /// Number of morsels per column.
    pub fn n_morsels(&self) -> usize {
        self.n_morsels
    }

    /// Zones of column `idx`, if it carries statistics.
    pub fn column(&self, idx: usize) -> Option<&ColumnZones> {
        self.columns[idx].as_ref()
    }
}

fn int_zones(data: &[i64], valid: &[bool], rows: usize) -> Vec<Zone> {
    (0..morsel_count(rows))
        .map(|m| {
            let (start, end) = morsel_bounds(m, rows);
            let mut min = i64::MAX;
            let mut max = i64::MIN;
            let mut any = false;
            for i in start..end {
                if !valid.is_empty() && !valid[i] {
                    continue;
                }
                any = true;
                min = min.min(data[i]);
                max = max.max(data[i]);
            }
            if any {
                Zone::Int { min, max }
            } else {
                Zone::AllNull
            }
        })
        .collect()
}

fn float_zones(data: &[f64], valid: &[bool], rows: usize) -> Vec<Zone> {
    // Extrema are taken under `total_cmp` — the same order the comparison
    // kernels use — so the zone stays a sound bound even for -0.0 vs 0.0
    // and NaN payloads (NaN is simply the total-order maximum/minimum).
    (0..morsel_count(rows))
        .map(|m| {
            let (start, end) = morsel_bounds(m, rows);
            let mut min = 0.0f64;
            let mut max = 0.0f64;
            let mut any = false;
            for i in start..end {
                if !valid.is_empty() && !valid[i] {
                    continue;
                }
                let v = data[i];
                if !any {
                    (min, max, any) = (v, v, true);
                } else {
                    if v.total_cmp(&min) == std::cmp::Ordering::Less {
                        min = v;
                    }
                    if v.total_cmp(&max) == std::cmp::Ordering::Greater {
                        max = v;
                    }
                }
            }
            if any {
                Zone::Float { min, max }
            } else {
                Zone::AllNull
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use crate::ColumnBuilder;

    fn int_col(vals: impl IntoIterator<Item = Option<i64>>) -> ColumnData {
        let vals: Vec<_> = vals.into_iter().collect();
        let mut b = ColumnBuilder::int(vals.len());
        for v in vals {
            b.push(v.map_or(Value::Null, Value::Int));
        }
        b.finish()
    }

    #[test]
    fn morsel_arithmetic() {
        assert_eq!(morsel_count(0), 0);
        assert_eq!(morsel_count(1), 1);
        assert_eq!(morsel_count(MORSEL_ROWS), 1);
        assert_eq!(morsel_count(MORSEL_ROWS + 1), 2);
        assert_eq!(
            morsel_bounds(1, MORSEL_ROWS + 10),
            (MORSEL_ROWS, MORSEL_ROWS + 10)
        );
    }

    #[test]
    fn int_zone_spans_valid_rows_only() {
        let col = int_col([Some(5), None, Some(-3), Some(9)]);
        let maps = ZoneMaps::build(std::slice::from_ref(&col), 4);
        assert_eq!(maps.n_morsels(), 1);
        let zones = maps.column(0).unwrap();
        assert_eq!(zones.zone(0), Zone::Int { min: -3, max: 9 });
    }

    #[test]
    fn all_null_morsel_has_no_zone() {
        let col = int_col([None, None]);
        let maps = ZoneMaps::build(std::slice::from_ref(&col), 2);
        assert_eq!(maps.column(0).unwrap().zone(0), Zone::AllNull);
    }

    #[test]
    fn second_morsel_gets_own_bounds() {
        let n = MORSEL_ROWS + 3;
        let vals: Vec<Option<i64>> = (0..n as i64).map(Some).collect();
        let col = int_col(vals);
        let maps = ZoneMaps::build(std::slice::from_ref(&col), n);
        assert_eq!(maps.n_morsels(), 2);
        let zones = maps.column(0).unwrap();
        assert_eq!(
            zones.zone(0),
            Zone::Int {
                min: 0,
                max: MORSEL_ROWS as i64 - 1
            }
        );
        assert_eq!(
            zones.zone(1),
            Zone::Int {
                min: MORSEL_ROWS as i64,
                max: n as i64 - 1
            }
        );
    }

    #[test]
    fn float_nan_is_total_order_maximum() {
        let mut b = ColumnBuilder::float(3);
        b.push(Value::Float(1.0));
        b.push(Value::Float(f64::NAN));
        b.push(Value::Float(2.0));
        let col = b.finish();
        let maps = ZoneMaps::build(std::slice::from_ref(&col), 3);
        match maps.column(0).unwrap().zone(0) {
            Zone::Float { min, max } => {
                assert_eq!(min, 1.0);
                assert!(max.is_nan(), "NaN sorts above +inf under total_cmp");
            }
            z => panic!("unexpected zone {z:?}"),
        }
    }

    #[test]
    fn float_negative_zero_is_the_minimum() {
        let mut b = ColumnBuilder::float(2);
        b.push(Value::Float(0.0));
        b.push(Value::Float(-0.0));
        let col = b.finish();
        let maps = ZoneMaps::build(std::slice::from_ref(&col), 2);
        match maps.column(0).unwrap().zone(0) {
            Zone::Float { min, max } => {
                assert!(min.is_sign_negative() && min == 0.0);
                assert!(max.is_sign_positive() && max == 0.0);
            }
            z => panic!("unexpected zone {z:?}"),
        }
    }

    #[test]
    fn categorical_columns_carry_no_zones() {
        let mut b = ColumnBuilder::string(1);
        b.push(Value::str("A"));
        let col = b.finish();
        let maps = ZoneMaps::build(std::slice::from_ref(&col), 1);
        assert!(maps.column(0).is_none());
    }
}
