//! The dynamic value type shared by storage, engines, and result sets.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single cell value.
///
/// Temporal values are stored as `Int` epoch seconds; the schema's
/// [`ColumnRole`](crate::schema::ColumnRole) records that a column is
/// temporal.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer (also temporal epoch seconds).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Interned string.
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Numeric view of the value (`Int` and `Float` only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view of the value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// String view of the value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL-style three-valued *equality*: `None` when either side is NULL.
    /// Values of different type classes (e.g. string vs number) are simply
    /// not equal — matching `IN`-list membership semantics, so the
    /// normalizer's `IN (x)` ⇄ `= x` rewrite is behavior-preserving.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self == other)
    }

    /// SQL-style three-valued *ordered* comparison: `None` when either side
    /// is NULL or the values are incomparable (e.g. string vs number).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Some(x.total_cmp(&y)),
                _ => None,
            },
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order used for grouping/sorting: NULL < Bool < numbers < Str,
    /// with `Int`/`Float` compared numerically.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int/Float hash identically when numerically equal, matching Eq.
            Value::Int(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_numeric_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn hash_consistent_with_eq_across_types() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
    }

    #[test]
    fn sql_cmp_null_propagates() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_incomparable_types() {
        assert_eq!(Value::str("a").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn sql_cmp_numbers_and_strings() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("b").sql_cmp(&Value::str("a")),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn total_order_ranks_types() {
        let mut vs = [
            Value::str("x"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
        ];
        vs.sort();
        assert!(vs[0].is_null());
        assert_eq!(vs[3], Value::str("x"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(Value::Float(1.5).to_string(), "1.5");
    }
}
