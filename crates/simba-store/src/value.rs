//! The dynamic value type shared by storage, engines, and result sets.

use serde::{Content, Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single cell value.
///
/// Temporal values are stored as `Int` epoch seconds; the schema's
/// [`ColumnRole`](crate::schema::ColumnRole) records that a column is
/// temporal.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer (also temporal epoch seconds).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Interned string.
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Numeric view of the value (`Int` and `Float` only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view of the value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// String view of the value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL-style three-valued *equality*: `None` when either side is NULL.
    /// Values of different type classes (e.g. string vs number) are simply
    /// not equal — matching `IN`-list membership semantics, so the
    /// normalizer's `IN (x)` ⇄ `= x` rewrite is behavior-preserving.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self == other)
    }

    /// SQL-style three-valued *ordered* comparison: `None` when either side
    /// is NULL or the values are incomparable (e.g. string vs number).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Some(x.total_cmp(&y)),
                _ => None,
            },
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order used for grouping/sorting: NULL < Bool < numbers < Str,
    /// with `Int`/`Float` compared numerically.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int/Float hash identically when numerically equal, matching Eq.
            Value::Int(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

/// Object key marking a float shipped as raw IEEE-754 bits (see the
/// [`Serialize`] impl for when that escape hatch is taken).
const FLOAT_BITS_KEY: &str = "$f";

/// Threshold above which an integral float's JSON rendering would lose its
/// `.0` marker and re-parse as an integer; such values (and non-finite
/// ones, which JSON cannot express at all) ship as raw bits instead.
const FLOAT_AS_TEXT_LIMIT: f64 = 1e15;

impl Serialize for Value {
    /// JSON-friendly encoding that still round-trips *variant-exactly*:
    /// `Int(3)` and `Float(3.0)` must come back as different variants
    /// (fingerprints hash the `Debug` form, which distinguishes them).
    ///
    /// * `Null`/`Bool`/`Int`/`Str` map to the corresponding JSON scalars.
    /// * Finite floats map to JSON numbers: the vendored `serde_json`
    ///   prints integral floats with a trailing `.0` (below
    ///   `FLOAT_AS_TEXT_LIMIT`, 1e15) and uses Rust's shortest
    ///   round-trip formatting otherwise, so the exact bit pattern
    ///   survives.
    /// * Floats JSON cannot faithfully carry — NaN, infinities, and huge
    ///   integral values whose rendering would drop the `.0` — ship as
    ///   `{"$f": <bits>}` with the raw IEEE-754 bit pattern.
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Int(v) => Content::I64(*v),
            Value::Float(v) => {
                let printable =
                    v.is_finite() && (v.fract() != 0.0 || v.abs() < FLOAT_AS_TEXT_LIMIT);
                if printable {
                    Content::F64(*v)
                } else {
                    Content::Map(vec![(
                        FLOAT_BITS_KEY.to_string(),
                        Content::U64(v.to_bits()),
                    )])
                }
            }
            Value::Str(s) => Content::Str(s.to_string()),
        }
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Null => Ok(Value::Null),
            Content::Bool(b) => Ok(Value::Bool(*b)),
            Content::I64(v) => Ok(Value::Int(*v)),
            Content::U64(v) => i64::try_from(*v)
                .map(Value::Int)
                .map_err(|_| format!("integer {v} out of range for a Value")),
            Content::F64(v) => Ok(Value::Float(*v)),
            Content::Str(s) => Ok(Value::str(s)),
            // The JSON parser yields I64 for bit patterns that fit in an
            // i64 and U64 only above i64::MAX; accept both spellings.
            Content::Map(entries) => match entries.as_slice() {
                [(key, Content::U64(bits))] if key == FLOAT_BITS_KEY => {
                    Ok(Value::Float(f64::from_bits(*bits)))
                }
                [(key, Content::I64(bits))] if key == FLOAT_BITS_KEY && *bits >= 0 => {
                    Ok(Value::Float(f64::from_bits(*bits as u64)))
                }
                _ => Err("expected a value, found an object".to_string()),
            },
            Content::Seq(_) => Err("expected a value, found an array".to_string()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_numeric_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn hash_consistent_with_eq_across_types() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
    }

    #[test]
    fn sql_cmp_null_propagates() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_incomparable_types() {
        assert_eq!(Value::str("a").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn sql_cmp_numbers_and_strings() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("b").sql_cmp(&Value::str("a")),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn total_order_ranks_types() {
        let mut vs = [
            Value::str("x"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
        ];
        vs.sort();
        assert!(vs[0].is_null());
        assert_eq!(vs[3], Value::str("x"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(Value::Float(1.5).to_string(), "1.5");
    }

    /// Serialize → JSON text → deserialize must reproduce the value
    /// *variant-exactly* (`Debug` forms equal), not just numerically equal:
    /// result fingerprints hash the `Debug` form, so an `Int(3)` coming
    /// back as `Float(3.0)` would silently change every wire fingerprint.
    fn wire_round_trip(v: &Value) -> Value {
        let json = serde_json::to_string(v).expect("value serializes");
        serde_json::from_str(&json).expect("value re-parses")
    }

    #[test]
    fn serde_round_trips_variant_exactly() {
        let cases = [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-7),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(0.5),
            Value::Float(-1234.25),
            Value::Float(3.0), // integral float must NOT come back as Int
            Value::Float(0.1), // classic shortest-round-trip case
            Value::str(""),
            Value::str("hello \"world\"\nline"),
        ];
        for v in &cases {
            let back = wire_round_trip(v);
            assert_eq!(
                format!("{v:?}"),
                format!("{back:?}"),
                "variant drift through the wire"
            );
        }
    }

    #[test]
    fn serde_round_trips_floats_json_cannot_express() {
        // NaN, infinities, and integral floats big enough that their JSON
        // rendering would drop the `.0` all take the raw-bits escape.
        for v in [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e15,
            -4.0e18,
            1.5e308, // near f64::MAX, integral
        ] {
            let back = wire_round_trip(&Value::Float(v));
            match back {
                Value::Float(b) => assert_eq!(v.to_bits(), b.to_bits(), "bits drifted for {v}"),
                other => panic!("Float({v}) came back as {other:?}"),
            }
        }
        // Negative zero keeps its sign through the plain JSON path.
        let back = wire_round_trip(&Value::Float(-0.0));
        match back {
            Value::Float(b) => assert_eq!((-0.0f64).to_bits(), b.to_bits()),
            other => panic!("Float(-0.0) came back as {other:?}"),
        }
    }

    #[test]
    fn serde_rejects_malformed_content() {
        assert!(serde_json::from_str::<Value>("[1,2]").is_err());
        assert!(serde_json::from_str::<Value>("{\"x\": 1}").is_err());
        // A bare unsigned integer beyond i64 cannot be a Value::Int.
        assert!(serde_json::from_str::<Value>("18446744073709551615").is_err());
    }
}
