//! Golden-file fixture tests: each lint is pinned by a fixture source
//! file under `tests/fixtures/` and an `.expected` file listing every
//! diagnostic as `line:lint`, one per line. The fixtures also encode the
//! false-positive guards (BTreeMap, sorted collects, recovery idioms,
//! string/comment mentions) — a fixture line that must NOT fire is as
//! much a part of the contract as one that must.

use simba_analyze::{analyze_source, Config};
use std::path::Path;

fn check_fixture(name: &str) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src = std::fs::read_to_string(dir.join(format!("{name}.rs")))
        .unwrap_or_else(|e| panic!("read fixture {name}.rs: {e}"));
    let golden = std::fs::read_to_string(dir.join(format!("{name}.expected")))
        .unwrap_or_else(|e| panic!("read golden {name}.expected: {e}"));

    // Permissive config: every lint audits the fixture, and slice indexing
    // is checked everywhere.
    let mut got: Vec<String> =
        analyze_source(&format!("fixtures/{name}.rs"), &src, &Config::permissive())
            .iter()
            .map(|d| format!("{}:{}", d.line, d.lint))
            .collect();
    got.sort();

    let mut want: Vec<String> = golden
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect();
    want.sort();

    assert!(
        !want.is_empty(),
        "golden {name}.expected pins no diagnostics — every lint fixture must produce at least one"
    );
    assert_eq!(
        got, want,
        "fixture `{name}`: diagnostics diverged from {name}.expected"
    );
}

#[test]
fn nondet_iter_fixture() {
    check_fixture("nondet_iter");
}

#[test]
fn wall_clock_fixture() {
    check_fixture("wall_clock");
}

#[test]
fn randomness_fixture() {
    check_fixture("randomness");
}

#[test]
fn env_read_fixture() {
    check_fixture("env_read");
}

#[test]
fn panic_hygiene_fixture() {
    check_fixture("panic_hygiene");
}
