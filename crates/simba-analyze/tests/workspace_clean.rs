//! The gate, as a test: the workspace must produce zero deny-level
//! diagnostics under the default config. This is the same check CI runs
//! via `simba-lint --deny`, wired into `cargo test` so a violation fails
//! locally before it ever reaches a PR.

use simba_analyze::{all_lints, analyze_workspace, Config};
use std::path::Path;

#[test]
fn workspace_has_no_deny_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crate lives two levels under the workspace root")
        .to_path_buf();
    let report = analyze_workspace(&root, &Config::workspace_default(), &all_lints())
        .expect("workspace scan failed");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: only {} files — wrong root?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        report.deny_count(),
        0,
        "the workspace violates its own reproducibility contract:\n{}",
        rendered.join("\n")
    );
}
