// Fixture for `unseeded-randomness`.

fn flagged_thread_rng() {
    let mut rng = thread_rng();
    rng.fill(&mut [0u8; 8]);
}

fn flagged_from_entropy() -> SmallRng {
    SmallRng::from_entropy()
}

fn flagged_rand_random() -> u8 {
    rand::random()
}

fn flagged_os_rng() -> OsRng {
    OsRng
}

fn suppressed_thread_rng() {
    // simba: allow(unseeded-randomness): fixture-sanctioned entropy
    let _rng = thread_rng();
}

fn clean_seeded(seed: u64) -> ChaCha8Rng {
    let _msg = "thread_rng in a string is not a call";
    // thread_rng in a comment is not a call either.
    ChaCha8Rng::seed_from_u64(seed)
}
