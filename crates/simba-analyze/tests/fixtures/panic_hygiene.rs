// Fixture for `panic-hygiene`. The fixture harness runs with the
// permissive config, under which slice indexing is audited everywhere.

fn flagged_unwrap(v: &[u32]) -> u32 {
    v.first().unwrap() + 1
}

fn flagged_expect(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().expect("poisoned")
}

fn flagged_indexing(v: &[u32], i: usize) -> u32 {
    v[i]
}

fn flagged_chained_indexing(grid: &[Vec<u32>], r: usize, c: usize) -> u32 {
    grid[r][c]
}

fn suppressed_unwrap(v: &[u32]) -> u32 {
    // simba: allow(panic-hygiene): fixture invariant — v is non-empty by construction
    v.first().unwrap() + 1
}

fn clean_poison_recovery(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn clean_get_with_default(v: &[u32], i: usize) -> u32 {
    v.get(i).copied().unwrap_or(0)
}

#[derive(Debug)]
struct NotAnIndex {
    field: [u8; 4],
}

fn clean_literals_and_types() -> NotAnIndex {
    let _arr = [1u8, 2, 3, 4];
    let _vec = vec![0u8; 4];
    NotAnIndex { field: [0; 4] }
}

fn clean_full_range_reslice(v: &[u32]) -> &[u32] {
    &v[..]
}
