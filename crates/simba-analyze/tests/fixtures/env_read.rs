// Fixture for `env-read-outside-cli`.

fn flagged_var() -> Option<String> {
    std::env::var("SIMBA_MODE").ok()
}

fn flagged_unqualified_var_os() {
    let _ = env::var_os("SIMBA_HOME");
}

fn flagged_vars_iteration() -> usize {
    std::env::vars().count()
}

fn flagged_set_var() {
    std::env::set_var("SIMBA_FLAG", "1");
}

fn suppressed_var() -> Option<String> {
    // simba: allow(env-read-outside-cli): fixture-sanctioned env read
    std::env::var("HOME").ok()
}

fn clean_env_named_local(env: &Environment) -> Option<String> {
    // A binding named `env` with methods named like the accessors is not
    // a std::env read.
    env.lookup("X")
}
