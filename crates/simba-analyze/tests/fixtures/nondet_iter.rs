// Fixture for `nondeterministic-iteration`. Not compiled — lexed by the
// analyzer's fixture harness, which pins each diagnostic (and each
// deliberate non-diagnostic) against the golden `.expected` file.
use std::collections::{BTreeMap, HashMap, HashSet};

struct Report {
    fingerprints: HashMap<u64, u64>,
}

fn flagged_param_iteration(m: &HashMap<String, u64>) -> Vec<String> {
    let mut out = Vec::new();
    for (k, _) in m.iter() {
        out.push(k.clone());
    }
    out
}

fn flagged_field_for_loop(r: &Report) -> u64 {
    let mut acc = 0;
    for (_, v) in &r.fingerprints {
        acc ^= v;
    }
    acc
}

fn flagged_method_iteration(seen: &HashSet<u64>) -> Vec<u64> {
    seen.values_are_not_this(); // decoy: not an iteration method
    seen.drain().collect()
}

fn suppressed_xor_fold(m: &HashMap<String, u64>) -> u64 {
    // simba: allow(nondeterministic-iteration): xor-fold is order-insensitive
    m.values().fold(0, |a, b| a ^ b)
}

fn clean_btree(m: &BTreeMap<String, u64>) -> Vec<String> {
    m.keys().cloned().collect()
}

fn clean_sorted_collect(m: &HashMap<String, u64>) -> Vec<String> {
    let mut ks: Vec<String> = m.keys().cloned().collect();
    ks.sort();
    ks
}

fn clean_size_query(s: &HashSet<u64>) -> usize {
    s.len()
}

fn clean_vec_iteration(v: &[u64]) -> u64 {
    let mut acc = 0;
    for x in v.iter() {
        acc += x;
    }
    acc
}
