// Fixture for `wall-clock-outside-obs`.
use std::time::{Instant, SystemTime};

fn flagged_instant() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}

fn flagged_system_time() -> SystemTime {
    SystemTime::now()
}

fn suppressed_instant() {
    // simba: allow(wall-clock-outside-obs): fixture-sanctioned timing site
    let _ = Instant::now();
}

fn clean_mentions(start: Instant) -> u64 {
    // Instant::now in a comment is not a violation.
    let _msg = "neither is Instant::now inside a string literal";
    start.elapsed().as_millis() as u64
}
