//! Diagnostics and report rendering (human and machine-readable).

use std::fmt;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Advisory: reported, but does not fail the gate unless `--deny`.
    Warn,
    /// Contract violation: always fails the gate.
    Deny,
}

impl Level {
    /// Stable lowercase name (`"warn"` / `"deny"`).
    pub fn name(self) -> &'static str {
        match self {
            Level::Warn => "warn",
            Level::Deny => "deny",
        }
    }
}

/// One finding: a lint, a location, and what the contract says about it.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Name of the lint that fired.
    pub lint: &'static str,
    /// Effective severity.
    pub level: Level,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation, including the remediation.
    pub message: String,
    /// Enclosing function name, when known.
    pub context: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}: {}",
            self.path,
            self.line,
            self.level.name(),
            self.lint,
            self.message
        )?;
        if let Some(ctx) = &self.context {
            write!(f, " (in fn `{ctx}`)")?;
        }
        Ok(())
    }
}

/// The result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All diagnostics, ordered by path, then line, then lint name.
    pub diagnostics: Vec<Diagnostic>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Sort diagnostics into the canonical deterministic order.
    pub fn finish(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    }

    /// Count of deny-level diagnostics.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Deny)
            .count()
    }

    /// Render the machine-readable JSON form. Hand-rolled (this crate is
    /// dependency-free); key order and array order are deterministic.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"lint\": {}, ", json_str(d.lint)));
            out.push_str(&format!("\"level\": {}, ", json_str(d.level.name())));
            out.push_str(&format!("\"path\": {}, ", json_str(&d.path)));
            out.push_str(&format!("\"line\": {}, ", d.line));
            match &d.context {
                Some(c) => out.push_str(&format!("\"fn\": {}, ", json_str(c))),
                None => out.push_str("\"fn\": null, "),
            }
            out.push_str(&format!("\"message\": {}", json_str(&d.message)));
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"summary\": {{\"total\": {}, \"deny\": {}, \"warn\": {}, \"files_scanned\": {}}}\n}}\n",
            self.diagnostics.len(),
            self.deny_count(),
            self.diagnostics.len() - self.deny_count(),
            self.files_scanned
        ));
        out
    }
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_is_valid_and_escaped() {
        let mut r = Report {
            diagnostics: vec![Diagnostic {
                lint: "panic-hygiene",
                level: Level::Deny,
                path: "crates/x/src/lib.rs".to_string(),
                line: 7,
                message: "bare `unwrap()` on a \"quoted\" thing".to_string(),
                context: Some("worker_loop".to_string()),
            }],
            files_scanned: 3,
        };
        r.finish();
        let json = r.to_json();
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"deny\": 1"));
        assert!(json.contains("\"files_scanned\": 3"));
    }

    #[test]
    fn report_sorts_deterministically() {
        let d = |path: &str, line: u32| Diagnostic {
            lint: "x",
            level: Level::Warn,
            path: path.to_string(),
            line,
            message: String::new(),
            context: None,
        };
        let mut r = Report {
            diagnostics: vec![d("b.rs", 1), d("a.rs", 9), d("a.rs", 2)],
            files_scanned: 2,
        };
        r.finish();
        let order: Vec<_> = r
            .diagnostics
            .iter()
            .map(|d| (d.path.clone(), d.line))
            .collect();
        assert_eq!(
            order,
            [
                ("a.rs".to_string(), 2),
                ("a.rs".to_string(), 9),
                ("b.rs".to_string(), 1)
            ]
        );
    }
}
