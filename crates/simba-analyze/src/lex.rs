//! A hand-rolled Rust lexer: the token stream every lint reads.
//!
//! This is deliberately *not* a full Rust parser. Lints in this crate are
//! pattern matchers over tokens, so the lexer's one job is to get the
//! boundaries right that naive text search gets wrong:
//!
//! * comments (line, nested block) never produce tokens — a lint keyword
//!   inside a comment is not a violation;
//! * string/char/byte/raw-string literals are single opaque tokens — code
//!   that *mentions* `thread_rng` in a message does not call it;
//! * lifetimes (`'a`) are distinguished from char literals (`'a'`);
//! * every token carries its 1-based source line for diagnostics.
//!
//! The lexer is also where suppression pragmas are harvested: a comment of
//! the form `// simba: allow(<lint>[, <lint>...]): <justification>`
//! suppresses the named lints on the pragma's line and the next code line,
//! and `// simba: allow-file(<lint>): <justification>` suppresses a lint
//! for the whole file. The justification text after the closing paren is
//! free-form but conventionally mandatory — a pragma without a reason is a
//! review smell.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, ...).
    Ident,
    /// Any literal: string, raw string, byte string, char, or number.
    Lit,
    /// A single punctuation character (`.`, `:`, `{`, ...).
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's kind.
    pub kind: TokKind,
    /// The token text. For literals this is the raw source spelling.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A `// simba: allow(...)` suppression comment.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// The lint name inside `allow(...)`.
    pub lint: String,
    /// 1-based line the pragma comment starts on.
    pub line: u32,
    /// `allow-file`: suppress the lint for the entire file.
    pub file_wide: bool,
}

/// Lex `src` into tokens and suppression pragmas.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Pragma>) {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    toks: Vec<Token>,
    pragmas: Vec<Pragma>,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            toks: Vec::new(),
            pragmas: Vec::new(),
            src,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.toks.push(Token { kind, text, line });
    }

    fn run(mut self) -> (Vec<Token>, Vec<Pragma>) {
        let _ = self.src; // retained for future span support
        while let Some(c) = self.peek(0) {
            if c == '\n' || c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.string_literal();
            } else if c == '\'' {
                self.quote();
            } else if c.is_ascii_digit() {
                self.number();
            } else if c == '_' || c.is_alphabetic() {
                self.ident_or_prefixed_literal();
            } else {
                let line = self.line;
                self.bump();
                self.push(TokKind::Punct, c.to_string(), line);
            }
        }
        (self.toks, self.pragmas)
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.harvest_pragma(&text, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.harvest_pragma(&text, line);
    }

    /// Parse `simba: allow(name[, name...]): reason` out of comment text.
    fn harvest_pragma(&mut self, comment: &str, line: u32) {
        let body = comment.trim_start_matches('/').trim_start_matches('!');
        let body = body.trim();
        let Some(rest) = body.strip_prefix("simba:") else {
            return;
        };
        let rest = rest.trim_start();
        let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow") {
            (false, r)
        } else {
            return;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            return;
        };
        let Some(close) = rest.find(')') else {
            return;
        };
        for name in rest[..close].split(',') {
            let name = name.trim();
            if !name.is_empty() {
                self.pragmas.push(Pragma {
                    lint: name.to_string(),
                    line,
                    file_wide,
                });
            }
        }
    }

    fn string_literal(&mut self) {
        let line = self.line;
        let mut text = String::from("\"");
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                text.push(c);
                if let Some(e) = self.bump() {
                    text.push(e);
                }
                continue;
            }
            text.push(c);
            if c == '"' {
                break;
            }
        }
        self.push(TokKind::Lit, text, line);
    }

    /// Raw string body after the `r`/`br` prefix: `r##"..."##` and friends.
    fn raw_string(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            // `r#ident` raw identifier: lex the ident normally.
            self.ident_or_prefixed_literal();
            return;
        }
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(0) == Some('#') {
                    matched += 1;
                    self.bump();
                }
                if matched == hashes {
                    break;
                }
            }
        }
        self.push(TokKind::Lit, "\"<raw>\"".to_string(), line);
    }

    /// `'` starts either a lifetime (`'a`) or a char literal (`'a'`, `'\n'`).
    fn quote(&mut self) {
        let line = self.line;
        self.bump(); // the quote
        match self.peek(0) {
            // Escape: definitely a char literal.
            Some('\\') => {
                self.bump();
                self.bump(); // escaped char
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Lit, "'<char>'".to_string(), line);
            }
            Some(c) if c == '_' || c.is_alphabetic() => {
                // `'a'` is a char literal; `'a` followed by anything else
                // is a lifetime.
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Lit, "'<char>'".to_string(), line);
                } else {
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    // Lifetimes produce no token: lints never match them.
                }
            }
            // Non-alphabetic char literal: `'+'`, `' '`, ...
            Some(_) => {
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Lit, "'<char>'".to_string(), line);
            }
            None => {}
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && matches!(text.chars().last(), Some('e') | Some('E'))
                && text.starts_with(|d: char| d.is_ascii_digit())
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // Float exponent sign: `1e-5`.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Lit, text, line);
    }

    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String/char prefixes: r"", r#""#, b"", br#""#, b''.
        match (text.as_str(), self.peek(0)) {
            ("r" | "br" | "rb", Some('"')) => {
                self.string_literal();
                return;
            }
            ("r" | "br", Some('#')) => {
                self.raw_string(line);
                return;
            }
            ("b", Some('"')) => {
                self.string_literal();
                return;
            }
            ("b", Some('\'')) => {
                self.quote();
                return;
            }
            _ => {}
        }
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_keywords() {
        let src = r##"
            // thread_rng in a comment
            /* Instant::now in /* a nested */ block */
            let msg = "thread_rng inside a string";
            let raw = r#"Instant::now inside a raw string"#;
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let (toks, _) = lex(src);
        let lits: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Lit).collect();
        assert_eq!(lits.len(), 1, "only the char literal is a literal");
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn pragmas_are_harvested_with_lines() {
        let src = "fn a() {}\n// simba: allow(wall-clock-outside-obs): timing output only\nfn b() {}\n// simba: allow-file(panic-hygiene): kernel invariants\n";
        let (_, pragmas) = lex(src);
        assert_eq!(pragmas.len(), 2);
        assert_eq!(pragmas[0].lint, "wall-clock-outside-obs");
        assert_eq!(pragmas[0].line, 2);
        assert!(!pragmas[0].file_wide);
        assert!(pragmas[1].file_wide);
    }

    #[test]
    fn pragma_lists_split_on_commas() {
        let (_, pragmas) = lex("// simba: allow(a-lint, b-lint): both fine here\n");
        let names: Vec<_> = pragmas.iter().map(|p| p.lint.as_str()).collect();
        assert_eq!(names, ["a-lint", "b-lint"]);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let (toks, _) = lex(src);
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }
}
