//! # simba-analyze — static enforcement of the reproducibility contract
//!
//! The SIMBA workspace promises byte-identical `RunReport`s for a given
//! `ScenarioSpec`: across reruns, worker counts, cache on/off, tracing
//! on/off, and fault specs. That promise is easy to break silently — one
//! `HashMap` iteration feeding a serialized list, one `Instant::now()` in
//! a result path, one `thread_rng()` — and nothing fails until two runs
//! disagree. This crate turns the contract into a lint pass.
//!
//! ## Design
//!
//! A hand-rolled lexer ([`lex`]) produces a token stream with comments
//! stripped and string literals opaque; [`ctx::FileCtx`] layers on
//! function/module spans, `#[cfg(test)]` regions, and suppression
//! pragmas. Each lint ([`lints::Lint`]) is a pure pattern matcher over
//! that stream; [`config::Config`] holds the path scoping that makes the
//! pass workspace-aware; [`workspace`] walks files in sorted order and
//! applies scoping and suppression so the report itself is deterministic.
//! The crate has **zero dependencies** — the gate that enforces hygiene
//! should not import any.
//!
//! ## The lints
//!
//! | lint | contract clause |
//! |------|-----------------|
//! | `nondeterministic-iteration` | hash-ordered iteration must not reach results/reports |
//! | `wall-clock-outside-obs` | time is read only where time is the deliverable |
//! | `unseeded-randomness` | all randomness chains from the scenario seed |
//! | `env-read-outside-cli` | library behavior is spec-driven, not env-driven |
//! | `panic-hygiene` | worker-critical paths degrade, never die |
//!
//! ## Suppression
//!
//! ```text
//! // simba: allow(<lint>[, <lint>...]): <justification>
//! // simba: allow-file(<lint>): <justification>
//! ```
//!
//! The first form covers its own line and the next code line; the second
//! covers the file. The justification is the point: every pragma in the
//! tree documents *why* a site is exempt from the contract.
//!
//! ## Usage
//!
//! ```text
//! cargo run -p simba-analyze --bin simba-lint -- --deny
//! cargo run -p simba-analyze --bin simba-lint -- --json --lint panic-hygiene
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod ctx;
pub mod diag;
pub mod lex;
pub mod lints;
pub mod workspace;

pub use config::{Config, LintScope};
pub use ctx::FileCtx;
pub use diag::{Diagnostic, Level, Report};
pub use lints::{all_lints, Lint};
pub use workspace::{analyze_file, analyze_workspace, collect_files};

/// Analyze one in-memory source file under a config — the entry point
/// fixture tests use.
pub fn analyze_source(path: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let file = FileCtx::new(path, src);
    analyze_file(&file, cfg, &all_lints())
}
