//! Workspace walking and the lint runner.
//!
//! The walker visits [`Config::scan_roots`] recursively, collecting `.rs`
//! files in **sorted path order** — the analyzer itself honors the
//! determinism contract it enforces: same tree in, byte-identical report
//! out. The runner applies scoping before each lint and pragma/test-range
//! filtering after, so individual lints stay pure token-pattern matchers.

use crate::config::Config;
use crate::ctx::FileCtx;
use crate::diag::{Diagnostic, Report};
use crate::lints::Lint;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Collect every `.rs` file under the config's scan roots, as
/// workspace-relative `/`-separated paths in sorted order. Files matching
/// a [`Config::skip_fragments`] entry are dropped.
pub fn collect_files(root: &Path, cfg: &Config) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    for scan_root in &cfg.scan_roots {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut rel: Vec<String> = files
        .into_iter()
        .filter_map(|p| {
            let r = p
                .strip_prefix(root)
                .ok()?
                .to_string_lossy()
                .replace('\\', "/");
            (!cfg.skips(&r)).then_some(r)
        })
        .collect();
    rel.sort();
    rel.dedup();
    Ok(rel)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run `lints` over one parsed file: scope, check, then drop diagnostics
/// suppressed by pragmas or raised inside `#[cfg(test)]` regions.
pub fn analyze_file(file: &FileCtx, cfg: &Config, lints: &[Box<dyn Lint>]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for lint in lints {
        if !cfg.lint_covers(lint.name(), &file.path) {
            continue;
        }
        let mut raw = Vec::new();
        lint.check(file, cfg, &mut raw);
        out.extend(
            raw.into_iter()
                .filter(|d| !file.suppressed(d.lint, d.line) && !file.line_in_test(d.line)),
        );
    }
    out
}

/// Analyze the workspace rooted at `root` with the given lints, producing
/// a finished (sorted) [`Report`]. Unreadable files are reported as an
/// `io::Error` rather than silently skipped — a lint gate that skips what
/// it cannot read is not a gate.
pub fn analyze_workspace(root: &Path, cfg: &Config, lints: &[Box<dyn Lint>]) -> io::Result<Report> {
    let paths = collect_files(root, cfg)?;
    let mut report = Report::default();
    for rel in &paths {
        let src = fs::read_to_string(root.join(rel))?;
        let file = FileCtx::new(rel, &src);
        report.diagnostics.extend(analyze_file(&file, cfg, lints));
        report.files_scanned += 1;
    }
    report.finish();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::all_lints;

    #[test]
    fn runner_applies_pragmas_and_test_ranges() {
        let src = "fn f() {\n// simba: allow(unseeded-randomness): fixture\nlet a = thread_rng();\nlet b = thread_rng();\n}\n#[cfg(test)]\nmod tests {\nfn g() { let c = thread_rng(); }\n}\n";
        let file = FileCtx::new("x.rs", src);
        let out = analyze_file(&file, &Config::permissive(), &all_lints());
        let lines: Vec<_> = out.iter().map(|d| d.line).collect();
        assert_eq!(lines, [4]);
    }

    #[test]
    fn scoped_lint_skips_uncovered_paths() {
        let src = "fn f() { let t = Instant::now(); }";
        let cfg = Config::workspace_default();
        let covered = FileCtx::new("crates/simba-engine/src/exec.rs", src);
        assert_eq!(analyze_file(&covered, &cfg, &all_lints()).len(), 1);
        let exempt = FileCtx::new("crates/simba-obs/src/trace.rs", src);
        assert!(analyze_file(&exempt, &cfg, &all_lints()).is_empty());
    }
}
