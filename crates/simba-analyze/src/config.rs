//! Workspace scoping: which paths each lint audits or exempts.
//!
//! The default [`Config`] *is* the reproducibility contract, written as
//! path prefixes (see ARCHITECTURE.md, "Static analysis"):
//!
//! * determinism-sensitive code (fingerprint/report paths, engines, the
//!   store) is **in scope** for iteration-order and panic lints;
//! * wall-clock reads are **allowed** only where time is the deliverable
//!   (`simba-obs`, the driver's pacing and deadline modules, bench bins);
//! * environment reads are **allowed** only in the `simba-bench` CLI
//!   harness crate — library behavior must stay `ScenarioSpec`-driven;
//! * seeded randomness is enforced *everywhere* — no allowed paths.
//!
//! `tests/`, `benches/`, `examples/`, fixtures, and vendored crates are
//! skipped globally: the contract governs shipped library behavior.

use std::collections::BTreeMap;

/// Per-lint path scoping.
#[derive(Debug, Clone, Default)]
pub struct LintScope {
    /// Only files under one of these prefixes are audited. Empty = every
    /// scanned file.
    pub include: Vec<String>,
    /// Files under these prefixes are exempt (the lint's allowlist).
    pub exclude: Vec<String>,
}

impl LintScope {
    /// Does this scope audit `path`?
    pub fn covers(&self, path: &str) -> bool {
        let included =
            self.include.is_empty() || self.include.iter().any(|p| path.starts_with(p.as_str()));
        included && !self.exclude.iter().any(|p| path.starts_with(p.as_str()))
    }
}

/// Analyzer configuration: scan roots, global skips, per-lint scopes.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (relative to the workspace root) to walk for `.rs`
    /// files.
    pub scan_roots: Vec<String>,
    /// Path *substrings* that exclude a file from scanning entirely.
    pub skip_fragments: Vec<String>,
    /// Scope per lint name. A lint without an entry audits every scanned
    /// file.
    pub scopes: BTreeMap<String, LintScope>,
    /// Subset of `panic-hygiene`'s scope in which slice indexing is also
    /// flagged (the driver's worker loop and the single-flight cache,
    /// where an out-of-bounds panic kills a worker thread mid-session).
    pub index_scope: Vec<String>,
}

impl Config {
    /// The workspace contract (see module docs).
    pub fn workspace_default() -> Config {
        let mut scopes = BTreeMap::new();
        scopes.insert(
            crate::lints::NONDET_ITER.to_string(),
            LintScope {
                // Everything that computes results, fingerprints, reports,
                // or report-carried metrics.
                include: vec![
                    "crates/simba-driver/src/".into(),
                    "crates/simba-engine/src/".into(),
                    "crates/simba-store/src/".into(),
                    "crates/simba-obs/src/metrics.rs".into(),
                    // Results crossing the wire must serialize in a
                    // deterministic order or fingerprints diverge.
                    "crates/simba-server/src/".into(),
                    // Delta keys are sorted normalized conjuncts: unordered
                    // iteration here would split or merge reuse classes.
                    "crates/simba-sql/src/refine.rs".into(),
                ],
                exclude: vec![],
            },
        );
        scopes.insert(
            crate::lints::WALL_CLOCK.to_string(),
            LintScope {
                include: vec![],
                exclude: vec![
                    // The observability substrate is *about* time.
                    "crates/simba-obs/".into(),
                    // Think-time pacing, arrival schedules, and wall-clock
                    // run measurement live here by design.
                    "crates/simba-driver/src/driver.rs".into(),
                    // Deadlines, backoff, and breaker cool-downs.
                    "crates/simba-driver/src/resilience.rs".into(),
                    // Bench bins exist to measure; their timings are
                    // artifacts, not behavior.
                    "crates/simba-bench/src/bin/".into(),
                ],
            },
        );
        scopes.insert(
            crate::lints::UNSEEDED_RANDOMNESS.to_string(),
            // Banned everywhere: all randomness chains from the scenario
            // seed via splitmix64.
            LintScope::default(),
        );
        scopes.insert(
            crate::lints::ENV_READ.to_string(),
            LintScope {
                include: vec![],
                // The CLI harness crate: env vars are its knob surface.
                exclude: vec!["crates/simba-bench/".into()],
            },
        );
        scopes.insert(
            crate::lints::PANIC_HYGIENE.to_string(),
            LintScope {
                include: vec![
                    "crates/simba-driver/src/driver.rs".into(),
                    "crates/simba-driver/src/cache.rs".into(),
                    "crates/simba-engine/src/exec.rs".into(),
                    "crates/simba-engine/src/batch.rs".into(),
                    // Session-delta reuse runs inside the worker loop; a
                    // panic on a stale entry kills a session mid-run.
                    "crates/simba-engine/src/delta.rs".into(),
                    "crates/simba-sql/src/refine.rs".into(),
                    "crates/simba-engine/src/engines/".into(),
                    // A panic in a connection worker kills that client's
                    // session; bad frames must be errors, not aborts.
                    "crates/simba-server/src/".into(),
                ],
                exclude: vec![],
            },
        );
        Config {
            scan_roots: vec!["crates".into()],
            skip_fragments: vec![
                "/tests/".into(),
                "/benches/".into(),
                "/examples/".into(),
                "/fixtures/".into(),
                "vendor/".into(),
                "target/".into(),
            ],
            scopes,
            index_scope: vec![
                "crates/simba-driver/src/driver.rs".into(),
                "crates/simba-driver/src/cache.rs".into(),
            ],
        }
    }

    /// A permissive config for fixture tests: every lint audits every
    /// file handed to it, and slice indexing is checked everywhere.
    pub fn permissive() -> Config {
        Config {
            scan_roots: vec![],
            skip_fragments: vec![],
            scopes: BTreeMap::new(),
            index_scope: vec![String::new()], // "" prefixes every path
        }
    }

    /// Is `path` excluded from scanning entirely?
    pub fn skips(&self, path: &str) -> bool {
        self.skip_fragments
            .iter()
            .any(|f| path.contains(f.as_str()))
    }

    /// Does `lint` audit `path` under this config?
    pub fn lint_covers(&self, lint: &str, path: &str) -> bool {
        self.scopes
            .get(lint)
            .map(|s| s.covers(path))
            .unwrap_or(true)
    }

    /// Is slice indexing audited in `path`?
    pub fn index_covers(&self, path: &str) -> bool {
        self.index_scope
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scopes_encode_the_contract() {
        let cfg = Config::workspace_default();
        assert!(cfg.lint_covers(
            crate::lints::NONDET_ITER,
            "crates/simba-driver/src/cache.rs"
        ));
        assert!(!cfg.lint_covers(crate::lints::NONDET_ITER, "crates/simba-sql/src/parser.rs"));
        assert!(cfg.lint_covers(
            crate::lints::NONDET_ITER,
            "crates/simba-server/src/proto.rs"
        ));
        assert!(cfg.lint_covers(
            crate::lints::PANIC_HYGIENE,
            "crates/simba-server/src/server.rs"
        ));
        assert!(cfg.lint_covers(
            crate::lints::PANIC_HYGIENE,
            "crates/simba-engine/src/delta.rs"
        ));
        assert!(cfg.lint_covers(crate::lints::NONDET_ITER, "crates/simba-sql/src/refine.rs"));
        assert!(!cfg.lint_covers(crate::lints::WALL_CLOCK, "crates/simba-obs/src/trace.rs"));
        assert!(cfg.lint_covers(crate::lints::WALL_CLOCK, "crates/simba-engine/src/exec.rs"));
        assert!(!cfg.lint_covers(crate::lints::ENV_READ, "crates/simba-bench/src/lib.rs"));
        assert!(cfg.lint_covers(crate::lints::ENV_READ, "crates/simba-core/src/lib.rs"));
        assert!(cfg.lint_covers(
            crate::lints::UNSEEDED_RANDOMNESS,
            "crates/simba-core/src/markov.rs"
        ));
        assert!(cfg.index_covers("crates/simba-driver/src/driver.rs"));
        assert!(!cfg.index_covers("crates/simba-engine/src/exec.rs"));
    }

    #[test]
    fn skip_fragments_drop_test_and_vendor_paths() {
        let cfg = Config::workspace_default();
        assert!(cfg.skips("crates/simba-driver/tests/foo.rs"));
        assert!(cfg.skips("vendor/rand/src/lib.rs"));
        assert!(cfg.skips("crates/simba-analyze/tests/fixtures/x.rs"));
        assert!(!cfg.skips("crates/simba-driver/src/driver.rs"));
    }
}
