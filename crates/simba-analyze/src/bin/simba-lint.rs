//! `simba-lint`: run the determinism & concurrency lint pass over the
//! workspace.
//!
//! ```text
//! simba-lint [--root DIR] [--lint NAME]... [--json] [--deny] [--list]
//! ```
//!
//! * `--root DIR`   workspace root to scan (default: nearest ancestor of
//!   the current directory containing a `crates/` dir, else `.`)
//! * `--lint NAME`  run only the named lint (repeatable)
//! * `--json`       machine-readable output
//! * `--deny`       escalate warn-level findings to deny
//! * `--list`       print the lint catalog and exit
//!
//! Exit codes: `0` clean, `1` deny-level findings, `2` usage or I/O error.

use simba_analyze::diag::Level;
use simba_analyze::{all_lints, analyze_workspace, Config, Lint};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    lints: Vec<String>,
    json: bool,
    deny: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        lints: Vec::new(),
        json: false,
        deny: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--lint" => {
                let v = it.next().ok_or("--lint requires a lint name argument")?;
                args.lints.push(v);
            }
            "--json" => args.json = true,
            "--deny" => args.deny = true,
            "--list" => args.list = true,
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

const USAGE: &str = "usage: simba-lint [--root DIR] [--lint NAME]... [--json] [--deny] [--list]";

/// Nearest ancestor of the current directory containing `crates/`.
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("simba-lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let catalog = all_lints();
    if args.list {
        for lint in &catalog {
            println!(
                "{:28} [{}] {}",
                lint.name(),
                lint.level().name(),
                lint.description()
            );
        }
        return ExitCode::SUCCESS;
    }

    for requested in &args.lints {
        if !catalog.iter().any(|l| l.name() == requested) {
            eprintln!("simba-lint: unknown lint `{requested}` (see --list)");
            return ExitCode::from(2);
        }
    }
    let lints: Vec<Box<dyn Lint>> = all_lints()
        .into_iter()
        .filter(|l| args.lints.is_empty() || args.lints.iter().any(|n| n == l.name()))
        .collect();

    let root = args.root.unwrap_or_else(find_root);
    let cfg = Config::workspace_default();
    let mut report = match analyze_workspace(&root, &cfg, &lints) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simba-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if args.deny {
        for d in &mut report.diagnostics {
            d.level = Level::Deny;
        }
    }

    if args.json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "simba-lint: {} finding(s) ({} deny) across {} file(s)",
            report.diagnostics.len(),
            report.deny_count(),
            report.files_scanned
        );
    }

    if report.deny_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
