//! Per-file analysis context: the token stream plus the lightweight
//! structure every lint needs — function boundaries, inline module paths,
//! `#[cfg(test)]` regions, and pragma suppression.

use crate::lex::{lex, Pragma, TokKind, Token};

/// Token-index span of one named item (`fn` or `mod`) body.
#[derive(Debug, Clone)]
pub struct ItemSpan {
    /// The item's name.
    pub name: String,
    /// Index of the first token of the item (its keyword).
    pub start: usize,
    /// Index of the item's closing `}` (or terminating `;`), inclusive.
    pub end: usize,
}

/// Everything a lint sees about one source file.
#[derive(Debug)]
pub struct FileCtx {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The lexed token stream (comments and whitespace removed).
    pub toks: Vec<Token>,
    pragmas: Vec<Pragma>,
    /// Body spans of every `fn`, innermost-last for nested fns.
    pub fns: Vec<ItemSpan>,
    /// Body spans of every inline `mod name { ... }`.
    pub mods: Vec<ItemSpan>,
    /// Token ranges under a `#[cfg(test)]` attribute — skipped by lints:
    /// test scaffolding may legitimately unwrap, index, and iterate.
    test_ranges: Vec<(usize, usize)>,
}

impl FileCtx {
    /// Lex and structurally index one source file.
    pub fn new(path: &str, src: &str) -> FileCtx {
        let (toks, pragmas) = lex(src);
        let fns = item_spans(&toks, "fn");
        let mods = item_spans(&toks, "mod");
        let test_ranges = cfg_test_ranges(&toks);
        FileCtx {
            path: path.replace('\\', "/"),
            toks,
            pragmas,
            fns,
            mods,
            test_ranges,
        }
    }

    /// Token text at `i`, or `""` past the end.
    pub fn t(&self, i: usize) -> &str {
        self.toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }

    /// Is token `i` an identifier with exactly this text?
    pub fn is_ident(&self, i: usize, text: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
    }

    /// Is token `i` this punctuation character?
    pub fn is_punct(&self, i: usize, ch: char) -> bool {
        self.toks.get(i).is_some_and(|t| {
            t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(ch)
        })
    }

    /// Does `::` start at token `i`?
    pub fn is_path_sep(&self, i: usize) -> bool {
        self.is_punct(i, ':') && self.is_punct(i + 1, ':')
    }

    /// Source line of token `i` (1 past the last line when out of range).
    pub fn line(&self, i: usize) -> u32 {
        self.toks
            .get(i)
            .map(|t| t.line)
            .unwrap_or_else(|| self.toks.last().map(|t| t.line + 1).unwrap_or(1))
    }

    /// Is token `i` inside a `#[cfg(test)]` region?
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| s <= i && i <= e)
    }

    /// Is source `line` inside a `#[cfg(test)]` region? Used by the
    /// runner to drop diagnostics (which carry lines, not token indices)
    /// raised in test scaffolding.
    pub fn line_in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(s, e)| self.line(s) <= line && line <= self.line(e))
    }

    /// Name of the innermost `fn` whose body contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&str> {
        self.fns
            .iter()
            .filter(|f| f.start <= i && i <= f.end)
            .min_by_key(|f| f.end - f.start)
            .map(|f| f.name.as_str())
    }

    /// Inline-module path containing token `i` (outermost first), e.g.
    /// `["imp", "detail"]`. Empty at file top level.
    pub fn module_path(&self, i: usize) -> Vec<&str> {
        let mut mods: Vec<&ItemSpan> = self
            .mods
            .iter()
            .filter(|m| m.start <= i && i <= m.end)
            .collect();
        mods.sort_by_key(|m| m.start);
        mods.into_iter().map(|m| m.name.as_str()).collect()
    }

    /// Is a diagnostic of `lint` at source line `line` suppressed by a
    /// pragma? A non-file pragma covers its own line and the next line
    /// carrying any code token.
    pub fn suppressed(&self, lint: &str, line: u32) -> bool {
        self.pragmas.iter().any(|p| {
            if p.lint != lint {
                return false;
            }
            if p.file_wide {
                return true;
            }
            line == p.line || line == self.next_code_line(p.line)
        })
    }

    /// Smallest token line strictly greater than `after`, or `after` when
    /// the pragma is the last line of the file.
    fn next_code_line(&self, after: u32) -> u32 {
        self.toks
            .iter()
            .map(|t| t.line)
            .filter(|&l| l > after)
            .min()
            .unwrap_or(after)
    }
}

/// Find the body span of every `keyword NAME ... { ... }` item (or a
/// semicolon-terminated declaration, whose span ends at the `;`).
fn item_spans(toks: &[Token], keyword: &str) -> Vec<ItemSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == keyword {
            // `mod` / `fn` as a path segment (`self::mod`) can't occur; a
            // preceding `.` would mean a method named like the keyword.
            if i > 0 && toks[i - 1].text == "." {
                i += 1;
                continue;
            }
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    if let Some(end) = body_end(toks, i + 2) {
                        spans.push(ItemSpan {
                            name: name_tok.text.clone(),
                            start: i,
                            end,
                        });
                    }
                }
            }
        }
        i += 1;
    }
    spans
}

/// From a position inside an item header, find the index of the matching
/// `}` of its body — or of a terminating `;` when the item has no body.
/// Parentheses are tracked so `;` inside default-argument-ish positions
/// (or `fn(...)` types) doesn't end the item early.
fn body_end(toks: &[Token], from: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut i = from;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            ";" if paren <= 0 => return Some(i),
            "{" if paren <= 0 => {
                // Found the body: match braces to its close.
                let mut depth = 0i32;
                while i < toks.len() {
                    match toks[i].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(i);
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return None;
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Token ranges covered by a `#[cfg(test)]` attribute: the attribute plus
/// the following item (through any stacked attributes).
fn cfg_test_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "test"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further stacked attributes.
        let mut j = i + 7;
        while toks.get(j).is_some_and(|t| t.text == "#")
            && toks.get(j + 1).is_some_and(|t| t.text == "[")
        {
            let mut depth = 0i32;
            let mut k = j + 1;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k + 1;
        }
        if let Some(end) = body_end(toks, j) {
            ranges.push((i, end));
            i = end + 1;
        } else {
            i += 1;
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_and_mod_spans_are_indexed() {
        let ctx = FileCtx::new(
            "x.rs",
            "mod outer { fn inner(a: u32) -> u32 { a } }\nfn top() {}",
        );
        assert_eq!(ctx.mods.len(), 1);
        assert_eq!(ctx.mods[0].name, "outer");
        let names: Vec<_> = ctx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["inner", "top"]);
        // A token inside `inner` sees both the fn and the module.
        let a_idx = ctx
            .toks
            .iter()
            .position(|t| t.text == "a" && t.line == 1)
            .unwrap();
        assert_eq!(ctx.enclosing_fn(a_idx), Some("inner"));
        assert_eq!(ctx.module_path(a_idx), vec!["outer"]);
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() { x.unwrap(); } }";
        let ctx = FileCtx::new("x.rs", src);
        let unwrap_idx = ctx.toks.iter().position(|t| t.text == "unwrap").unwrap();
        assert!(ctx.in_test(unwrap_idx));
        let live_idx = ctx.toks.iter().position(|t| t.text == "live").unwrap();
        assert!(!ctx.in_test(live_idx));
    }

    #[test]
    fn pragma_suppresses_own_and_next_code_line() {
        let src = "// simba: allow(some-lint): reason\nfn f() {}\nfn g() {}";
        let ctx = FileCtx::new("x.rs", src);
        assert!(ctx.suppressed("some-lint", 1));
        assert!(ctx.suppressed("some-lint", 2));
        assert!(!ctx.suppressed("some-lint", 3));
        assert!(!ctx.suppressed("other-lint", 2));
    }

    #[test]
    fn file_wide_pragma_suppresses_everywhere() {
        let src = "// simba: allow-file(some-lint): whole file\nfn f() {}\nfn g() {}";
        let ctx = FileCtx::new("x.rs", src);
        assert!(ctx.suppressed("some-lint", 3));
    }
}
