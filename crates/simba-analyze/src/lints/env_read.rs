//! `env-read-outside-cli`: library behavior is `ScenarioSpec`-driven.
//!
//! An `std::env::var` read inside a library crate gives the process
//! environment silent influence over results: a scenario replayed on
//! another machine (or in CI) can behave differently with no change to
//! the spec. All environment knobs belong to the `simba-bench` harness
//! crate, which resolves them into explicit spec/config values before any
//! library code runs.

use super::{diag, Lint, ENV_READ};
use crate::config::Config;
use crate::ctx::FileCtx;
use crate::diag::{Diagnostic, Level};

/// `std::env` read accessors (writes like `set_var` are flagged too — a
/// library mutating the environment to pass itself messages is worse).
const ENV_READS: &[&str] = &["var", "var_os", "vars", "vars_os", "set_var", "remove_var"];

/// Flags `env::var`-family calls.
pub struct EnvReadOutsideCli;

impl Lint for EnvReadOutsideCli {
    fn name(&self) -> &'static str {
        ENV_READ
    }

    fn description(&self) -> &'static str {
        "std::env reads outside the simba-bench CLI harness crate"
    }

    fn level(&self) -> Level {
        Level::Deny
    }

    fn check(&self, file: &FileCtx, _cfg: &Config, out: &mut Vec<Diagnostic>) {
        for i in 0..file.toks.len() {
            if file.is_ident(i, "env") && file.is_path_sep(i + 1) {
                let accessor = file.t(i + 3);
                if ENV_READS.contains(&accessor) {
                    out.push(diag(
                        ENV_READ,
                        self.level(),
                        file,
                        i,
                        format!(
                            "`env::{accessor}` in library code: environment knobs belong to \
                             the simba-bench CLI, which must resolve them into explicit \
                             ScenarioSpec/config values"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<u32> {
        let file = FileCtx::new("x.rs", src);
        let mut out = Vec::new();
        EnvReadOutsideCli.check(&file, &Config::permissive(), &mut out);
        out.iter().map(|d| d.line).collect()
    }

    #[test]
    fn flags_env_reads_by_any_path_spelling() {
        let src = "fn f() {\nlet a = std::env::var(\"X\");\nlet b = env::var_os(\"Y\");\n}";
        assert_eq!(run(src), [2, 3]);
    }

    #[test]
    fn env_named_locals_are_clean() {
        assert!(run("fn f(env: &Env) { env.lookup(\"X\"); }").is_empty());
    }
}
