//! `wall-clock-outside-obs`: reading the clock is a privilege.
//!
//! A wall-clock read in a fingerprint or report-content path makes output
//! depend on *when* the run happened — the exact thing the byte-identical
//! RunReport contract forbids. Time is allowed only where it is the
//! deliverable: the observability substrate, the driver's pacing/deadline
//! modules, and bench bins (see [`Config::workspace_default`]). Everything
//! else must thread durations through from those layers, or pragma the
//! site with a justification.

use super::{diag, Lint, WALL_CLOCK};
use crate::config::Config;
use crate::ctx::FileCtx;
use crate::diag::{Diagnostic, Level};

/// Flags `Instant::now()` and `SystemTime::now()` calls.
pub struct WallClockOutsideObs;

impl Lint for WallClockOutsideObs {
    fn name(&self) -> &'static str {
        WALL_CLOCK
    }

    fn description(&self) -> &'static str {
        "Instant::now/SystemTime::now outside simba-obs and the driver's pacing/deadline modules"
    }

    fn level(&self) -> Level {
        Level::Deny
    }

    fn check(&self, file: &FileCtx, _cfg: &Config, out: &mut Vec<Diagnostic>) {
        for i in 0..file.toks.len() {
            let ty = file.t(i);
            if (ty == "Instant" || ty == "SystemTime")
                && file.is_path_sep(i + 1)
                && file.is_ident(i + 3, "now")
            {
                out.push(diag(
                    WALL_CLOCK,
                    self.level(),
                    file,
                    i,
                    format!(
                        "`{ty}::now()` read outside the timing modules: latency and pacing \
                         must be measured in simba-obs or the driver, never where results, \
                         fingerprints, or report contents are computed"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<u32> {
        let file = FileCtx::new("x.rs", src);
        let mut out = Vec::new();
        WallClockOutsideObs.check(&file, &Config::permissive(), &mut out);
        out.iter().map(|d| d.line).collect()
    }

    #[test]
    fn flags_both_clock_types() {
        let lines = run("fn f() {\nlet a = Instant::now();\nlet b = SystemTime::now();\n}");
        assert_eq!(lines, [2, 3]);
    }

    #[test]
    fn ignores_mentions_in_strings_and_elapsed_calls() {
        assert!(
            run("fn f(start: Instant) { let s = \"Instant::now\"; start.elapsed(); }").is_empty()
        );
    }
}
