//! The lint catalog: the pluggable [`Lint`] trait and the five lints that
//! encode the determinism contract.

use crate::config::Config;
use crate::ctx::FileCtx;
use crate::diag::{Diagnostic, Level};

mod env_read;
mod nondet_iter;
mod panic_hygiene;
mod randomness;
mod wall_clock;

pub use env_read::EnvReadOutsideCli;
pub use nondet_iter::NondeterministicIteration;
pub use panic_hygiene::PanicHygiene;
pub use randomness::UnseededRandomness;
pub use wall_clock::WallClockOutsideObs;

/// Lint name: unordered `HashMap`/`HashSet` iteration in result paths.
pub const NONDET_ITER: &str = "nondeterministic-iteration";
/// Lint name: `Instant::now`/`SystemTime::now` outside timing modules.
pub const WALL_CLOCK: &str = "wall-clock-outside-obs";
/// Lint name: entropy-seeded RNG anywhere.
pub const UNSEEDED_RANDOMNESS: &str = "unseeded-randomness";
/// Lint name: `std::env` reads outside the CLI harness.
pub const ENV_READ: &str = "env-read-outside-cli";
/// Lint name: `unwrap()`/`expect()`/indexing in worker-critical paths.
pub const PANIC_HYGIENE: &str = "panic-hygiene";

/// One static check over a file's token stream.
///
/// A lint never does its own path scoping or pragma handling — the runner
/// applies [`Config`] scopes before calling [`Lint::check`] and filters
/// suppressed diagnostics after, so every lint composes with pragmas and
/// scoping identically.
pub trait Lint {
    /// Stable kebab-case name, used in pragmas, `--lint` filters, and
    /// JSON output.
    fn name(&self) -> &'static str;
    /// One-line description for `simba-lint --list`.
    fn description(&self) -> &'static str;
    /// Default severity.
    fn level(&self) -> Level;
    /// Scan one file, appending diagnostics. `cfg` carries sub-scopes a
    /// lint may consult (e.g. the slice-indexing scope).
    fn check(&self, file: &FileCtx, cfg: &Config, out: &mut Vec<Diagnostic>);
}

/// Every lint this crate ships, in catalog order.
pub fn all_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(NondeterministicIteration),
        Box::new(WallClockOutsideObs),
        Box::new(UnseededRandomness),
        Box::new(EnvReadOutsideCli),
        Box::new(PanicHygiene),
    ]
}

/// Shared constructor so every lint's diagnostics carry the same shape.
pub(crate) fn diag(
    lint: &'static str,
    level: Level,
    file: &FileCtx,
    tok_idx: usize,
    message: String,
) -> Diagnostic {
    Diagnostic {
        lint,
        level,
        path: file.path.clone(),
        line: file.line(tok_idx),
        message,
        context: file.enclosing_fn(tok_idx).map(|s| s.to_string()),
    }
}
