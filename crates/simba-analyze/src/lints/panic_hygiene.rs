//! `panic-hygiene`: worker-critical paths must degrade, not die.
//!
//! A panic inside the driver's worker loop, the single-flight cache, or
//! an engine execute path kills a worker thread mid-run: the session it
//! carried is lost and the RunReport silently changes shape — a
//! determinism bug wearing a crash's clothes. In the configured critical
//! paths this lint flags `.unwrap()`, `.expect(...)`, and (in the
//! narrower index scope) bare slice indexing, all of which turn
//! recoverable conditions (poisoned lock, disconnected channel, absent
//! key) into panics. Sites that uphold a real invariant keep a pragma
//! carrying the proof.

use super::{diag, Lint, PANIC_HYGIENE};
use crate::config::Config;
use crate::ctx::FileCtx;
use crate::diag::{Diagnostic, Level};
use crate::lex::TokKind;

/// Flags `unwrap`/`expect` calls and bare indexing in critical paths.
pub struct PanicHygiene;

impl Lint for PanicHygiene {
    fn name(&self) -> &'static str {
        PANIC_HYGIENE
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/bare-indexing in worker loop, single-flight cache, and engine execute paths"
    }

    fn level(&self) -> Level {
        Level::Deny
    }

    fn check(&self, file: &FileCtx, cfg: &Config, out: &mut Vec<Diagnostic>) {
        let index_scoped = cfg.index_covers(&file.path);
        for i in 0..file.toks.len() {
            // `.unwrap()` / `.expect(` — exact method names only, so
            // `unwrap_or_else` and `expect_err`-free recovery idioms pass.
            if file.is_punct(i, '.')
                && (file.is_ident(i + 1, "unwrap") || file.is_ident(i + 1, "expect"))
                && file.is_punct(i + 2, '(')
            {
                let method = file.t(i + 1);
                out.push(diag(
                    PANIC_HYGIENE,
                    self.level(),
                    file,
                    i + 1,
                    format!(
                        "`.{method}()` in a worker-critical path panics the carrying thread: \
                         propagate an EngineError/WorkloadError (or recover, e.g. \
                         `unwrap_or_else(PoisonError::into_inner)`) so the session degrades \
                         instead of dying"
                    ),
                ));
            }
            // Bare indexing `expr[...]` — only in the narrower index
            // scope (worker loop + cache), where an out-of-bounds or
            // absent-key panic takes a worker down.
            if index_scoped && file.is_punct(i, '[') && is_index_base(file, i) {
                // `[..]` full-range reslicing cannot panic.
                if file.is_punct(i + 1, '.')
                    && file.is_punct(i + 2, '.')
                    && file.is_punct(i + 3, ']')
                {
                    continue;
                }
                out.push(diag(
                    PANIC_HYGIENE,
                    self.level(),
                    file,
                    i,
                    "bare indexing in a worker-critical path panics on out-of-bounds or \
                     absent key: use `.get()`/`.get_mut()` and handle the miss"
                        .to_string(),
                ));
            }
        }
    }
}

/// Does the `[` at `i` index an expression (previous token an identifier,
/// `]`, or `)`) rather than opening an array literal, attribute, or type?
fn is_index_base(file: &FileCtx, i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let prev = &file.toks[i - 1];
    match prev.kind {
        TokKind::Ident => {
            // Keywords that legally precede an array literal.
            !matches!(
                prev.text.as_str(),
                "return" | "in" | "if" | "else" | "match" | "break" | "mut" | "as" | "let"
            )
        }
        TokKind::Punct => prev.text == "]" || prev.text == ")",
        TokKind::Lit => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<u32> {
        let file = FileCtx::new("crates/simba-driver/src/driver.rs", src);
        let mut out = Vec::new();
        PanicHygiene.check(&file, &Config::permissive(), &mut out);
        out.iter().map(|d| d.line).collect()
    }

    #[test]
    fn flags_unwrap_expect_and_indexing() {
        let src = "fn f(v: &[u32], m: &Map) {\nlet a = m.get(0).unwrap();\nlet b = m.lock().expect(\"poisoned\");\nlet c = v[2];\nlet d = arrivals[user];\n}";
        assert_eq!(run(src), [2, 3, 4, 5]);
    }

    #[test]
    fn recovery_idioms_and_literals_are_clean() {
        let src = "#[derive(Debug)]\nfn f(v: &[u32]) {\nlet a = lock().unwrap_or_else(PoisonError::into_inner);\nlet b = v.get(2).copied().unwrap_or(0);\nlet c = [1, 2, 3];\nlet d = vec![0; 4];\nlet e = &v[..];\nlet ty: [u8; 4] = [0; 4];\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn indexing_only_flagged_in_index_scope() {
        let src = "fn f(v: &[u32]) { let a = v[0]; }";
        let file = FileCtx::new("crates/simba-engine/src/exec.rs", src);
        let mut out = Vec::new();
        let mut cfg = Config::permissive();
        cfg.index_scope = vec!["crates/simba-driver/".to_string()];
        PanicHygiene.check(&file, &cfg, &mut out);
        assert!(out.is_empty());
    }
}
