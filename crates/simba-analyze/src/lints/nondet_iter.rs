//! `nondeterministic-iteration`: unordered map/set iteration where order
//! can reach a fingerprint or report.
//!
//! `std::collections::HashMap`/`HashSet` use a per-process random hasher:
//! iteration order differs *across runs*, so any order-sensitive value
//! computed from it (emitted rows, serialized lists, LRU tie-breaks)
//! silently violates the byte-identical RunReport contract. In scoped
//! paths this lint flags iteration over bindings it can prove are
//! hash-map-typed, unless the statement is evidently order-insensitive
//! (sorted, collected into a `BTreeMap`/`BTreeSet`, or a pure size query)
//! or the site carries a justification pragma.
//!
//! Tracking is deliberately lightweight (this is a token-level analyzer,
//! not a type checker): a binding is map-typed if its declared type, its
//! initializer, a field/param annotation, a called function's return
//! type, or an enum-variant pattern says so. Misses are possible; false
//! positives are what the `BTreeMap`/sorted-collect guards and pragmas
//! are for.

use super::{diag, Lint, NONDET_ITER};
use crate::config::Config;
use crate::ctx::FileCtx;
use crate::diag::{Diagnostic, Level};
use std::collections::BTreeMap;

/// Iteration methods whose visit order is the hasher's.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Wrapper types looked *through* when deciding a declared type's
/// iteration order (iterating a lock guard iterates the map inside).
const WRAPPERS: &[&str] = &[
    "Arc",
    "Rc",
    "Box",
    "RwLock",
    "Mutex",
    "RefCell",
    "Option",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "MutexGuard",
];

/// Identifiers that make the statement evidently order-insensitive.
const SUPPRESSORS: &[&str] = &["BTreeMap", "BTreeSet", "count", "len", "is_empty"];

/// Flags unordered iteration over tracked `HashMap`/`HashSet` bindings.
pub struct NondeterministicIteration;

impl Lint for NondeterministicIteration {
    fn name(&self) -> &'static str {
        NONDET_ITER
    }

    fn description(&self) -> &'static str {
        "HashMap/HashSet iteration in fingerprint/report paths without sorting"
    }

    fn level(&self) -> Level {
        Level::Deny
    }

    fn check(&self, file: &FileCtx, _cfg: &Config, out: &mut Vec<Diagnostic>) {
        let tracked = collect_map_bindings(file);
        flag_iteration_sites(file, &tracked, self.level(), out);
    }
}

/// A name known to be hash-map-typed, valid over a token range (the
/// enclosing fn for locals/params; the whole file for fields, fns, and
/// variants).
struct Binding {
    start: usize,
    end: usize,
}

/// Collected map-typed names: binding spans, map-returning fn names, and
/// map-carrying enum variant names.
struct Tracked {
    bindings: BTreeMap<String, Vec<Binding>>,
    map_fns: Vec<String>,
}

fn is_hash_collection(name: &str) -> bool {
    name == "HashMap" || name == "HashSet"
}

/// Resolve the *outer* collection of a type token sequence: strip `&`,
/// `mut`, and [`WRAPPERS`], and report whether the first meaningful type
/// name is a hash collection. `Vec<RwLock<HashMap>>` is **not** — the Vec
/// itself iterates in index order.
fn outer_type_is_hash(file: &FileCtx, mut i: usize, limit: usize) -> bool {
    let mut hops = 0;
    while i < limit && hops < 12 {
        let t = file.t(i);
        if t == "&" || t == "mut" || t == "'" || t == "dyn" {
            i += 1;
            continue;
        }
        if file.is_path_sep(i) {
            i += 2;
            continue;
        }
        if file.toks.get(i).map(|k| k.kind) == Some(crate::lex::TokKind::Ident) {
            if is_hash_collection(t) {
                return true;
            }
            if WRAPPERS.contains(&t) {
                // Descend into the wrapper's first type argument.
                i += 1;
                if file.t(i) == "<" {
                    i += 1;
                    hops += 1;
                    continue;
                }
                return false;
            }
            // A path prefix like `std::collections::HashMap`: if `::`
            // follows, keep walking the path.
            if file.is_path_sep(i + 1) {
                i += 3;
                hops += 1;
                continue;
            }
            return false;
        }
        return false;
    }
    false
}

/// End of the fn enclosing token `i`, or the file end.
fn scope_end(file: &FileCtx, i: usize) -> usize {
    file.fns
        .iter()
        .filter(|f| f.start <= i && i <= f.end)
        .map(|f| f.end)
        .min()
        .unwrap_or(file.toks.len())
}

fn collect_map_bindings(file: &FileCtx) -> Tracked {
    let mut tracked = Tracked {
        bindings: BTreeMap::new(),
        map_fns: Vec::new(),
    };

    // Pass 1: `fn name(...) -> <map type>` and enum variants carrying maps.
    let mut variants: Vec<String> = Vec::new();
    for i in 0..file.toks.len() {
        if file.is_ident(i, "fn") && !file.is_punct(i.wrapping_sub(1), '.') {
            if let Some(arrow) = find_return_arrow(file, i) {
                if outer_type_is_hash(file, arrow, arrow + 16) {
                    tracked.map_fns.push(file.t(i + 1).to_string());
                }
            }
        }
    }
    // Enum variant scan: find `enum Name {`, walk its top-level entries.
    let mut i = 0;
    while i < file.toks.len() {
        if file.is_ident(i, "enum") && !file.is_punct(i.wrapping_sub(1), '.') {
            // Find the opening brace of the enum body.
            let mut j = i + 2;
            while j < file.toks.len() && file.t(j) != "{" && file.t(j) != ";" {
                j += 1;
            }
            if file.t(j) == "{" {
                let mut depth = 0i32;
                let mut k = j;
                while k < file.toks.len() {
                    match file.t(k) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "(" if depth == 1 => {
                            // `Variant(...)`: check payload for hash types.
                            let variant = file.t(k - 1).to_string();
                            let mut p = k;
                            let mut pdepth = 0i32;
                            let mut has_hash = false;
                            while p < file.toks.len() {
                                match file.t(p) {
                                    "(" => pdepth += 1,
                                    ")" => {
                                        pdepth -= 1;
                                        if pdepth == 0 {
                                            break;
                                        }
                                    }
                                    t if is_hash_collection(t) => has_hash = true,
                                    _ => {}
                                }
                                p += 1;
                            }
                            if has_hash && !variant.is_empty() {
                                variants.push(variant);
                            }
                            k = p;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                i = k;
            }
        }
        i += 1;
    }

    // Pass 2: `name: <map type>` annotations (fields, params, lets) and
    // `let name = <map-ish initializer>` / variant destructuring patterns.
    for i in 0..file.toks.len() {
        // Annotation: Ident `:` Type. Skip `::` path separators and
        // struct literals (`Point { x: 1 }` — type position can't start
        // with a literal, which `outer_type_is_hash` rejects anyway).
        if file.toks.get(i).map(|t| t.kind) == Some(crate::lex::TokKind::Ident)
            && file.is_punct(i + 1, ':')
            && !file.is_punct(i + 2, ':')
            && !file.is_punct(i.wrapping_sub(1), ':')
            && outer_type_is_hash(file, i + 2, i + 18)
        {
            let (start, end) = binding_range(file, i);
            tracked
                .bindings
                .entry(file.t(i).to_string())
                .or_default()
                .push(Binding { start, end });
        }
        // `let [mut] name = RHS;` — mark when the RHS mentions a hash
        // constructor, a map-returning fn, or an already-tracked name.
        if file.is_ident(i, "let") {
            let mut j = i + 1;
            if file.is_ident(j, "mut") {
                j += 1;
            }
            let name = file.t(j).to_string();
            if file.toks.get(j).map(|t| t.kind) != Some(crate::lex::TokKind::Ident) {
                continue;
            }
            // Find `=` before `;` (skip `==`, type annotations).
            let mut k = j + 1;
            let mut found_eq = None;
            while k < file.toks.len() && file.t(k) != ";" {
                if file.is_punct(k, '=') && !file.is_punct(k + 1, '=') && !file.is_punct(k - 1, '=')
                {
                    found_eq = Some(k);
                    break;
                }
                k += 1;
            }
            let Some(eq) = found_eq else { continue };
            let mut rhs_is_map = false;
            let mut r = eq + 1;
            while r < file.toks.len() && file.t(r) != ";" && r < eq + 40 {
                let t = file.t(r);
                if is_hash_collection(t) {
                    rhs_is_map = true;
                    break;
                }
                // A mention of a map fn or tracked binding only propagates
                // map-ness through *transparent* accessors (locks, clones,
                // guard unwraps): `map.entry(k)` or `map.get(k)` yields a
                // value, not the map.
                let is_map_fn = tracked.map_fns.iter().any(|f| f == t);
                if (is_map_fn || (is_tracked(&tracked, t, r) && !file.is_ident(r, &name)))
                    && propagates_mapness(file, r, is_map_fn)
                {
                    rhs_is_map = true;
                    break;
                }
                r += 1;
            }
            if rhs_is_map {
                let end = scope_end(file, i);
                tracked
                    .bindings
                    .entry(name)
                    .or_default()
                    .push(Binding { start: i, end });
            }
        }
        // Variant pattern `Variant(name)` marks `name` in its fn scope.
        if variants.iter().any(|v| file.is_ident(i, v))
            && file.is_punct(i + 1, '(')
            && file.toks.get(i + 2).map(|t| t.kind) == Some(crate::lex::TokKind::Ident)
        {
            let closes = file.is_punct(i + 3, ')');
            // Also accept `Variant(mut name)`.
            let (name_idx, closes) = if file.is_ident(i + 2, "mut") {
                (i + 3, file.is_punct(i + 4, ')'))
            } else {
                (i + 2, closes)
            };
            if closes {
                let end = scope_end(file, i);
                tracked
                    .bindings
                    .entry(file.t(name_idx).to_string())
                    .or_default()
                    .push(Binding { start: i, end });
            }
        }
    }
    tracked
}

/// Validity range of an annotated binding: the enclosing fn for
/// params/lets, the whole file for struct/enum fields (annotations at
/// brace depth outside any fn).
fn binding_range(file: &FileCtx, i: usize) -> (usize, usize) {
    match file.enclosing_fn(i) {
        Some(_) => (i, scope_end(file, i)),
        None => (0, file.toks.len()),
    }
}

/// Find the `->` of a fn signature starting at `fn_idx`, if any, at paren
/// depth zero before the body `{` or a `;`.
fn find_return_arrow(file: &FileCtx, fn_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = fn_idx + 1;
    while i < file.toks.len() {
        match file.t(i) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" | ";" if depth <= 0 => return None,
            "-" if depth <= 0 && file.is_punct(i + 1, '>') => return Some(i + 2),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Methods that yield the map itself (or a handle that derefs to it), so
/// a binding of the call result iterates in hash order too.
const TRANSPARENT: &[&str] = &[
    "read",
    "write",
    "lock",
    "borrow",
    "borrow_mut",
    "clone",
    "as_ref",
    "as_mut",
    "unwrap",
    "unwrap_or_else",
    "expect",
];

/// Does the map mention at `r` flow map-ness into the `let` binding? True
/// when the binding aliases the map itself or reaches it through a
/// [`TRANSPARENT`] accessor; false for value-returning methods like
/// `.entry(k)` or `.get(k)`.
fn propagates_mapness(file: &FileCtx, r: usize, is_fn_call: bool) -> bool {
    let mut j = r + 1;
    if is_fn_call {
        // Skip the call's argument list.
        if file.is_punct(j, '(') {
            let mut depth = 0i32;
            while j < file.toks.len() {
                match file.t(j) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        } else {
            // Not a call after all (e.g. a field with the fn's name).
            return false;
        }
    }
    if file.t(j) == ";" || file.t(j) == ")" {
        return true; // plain alias / reference
    }
    file.is_punct(j, '.') && TRANSPARENT.contains(&file.t(j + 1))
}

fn is_tracked(tracked: &Tracked, name: &str, at: usize) -> bool {
    tracked
        .bindings
        .get(name)
        .is_some_and(|spans| spans.iter().any(|b| b.start <= at && at <= b.end))
}

fn flag_iteration_sites(
    file: &FileCtx,
    tracked: &Tracked,
    level: Level,
    out: &mut Vec<Diagnostic>,
) {
    for i in 0..file.toks.len() {
        // `name.iter()` / `self.name.iter()` method iteration.
        if file.toks.get(i).map(|t| t.kind) == Some(crate::lex::TokKind::Ident)
            && file.is_punct(i + 1, '.')
            && ITER_METHODS.contains(&file.t(i + 2))
            && file.is_punct(i + 3, '(')
            && is_tracked(tracked, file.t(i), i)
            && !statement_is_order_insensitive(file, i)
        {
            out.push(diag(
                NONDET_ITER,
                level,
                file,
                i,
                format!(
                    "iteration over hash-ordered `{}` via `.{}()`: order differs across \
                         runs — sort the results, use a BTreeMap, or justify with a pragma",
                    file.t(i),
                    file.t(i + 2),
                ),
            ));
        }
        // `for pat in [&[mut]] name {` loop iteration.
        if file.is_ident(i, "for") {
            if let Some((name_idx, name)) = for_loop_subject(file, i) {
                if is_tracked(tracked, &name, name_idx)
                    && !statement_is_order_insensitive(file, name_idx)
                {
                    out.push(diag(
                        NONDET_ITER,
                        level,
                        file,
                        name_idx,
                        format!(
                            "`for` loop over hash-ordered `{name}`: iteration order differs \
                             across runs — sort first, use a BTreeMap, or justify with a pragma"
                        ),
                    ));
                }
            }
        }
    }
}

/// For a `for` at `i`, resolve the iterated identifier: the last plain
/// ident of the head expression before the body `{`, provided no
/// iteration-adapter call follows it (those are caught by the method
/// scan).
fn for_loop_subject(file: &FileCtx, i: usize) -> Option<(usize, String)> {
    // Find `in` at depth 0.
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < file.toks.len() {
        match file.t(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth <= 0 => return None,
            "in" if depth <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    if !file.is_ident(j, "in") {
        return None;
    }
    // Head expression: tokens until the body `{`.
    let mut last_ident: Option<(usize, String)> = None;
    let mut k = j + 1;
    let mut hdepth = 0i32;
    while k < file.toks.len() {
        match file.t(k) {
            "(" | "[" => hdepth += 1,
            ")" | "]" => hdepth -= 1,
            "{" if hdepth <= 0 => break,
            t => {
                if file.toks.get(k).map(|t| t.kind) == Some(crate::lex::TokKind::Ident)
                    && hdepth <= 0
                {
                    last_ident = Some((k, t.to_string()));
                }
            }
        }
        k += 1;
    }
    last_ident
}

/// Is the statement around a flagged iteration evidently
/// order-insensitive? True when the statement window contains a
/// [`SUPPRESSORS`] name or a `sort`-family call, or when the iteration
/// feeds a `let` binding that is sorted in the immediately following
/// statements (the canonical collect-then-sort shape).
fn statement_is_order_insensitive(file: &FileCtx, at: usize) -> bool {
    // Window: statement start (`;`/`{`/`}` going back) to end (`;`/`{`).
    let mut start = at;
    while start > 0 {
        let t = file.t(start - 1);
        if t == ";" || t == "{" || t == "}" {
            break;
        }
        start -= 1;
    }
    let mut end = at;
    while end < file.toks.len() {
        let t = file.t(end);
        if t == ";" || t == "{" {
            break;
        }
        end += 1;
    }
    let window_has = |needle: fn(&str) -> bool| -> bool {
        (start..end).any(|k| {
            file.toks.get(k).map(|t| t.kind) == Some(crate::lex::TokKind::Ident)
                && needle(file.t(k))
        })
    };
    if window_has(|t| SUPPRESSORS.contains(&t) || t.contains("sort")) {
        return true;
    }
    // Collect-then-sort: `let [mut] NAME ... = ...iteration...;` with
    // `NAME.sort*` within the next few tokens after the `;`.
    if file.is_ident(start, "let") {
        let mut n = start + 1;
        if file.is_ident(n, "mut") {
            n += 1;
        }
        let name = file.t(n).to_string();
        if !name.is_empty() {
            let lookahead_end = (end + 30).min(file.toks.len());
            for k in end..lookahead_end {
                if file.is_ident(k, &name)
                    && file.is_punct(k + 1, '.')
                    && file.t(k + 2).contains("sort")
                {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<u32> {
        let file = FileCtx::new("x.rs", src);
        let mut out = Vec::new();
        NondeterministicIteration.check(&file, &Config::permissive(), &mut out);
        out.iter().map(|d| d.line).collect()
    }

    #[test]
    fn flags_param_typed_map_iteration() {
        let src = "fn f(m: &HashMap<String, u32>) {\nfor (k, v) in m.iter() { use_it(k, v); }\n}";
        assert_eq!(run(src), [2]);
    }

    #[test]
    fn flags_for_loop_over_map_field() {
        let src = "struct S { seen: HashMap<u32, u32> }\nimpl S {\nfn f(&self) {\nfor (k, v) in &self.seen { g(k, v); }\n}\n}";
        assert_eq!(run(src), [4]);
    }

    #[test]
    fn tracks_through_map_returning_fn_and_lock_guard() {
        let src = "fn shard(&self) -> &RwLock<HashMap<String, E>> { &self.s }\nfn g(&self) {\nlet shard = self.shard().read().unwrap();\nlet lru = shard.iter().min_by_key(|e| e.1);\n}";
        assert_eq!(run(src), [4]);
    }

    #[test]
    fn tracks_enum_variant_payloads() {
        let src = "enum P { Hash(HashMap<K, V>), Flat(Vec<u32>) }\nfn f(p: P) {\nmatch p {\nP::Hash(map) => { for (k, v) in map { g(k, v); } }\nP::Flat(v) => { for x in v { h(x); } }\n}\n}";
        assert_eq!(run(src), [4]);
    }

    #[test]
    fn btreemap_and_vec_are_clean() {
        let src = "fn f(m: &BTreeMap<String, u32>, v: &Vec<u32>) {\nfor (k, _) in m.iter() { g(k); }\nfor x in v.iter() { h(x); }\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn sorted_and_size_queries_are_clean() {
        let src = "fn f(m: &HashMap<String, u32>) {\nlet mut ks: Vec<_> = m.keys().cloned().collect();\nks.sort();\nlet n = m.len();\nlet sorted_now: Vec<_> = m.iter().collect::<BTreeMap<_, _>>().into_iter().collect();\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn vec_of_locked_maps_is_not_outer_hash() {
        let src = "struct S { shards: Vec<RwLock<HashMap<K, V>>> }\nimpl S {\nfn f(&self) { for s in self.shards.iter() { g(s); } }\n}";
        assert!(run(src).is_empty());
    }
}
