//! `unseeded-randomness`: every random draw must chain from the scenario
//! seed.
//!
//! `thread_rng()`, `from_entropy()`, OS RNGs, and `rand::random` pull from
//! process entropy, so two runs of the same scenario diverge at the first
//! draw. The repo's rule: all randomness derives from the `ScenarioSpec`
//! seed via splitmix64 (`ChaCha8Rng::seed_from_u64` and the per-user
//! derivations). This lint has no allowed paths — not even binaries.

use super::{diag, Lint, UNSEEDED_RANDOMNESS};
use crate::config::Config;
use crate::ctx::FileCtx;
use crate::diag::{Diagnostic, Level};

/// Entropy-seeded constructor and RNG names that are banned outright.
const BANNED_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "ThreadRng",
    "getrandom",
];

/// Flags entropy-seeded RNG construction and `rand::random` calls.
pub struct UnseededRandomness;

impl Lint for UnseededRandomness {
    fn name(&self) -> &'static str {
        UNSEEDED_RANDOMNESS
    }

    fn description(&self) -> &'static str {
        "entropy-seeded RNGs (thread_rng/from_entropy/OsRng/rand::random) anywhere"
    }

    fn level(&self) -> Level {
        Level::Deny
    }

    fn check(&self, file: &FileCtx, _cfg: &Config, out: &mut Vec<Diagnostic>) {
        for i in 0..file.toks.len() {
            let t = file.t(i);
            let hit = if BANNED_IDENTS.contains(&t) {
                Some(t.to_string())
            } else if t == "rand" && file.is_path_sep(i + 1) && file.is_ident(i + 3, "random") {
                Some("rand::random".to_string())
            } else {
                None
            };
            if let Some(name) = hit {
                // `use rand::...` imports still count: an import of a
                // banned name is one keystroke from a violation. But skip
                // the *definition* sites inside a vendored rand itself
                // (excluded by config paths anyway).
                out.push(diag(
                    UNSEEDED_RANDOMNESS,
                    self.level(),
                    file,
                    i,
                    format!(
                        "`{name}` draws from process entropy; chain from the scenario seed \
                         instead (splitmix64 -> ChaCha8Rng::seed_from_u64)"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<u32> {
        let file = FileCtx::new("x.rs", src);
        let mut out = Vec::new();
        UnseededRandomness.check(&file, &Config::permissive(), &mut out);
        out.iter().map(|d| d.line).collect()
    }

    #[test]
    fn flags_entropy_sources() {
        let src = "fn f() {\nlet r = thread_rng();\nlet s = SmallRng::from_entropy();\nlet x: u8 = rand::random();\n}";
        assert_eq!(run(src), [2, 3, 4]);
    }

    #[test]
    fn seeded_rngs_are_clean() {
        assert!(run("fn f(seed: u64) { let r = ChaCha8Rng::seed_from_u64(seed); }").is_empty());
    }
}
