//! # SIMBA — a SImulation-BAsed DBMS benchmark for dashboard exploration
//!
//! Facade crate re-exporting the full SIMBA benchmark API. A reproduction of
//! "An Adaptive Benchmark for Modeling User Exploration of Large Datasets"
//! (SIGMOD 2025).
//!
//! # Quickstart
//!
//! ```
//! use simba::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. A dataset and a dashboard specification (six are built in).
//! let dataset = DashboardDataset::CustomerService;
//! let table = Arc::new(dataset.generate_rows(2_000, 42));
//! let dashboard = Dashboard::new(builtin(dataset), &table).unwrap();
//!
//! // 2. A DBMS under test (four engine architectures are built in).
//! let engine = EngineKind::DuckDbLike.build();
//! engine.register(table);
//!
//! // 3. Goals from a workflow, then simulate a session.
//! let goals = Workflow::Shneiderman.goals_for(&dashboard).unwrap();
//! let config = SessionConfig { seed: 7, ..Default::default() };
//! let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
//!     .run(&goals)
//!     .unwrap();
//! assert!(log.query_count() > 0);
//! ```
//!
//! # Concurrent workloads
//!
//! Multi-user load generation goes through the unified workload API: a
//! declarative [`driver::workload::ScenarioSpec`] executed by
//! [`driver::Driver::execute`]:
//!
//! ```
//! use simba::prelude::*;
//!
//! let mut spec = ScenarioSpec::new("facade-smoke", "customer_service");
//! spec.rows = 500;
//! spec.sessions = 2;
//! spec.steps_per_session = 3;
//! spec.source = SourceSpec::adaptive();
//! let outcome = Driver::execute(&spec).unwrap();
//! assert!(outcome.report.queries > 0);
//! ```
//!
//! See the crate-level docs of [`simba_core`], [`simba_engine`],
//! [`simba_data`], [`simba_sql`], [`simba_store`], [`simba_idebench`],
//! [`simba_driver`], [`simba_server`] (engines over the wire), and
//! [`simba_obs`] (tracing + metrics) for each subsystem.

pub use simba_core as core;
pub use simba_data as data;
pub use simba_driver as driver;
pub use simba_engine as engine;
pub use simba_idebench as idebench;
pub use simba_obs as obs;
pub use simba_server as server;
pub use simba_sql as sql;
pub use simba_store as store;

/// The common imports for driving the benchmark.
pub mod prelude {
    pub use simba_core::actions::{Action, ActionKind};
    pub use simba_core::algebra::parse::parse_goal;
    pub use simba_core::algebra::templates::{FieldChoice, Goal, GoalTemplateKind};
    pub use simba_core::dashboard::Dashboard;
    pub use simba_core::equivalence::Method;
    pub use simba_core::error::CoreError;
    pub use simba_core::markov::MarkovModel;
    pub use simba_core::metrics::{DurationSummary, WorkloadStats};
    pub use simba_core::oracle::{Oracle, OracleConfig};
    pub use simba_core::session::interleave::DecayConfig;
    pub use simba_core::session::source::{
        AdaptiveSource, AdaptiveWalkConfig, ScriptedSource, SessionSource, SessionStream,
    };
    pub use simba_core::session::workflows::Workflow;
    pub use simba_core::session::{SessionConfig, SessionLog, SessionRunner};
    pub use simba_core::spec::builtin::{all_builtin, builtin};
    pub use simba_core::spec::DashboardSpec;
    pub use simba_data::{DashboardDataset, DatasetSize};
    pub use simba_driver::{
        Driver, DriverConfig, RunReport, ScenarioParams, ScenarioSpec, SourceSpec,
    };
    pub use simba_engine::{all_engines, Dbms, EngineKind};
    pub use simba_idebench::{IdeBenchConfig, IdeBenchRunner, IdebenchSource};
    pub use simba_server::{RemoteDbms, Server, ServerConfig};
    pub use simba_sql::{parse_select, Select};
    pub use simba_store::{ResultSet, Table, Value};
}
