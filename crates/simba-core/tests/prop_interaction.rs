//! Property tests over the interaction layer: random action sequences must
//! keep the dashboard state machine and data layer consistent.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simba_core::dashboard::Dashboard;
use simba_core::markov::MarkovModel;
use simba_core::spec::builtin::builtin;
use simba_data::DashboardDataset;
use std::sync::Arc;

fn dashboard(ds: DashboardDataset) -> Arc<Dashboard> {
    thread_local! {
        static CACHE: std::cell::RefCell<Vec<(DashboardDataset, Arc<Dashboard>)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if let Some((_, d)) = cache.iter().find(|(k, _)| *k == ds) {
            return d.clone();
        }
        let table = ds.generate_rows(400, 3);
        let d = Arc::new(Dashboard::new(builtin(ds), &table).unwrap());
        cache.push((ds, d.clone()));
        d
    })
}

fn dataset_strategy() -> impl Strategy<Value = DashboardDataset> {
    proptest::sample::select(DashboardDataset::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every applicable action keeps the state valid: emitted queries parse,
    /// reference only schema fields, and target the dashboard's table.
    #[test]
    fn random_walks_emit_valid_queries(
        ds in dataset_strategy(),
        seed in 0u64..1000,
        steps in 1usize..12,
    ) {
        let dash = dashboard(ds);
        let model = MarkovModel::idebench_default();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut state = dash.initial_state();
        let mut prev = None;
        for _ in 0..steps {
            let Some(action) = model.pick_action(&dash, &state, prev, &mut rng) else { break };
            prev = Some(action.kind(dash.graph()));
            let emitted = dash.apply(&mut state, &action);
            for (_, query) in &emitted {
                let text = query.to_string();
                let reparsed = simba_sql::parse_select(&text)
                    .unwrap_or_else(|e| panic!("emitted SQL unparseable `{text}`: {e}"));
                prop_assert_eq!(&reparsed.from, &dash.spec().database.table);
                for col in reparsed.referenced_columns() {
                    prop_assert!(
                        dash.spec().database.field(col).is_some(),
                        "query references unknown field `{}`: {}", col, text
                    );
                }
            }
        }
    }

    /// Actions are always drawn from the applicable set, and applying one
    /// never invalidates enumeration (no panics, list stays non-empty).
    #[test]
    fn applicable_set_closed_under_application(
        ds in dataset_strategy(),
        seed in 0u64..1000,
    ) {
        let dash = dashboard(ds);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let model = MarkovModel::uniform();
        let mut state = dash.initial_state();
        let mut prev = None;
        for _ in 0..8 {
            let actions = dash.applicable_actions(&state);
            prop_assert!(!actions.is_empty());
            let Some(action) = model.pick_action(&dash, &state, prev, &mut rng) else { break };
            prop_assert!(actions.contains(&action));
            prev = Some(action.kind(dash.graph()));
            dash.apply(&mut state, &action);
        }
    }

    /// ResetAll is always a true inverse: any interaction history followed
    /// by ResetAll lands exactly on the initial state (and the data layer
    /// regenerates the initial queries).
    #[test]
    fn reset_restores_initial_queries(
        ds in dataset_strategy(),
        seed in 0u64..1000,
        steps in 1usize..10,
    ) {
        let dash = dashboard(ds);
        let model = MarkovModel::brush_heavy();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let initial_state = dash.initial_state();
        let initial_queries: Vec<String> =
            dash.all_queries(&initial_state).iter().map(|(_, q)| q.to_string()).collect();

        let mut state = dash.initial_state();
        let mut prev = None;
        for _ in 0..steps {
            if let Some(action) = model.pick_action(&dash, &state, prev, &mut rng) {
                prev = Some(action.kind(dash.graph()));
                dash.apply(&mut state, &action);
            }
        }
        dash.apply(&mut state, &simba_core::Action::ResetAll);
        prop_assert_eq!(&state, &initial_state);
        let after: Vec<String> =
            dash.all_queries(&state).iter().map(|(_, q)| q.to_string()).collect();
        prop_assert_eq!(initial_queries, after);
    }

    /// Filter propagation is monotone along the graph: a query emitted by a
    /// node has at least as many filters as the predicates its *active*
    /// ancestors contribute (and never invents filters when nothing is
    /// active).
    #[test]
    fn pristine_dashboards_emit_filterless_queries(ds in dataset_strategy()) {
        let dash = dashboard(ds);
        let state = dash.initial_state();
        for (_, query) in dash.all_queries(&state) {
            prop_assert!(query.where_clause.is_none(), "{}", query);
        }
    }
}
