//! Dashboard specification validation.
//!
//! Catches the spec errors a benchmark user is likely to make before any
//! simulation starts: dangling link endpoints, duplicate ids, widgets bound
//! to fields of the wrong role, visualizations referencing unknown fields.

use super::{ControlSpec, DashboardSpec, FieldRole};
use crate::error::CoreError;
use std::collections::HashSet;

/// Validate a dashboard specification. Returns the first problem found.
pub fn validate(spec: &DashboardSpec) -> Result<(), CoreError> {
    if spec.visualizations.is_empty() {
        return Err(CoreError::InvalidSpec(
            "a dashboard needs at least one visualization".into(),
        ));
    }

    // Unique component ids.
    let mut ids = HashSet::new();
    for id in spec
        .visualizations
        .iter()
        .map(|v| &v.id)
        .chain(spec.widgets.iter().map(|w| &w.id))
    {
        if !ids.insert(id.to_ascii_lowercase()) {
            return Err(CoreError::InvalidSpec(format!(
                "duplicate component id `{id}`"
            )));
        }
    }

    // Field references must exist, with role checks.
    let field_role = |name: &str| -> Result<FieldRole, CoreError> {
        spec.database
            .field(name)
            .map(|f| f.role)
            .ok_or_else(|| CoreError::UnknownField(name.to_string()))
    };

    for v in &spec.visualizations {
        for d in &v.dimensions {
            let role = field_role(&d.field)?;
            if role == FieldRole::Quantitative && d.transform.is_none() {
                return Err(CoreError::InvalidSpec(format!(
                    "visualization `{}` groups by quantitative field `{}` without binning",
                    v.id, d.field
                )));
            }
        }
        for m in &v.measures {
            if let Some(f) = &m.field {
                field_role(f)?;
            }
        }
        for f in &v.raw_fields {
            field_role(f)?;
        }
        if v.dimensions.is_empty() && v.measures.is_empty() && v.raw_fields.is_empty() {
            return Err(CoreError::InvalidSpec(format!(
                "visualization `{}` encodes no fields",
                v.id
            )));
        }
    }

    for w in &spec.widgets {
        let role = field_role(w.control.field())?;
        let ok = match &w.control {
            ControlSpec::Checkbox { .. }
            | ControlSpec::Radio { .. }
            | ControlSpec::Dropdown { .. } => role == FieldRole::Categorical,
            // Sliders work on numbers; temporal columns are stored as
            // numbers, so both roles are acceptable.
            ControlSpec::RangeSlider { .. } => {
                role == FieldRole::Quantitative || role == FieldRole::Temporal
            }
            ControlSpec::DateRange { .. } => role == FieldRole::Temporal,
        };
        if !ok {
            return Err(CoreError::InvalidSpec(format!(
                "widget `{}` ({}) is bound to `{}` which has role {:?}",
                w.id,
                w.control.kind_name(),
                w.control.field(),
                role
            )));
        }
    }

    // Links must reference existing components and not self-loop.
    for l in &spec.links {
        if !ids.contains(&l.source.to_ascii_lowercase()) {
            return Err(CoreError::UnknownNode(l.source.clone()));
        }
        if !ids.contains(&l.target.to_ascii_lowercase()) {
            return Err(CoreError::UnknownNode(l.target.clone()));
        }
        if l.source.eq_ignore_ascii_case(&l.target) {
            return Err(CoreError::InvalidSpec(format!(
                "self-link on `{}`",
                l.source
            )));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{
        AggOp, AggregateChannel, ChannelSpec, DatabaseSpec, FieldSpec, LinkSpec, MarkType,
        VisualizationSpec, WidgetSpec,
    };

    fn base_spec() -> DashboardSpec {
        DashboardSpec {
            name: "s".into(),
            title: "S".into(),
            dashboard_type: Default::default(),
            database: DatabaseSpec {
                table: "t".into(),
                fields: vec![
                    FieldSpec::categorical("q"),
                    FieldSpec::quantitative("n"),
                    FieldSpec::temporal("ts"),
                ],
            },
            visualizations: vec![VisualizationSpec {
                id: "v1".into(),
                title: "V1".into(),
                mark: MarkType::Bar,
                dimensions: vec![ChannelSpec::field("q")],
                measures: vec![AggregateChannel {
                    func: AggOp::Count,
                    field: None,
                }],
                raw_fields: vec![],
                selectable: false,
            }],
            widgets: vec![],
            links: vec![],
        }
    }

    #[test]
    fn valid_spec_passes() {
        assert!(validate(&base_spec()).is_ok());
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut s = base_spec();
        s.widgets.push(WidgetSpec {
            id: "V1".into(),
            title: "dup".into(),
            control: ControlSpec::Checkbox { field: "q".into() },
        });
        assert!(matches!(validate(&s), Err(CoreError::InvalidSpec(_))));
    }

    #[test]
    fn unknown_field_rejected() {
        let mut s = base_spec();
        s.visualizations[0].dimensions = vec![ChannelSpec::field("missing")];
        assert!(matches!(validate(&s), Err(CoreError::UnknownField(_))));
    }

    #[test]
    fn ungated_quantitative_dimension_rejected() {
        let mut s = base_spec();
        s.visualizations[0].dimensions = vec![ChannelSpec::field("n")];
        assert!(matches!(validate(&s), Err(CoreError::InvalidSpec(_))));
    }

    #[test]
    fn binned_quantitative_dimension_allowed() {
        use crate::spec::FieldTransform;
        let mut s = base_spec();
        s.visualizations[0].dimensions = vec![ChannelSpec::transformed(
            "n",
            FieldTransform::Bin { width: 10 },
        )];
        assert!(validate(&s).is_ok());
    }

    #[test]
    fn checkbox_on_quantitative_rejected() {
        let mut s = base_spec();
        s.widgets.push(WidgetSpec {
            id: "w".into(),
            title: "W".into(),
            control: ControlSpec::Checkbox { field: "n".into() },
        });
        assert!(matches!(validate(&s), Err(CoreError::InvalidSpec(_))));
    }

    #[test]
    fn slider_on_temporal_allowed() {
        let mut s = base_spec();
        s.widgets.push(WidgetSpec {
            id: "w".into(),
            title: "W".into(),
            control: ControlSpec::RangeSlider { field: "ts".into() },
        });
        assert!(validate(&s).is_ok());
    }

    #[test]
    fn dangling_link_rejected() {
        let mut s = base_spec();
        s.links.push(LinkSpec {
            source: "nope".into(),
            target: "v1".into(),
        });
        assert!(matches!(validate(&s), Err(CoreError::UnknownNode(_))));
    }

    #[test]
    fn self_link_rejected() {
        let mut s = base_spec();
        s.links.push(LinkSpec {
            source: "v1".into(),
            target: "v1".into(),
        });
        assert!(matches!(validate(&s), Err(CoreError::InvalidSpec(_))));
    }

    #[test]
    fn empty_dashboard_rejected() {
        let mut s = base_spec();
        s.visualizations.clear();
        assert!(validate(&s).is_err());
    }

    #[test]
    fn empty_visualization_rejected() {
        let mut s = base_spec();
        s.visualizations[0].dimensions.clear();
        s.visualizations[0].measures.clear();
        assert!(validate(&s).is_err());
    }
}
