//! The dashboard specification language (§3.0.1 of the paper).
//!
//! A dashboard is specified in JSON with three components, merging ideas
//! from IDEBench, Polaris/Tableau, and Vega-Lite:
//!
//! * the **Database Specification** ([`DatabaseSpec`]) — the dataset's
//!   fields and their analytic roles (inherited from IDEBench);
//! * the **Interface Specification** — visualizations ([`VisualizationSpec`])
//!   and interaction widgets ([`WidgetSpec`]);
//! * the **Interaction Specification** — directed [`LinkSpec`] edges saying
//!   which component updates which (e.g. a slider refining a bar chart).

pub mod builtin;
pub mod validate;

use serde::{Deserialize, Serialize};
use simba_store::ColumnRole;

/// A complete dashboard specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DashboardSpec {
    /// Machine name (also used as the spec id).
    pub name: String,
    /// Human-readable dashboard title.
    pub title: String,
    /// Sarikaya et al. dashboard type (decision making, awareness, ...).
    #[serde(default)]
    pub dashboard_type: DashboardType,
    pub database: DatabaseSpec,
    pub visualizations: Vec<VisualizationSpec>,
    #[serde(default)]
    pub widgets: Vec<WidgetSpec>,
    #[serde(default)]
    pub links: Vec<LinkSpec>,
}

/// Dashboard categories from Sarikaya et al. (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum DashboardType {
    #[default]
    StrategicDecisionMaking,
    OperationalDecisionMaking,
    QuantifiedSelf,
    Learning,
}

/// The Database Specification: table name plus field roles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatabaseSpec {
    pub table: String,
    pub fields: Vec<FieldSpec>,
}

impl DatabaseSpec {
    /// Field lookup by case-insensitive name.
    pub fn field(&self, name: &str) -> Option<&FieldSpec> {
        self.fields
            .iter()
            .find(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// All fields with the given role.
    pub fn fields_with_role(&self, role: FieldRole) -> Vec<&FieldSpec> {
        self.fields.iter().filter(|f| f.role == role).collect()
    }
}

/// One dataset field and its analytic role.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldSpec {
    pub name: String,
    pub role: FieldRole,
}

impl FieldSpec {
    pub fn categorical(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            role: FieldRole::Categorical,
        }
    }

    pub fn quantitative(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            role: FieldRole::Quantitative,
        }
    }

    pub fn temporal(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            role: FieldRole::Temporal,
        }
    }
}

/// Analytic role of a field (mirrors [`ColumnRole`] with serde support).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FieldRole {
    Categorical,
    Quantitative,
    Temporal,
}

impl From<ColumnRole> for FieldRole {
    fn from(r: ColumnRole) -> Self {
        match r {
            ColumnRole::Categorical => FieldRole::Categorical,
            ColumnRole::Quantitative => FieldRole::Quantitative,
            ColumnRole::Temporal => FieldRole::Temporal,
        }
    }
}

/// Mark types for visualizations (Vega-Lite-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum MarkType {
    Bar,
    Line,
    Area,
    Pie,
    Scatter,
    Map,
    /// A single summary number (e.g. the "Lost Calls" stat in Figure 2).
    Stat,
    Table,
}

/// Transform applied to a channel's field before encoding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FieldTransform {
    Hour,
    Day,
    Month,
    Year,
    DayOfWeek,
    Bin { width: i64 },
}

/// One encoding channel: a field plus an optional transform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelSpec {
    pub field: String,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub transform: Option<FieldTransform>,
}

impl ChannelSpec {
    pub fn field(name: impl Into<String>) -> Self {
        Self {
            field: name.into(),
            transform: None,
        }
    }

    pub fn transformed(name: impl Into<String>, t: FieldTransform) -> Self {
        Self {
            field: name.into(),
            transform: Some(t),
        }
    }
}

/// Aggregate applied to the measure channel. `field: None` means `COUNT(*)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateChannel {
    pub func: AggOp,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub field: Option<String>,
}

/// Aggregation operators available to visualizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AggOp {
    Count,
    CountDistinct,
    Sum,
    Avg,
    Min,
    Max,
}

/// One visualization in the dashboard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisualizationSpec {
    /// Unique node id within the dashboard.
    pub id: String,
    pub title: String,
    pub mark: MarkType,
    /// Dimension channels (group-by axes): x, then optional color/detail.
    #[serde(default)]
    pub dimensions: Vec<ChannelSpec>,
    /// Measure channels (aggregates). Empty + raw `fields` = raw plot.
    #[serde(default)]
    pub measures: Vec<AggregateChannel>,
    /// Raw (unaggregated) fields, for scatter/table marks.
    #[serde(default)]
    pub raw_fields: Vec<String>,
    /// Whether users can click marks to select/highlight a dimension value
    /// (the "embedded interaction widgets" of §4.1.1).
    #[serde(default)]
    pub selectable: bool,
}

/// Interaction widget controls. Checkboxes and radio buttons produce the
/// same categorical filters, sliders and brushes the same range filters
/// (§2.1's "overlapping semantics" observation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ControlSpec {
    /// Multi-select over the field's categories.
    Checkbox { field: String },
    /// Single-select (exactly one category, or none).
    Radio { field: String },
    /// Single-select dropdown menu.
    Dropdown { field: String },
    /// Numeric range slider.
    RangeSlider { field: String },
    /// Temporal range picker.
    DateRange { field: String },
}

impl ControlSpec {
    /// The filtered field.
    pub fn field(&self) -> &str {
        match self {
            ControlSpec::Checkbox { field }
            | ControlSpec::Radio { field }
            | ControlSpec::Dropdown { field }
            | ControlSpec::RangeSlider { field }
            | ControlSpec::DateRange { field } => field,
        }
    }

    /// Short kind name for reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ControlSpec::Checkbox { .. } => "checkbox",
            ControlSpec::Radio { .. } => "radio",
            ControlSpec::Dropdown { .. } => "dropdown",
            ControlSpec::RangeSlider { .. } => "range_slider",
            ControlSpec::DateRange { .. } => "date_range",
        }
    }
}

/// One interaction widget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WidgetSpec {
    pub id: String,
    pub title: String,
    pub control: ControlSpec,
}

/// A directed interaction edge: interacting with `source` updates `target`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    pub source: String,
    pub target: String,
}

impl DashboardSpec {
    /// Serialize the spec to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Parse a spec from JSON.
    pub fn from_json(json: &str) -> Result<DashboardSpec, crate::error::CoreError> {
        serde_json::from_str(json).map_err(|e| crate::error::CoreError::InvalidSpec(e.to_string()))
    }

    /// Distinct fields used anywhere in the interface (visualization
    /// channels, raw fields, and widget controls).
    pub fn used_fields(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for v in &self.visualizations {
            for d in &v.dimensions {
                out.push(&d.field);
            }
            for m in &v.measures {
                if let Some(f) = &m.field {
                    out.push(f);
                }
            }
            for f in &v.raw_fields {
                out.push(f);
            }
        }
        for w in &self.widgets {
            out.push(w.control.field());
        }
        let mut seen = std::collections::HashSet::new();
        out.retain(|f| seen.insert(f.to_ascii_lowercase()));
        out
    }

    /// Distinct *quantitative* fields used in visualization measures or raw
    /// fields — what correlation-style workflows need (§6.2.3 explains
    /// MyRide is incompatible because it exposes too few).
    pub fn used_quantitative_fields(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for v in &self.visualizations {
            for m in &v.measures {
                if let Some(f) = &m.field {
                    if self
                        .database
                        .field(f)
                        .is_some_and(|fs| fs.role == FieldRole::Quantitative)
                    {
                        out.push(f);
                    }
                }
            }
            for f in &v.raw_fields {
                if self
                    .database
                    .field(f)
                    .is_some_and(|fs| fs.role == FieldRole::Quantitative)
                {
                    out.push(f);
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        out.retain(|f| seen.insert(f.to_ascii_lowercase()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> DashboardSpec {
        DashboardSpec {
            name: "tiny".into(),
            title: "Tiny".into(),
            dashboard_type: DashboardType::OperationalDecisionMaking,
            database: DatabaseSpec {
                table: "t".into(),
                fields: vec![
                    FieldSpec::categorical("q"),
                    FieldSpec::quantitative("n"),
                    FieldSpec::temporal("ts"),
                ],
            },
            visualizations: vec![VisualizationSpec {
                id: "v1".into(),
                title: "Counts".into(),
                mark: MarkType::Bar,
                dimensions: vec![ChannelSpec::field("q")],
                measures: vec![AggregateChannel {
                    func: AggOp::Count,
                    field: None,
                }],
                raw_fields: vec![],
                selectable: true,
            }],
            widgets: vec![WidgetSpec {
                id: "w1".into(),
                title: "Queue".into(),
                control: ControlSpec::Checkbox { field: "q".into() },
            }],
            links: vec![LinkSpec {
                source: "w1".into(),
                target: "v1".into(),
            }],
        }
    }

    #[test]
    fn json_round_trip() {
        let spec = tiny_spec();
        let json = spec.to_json();
        let parsed = DashboardSpec::from_json(&json).unwrap();
        assert_eq!(spec, parsed);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(DashboardSpec::from_json("{not json").is_err());
        assert!(DashboardSpec::from_json("{}").is_err());
    }

    #[test]
    fn used_fields_deduplicates_across_components() {
        let spec = tiny_spec();
        assert_eq!(spec.used_fields(), vec!["q"]);
    }

    #[test]
    fn field_lookup_case_insensitive() {
        let spec = tiny_spec();
        assert!(spec.database.field("Q").is_some());
        assert!(spec.database.field("missing").is_none());
    }

    #[test]
    fn control_kind_names() {
        assert_eq!(
            ControlSpec::Checkbox { field: "x".into() }.kind_name(),
            "checkbox"
        );
        assert_eq!(
            ControlSpec::RangeSlider { field: "x".into() }.kind_name(),
            "range_slider"
        );
    }

    #[test]
    fn used_quantitative_fields_respects_roles() {
        let mut spec = tiny_spec();
        spec.visualizations[0].measures = vec![AggregateChannel {
            func: AggOp::Sum,
            field: Some("n".into()),
        }];
        assert_eq!(spec.used_quantitative_fields(), vec!["n"]);
    }
}
