//! The six built-in dashboard specifications (§6.1, Figure 6).
//!
//! Reconstructed from the paper's descriptions: component counts and linking
//! structure follow Figure 2 (Customer Service) and the §6.3 discussion
//! (e.g. IT Monitor has exactly 3 visualizations; Circulation Activity has
//! 2 near-identical ones; MyRide exposes too few quantitative fields for
//! correlation workflows). Database specifications are derived from the
//! `simba-data` schemas so role counts always match Figure 6.

use super::{
    AggOp, AggregateChannel, ChannelSpec, ControlSpec, DashboardSpec, DashboardType, DatabaseSpec,
    FieldSpec, FieldTransform, LinkSpec, MarkType, VisualizationSpec, WidgetSpec,
};
use simba_data::DashboardDataset;

/// Database specification derived from a dataset's schema.
pub fn database_spec(ds: DashboardDataset) -> DatabaseSpec {
    let schema = ds.schema();
    DatabaseSpec {
        table: schema.table.clone(),
        fields: schema
            .columns
            .iter()
            .map(|c| FieldSpec {
                name: c.name.clone(),
                role: c.role.into(),
            })
            .collect(),
    }
}

/// The built-in spec for a dataset's dashboard.
pub fn builtin(ds: DashboardDataset) -> DashboardSpec {
    match ds {
        DashboardDataset::CustomerService => customer_service(),
        DashboardDataset::CirculationActivity => circulation_activity(),
        DashboardDataset::SupplyChain => supply_chain(),
        DashboardDataset::UbcEnergy => ubc_energy(),
        DashboardDataset::MyRide => my_ride(),
        DashboardDataset::ItMonitor => it_monitor(),
    }
}

/// All six built-in dashboards, in Figure 6 order.
pub fn all_builtin() -> Vec<DashboardSpec> {
    DashboardDataset::ALL.into_iter().map(builtin).collect()
}

fn vis(
    id: &str,
    title: &str,
    mark: MarkType,
    dimensions: Vec<ChannelSpec>,
    measures: Vec<AggregateChannel>,
    selectable: bool,
) -> VisualizationSpec {
    VisualizationSpec {
        id: id.into(),
        title: title.into(),
        mark,
        dimensions,
        measures,
        raw_fields: vec![],
        selectable,
    }
}

fn agg(func: AggOp, field: &str) -> AggregateChannel {
    AggregateChannel {
        func,
        field: Some(field.into()),
    }
}

fn count_star() -> AggregateChannel {
    AggregateChannel {
        func: AggOp::Count,
        field: None,
    }
}

fn widget(id: &str, title: &str, control: ControlSpec) -> WidgetSpec {
    WidgetSpec {
        id: id.into(),
        title: title.into(),
        control,
    }
}

fn link(source: &str, target: &str) -> LinkSpec {
    LinkSpec {
        source: source.into(),
        target: target.into(),
    }
}

/// Customer Service (Figure 2): five linked visualizations, a queue
/// checkbox, plus direction/hour filters.
fn customer_service() -> DashboardSpec {
    DashboardSpec {
        name: "customer_service".into(),
        title: "Customer Service".into(),
        dashboard_type: DashboardType::OperationalDecisionMaking,
        database: database_spec(DashboardDataset::CustomerService),
        visualizations: vec![
            vis(
                "total_calls_by_hour",
                "Total Calls by Hour",
                MarkType::Bar,
                vec![
                    ChannelSpec::field("hour"),
                    ChannelSpec::field("rep_id"),
                    ChannelSpec::field("call_direction"),
                ],
                vec![agg(AggOp::Count, "calls")],
                true,
            ),
            vis(
                "calls_per_rep",
                "Calls per Rep",
                MarkType::Bar,
                vec![ChannelSpec::field("rep_id"), ChannelSpec::field("hour")],
                vec![agg(AggOp::Count, "calls")],
                true,
            ),
            vis(
                "calls_by_queue",
                "Calls by Queue",
                MarkType::Bar,
                vec![
                    ChannelSpec::field("queue"),
                    ChannelSpec::field("hour"),
                    ChannelSpec::field("call_direction"),
                ],
                vec![agg(AggOp::Count, "calls")],
                true,
            ),
            vis(
                "abandon_rate",
                "Percent Abandoned",
                MarkType::Stat,
                vec![],
                vec![agg(AggOp::Sum, "abandoned"), agg(AggOp::Count, "calls")],
                false,
            ),
            vis(
                "lost_calls",
                "Lost Calls",
                MarkType::Stat,
                vec![],
                vec![agg(AggOp::Count, "lost_calls")],
                false,
            ),
        ],
        widgets: vec![
            widget(
                "queue_checkbox",
                "Queue",
                ControlSpec::Checkbox {
                    field: "queue".into(),
                },
            ),
            widget(
                "direction_radio",
                "Call Direction",
                ControlSpec::Radio {
                    field: "call_direction".into(),
                },
            ),
            widget(
                "hour_slider",
                "Hour of Day",
                ControlSpec::RangeSlider {
                    field: "hour".into(),
                },
            ),
        ],
        links: vec![
            // Figure 2A: the queue checkbox updates all five visualizations.
            link("queue_checkbox", "total_calls_by_hour"),
            link("queue_checkbox", "calls_per_rep"),
            link("queue_checkbox", "calls_by_queue"),
            link("queue_checkbox", "abandon_rate"),
            link("queue_checkbox", "lost_calls"),
            link("direction_radio", "total_calls_by_hour"),
            link("direction_radio", "calls_per_rep"),
            link("direction_radio", "calls_by_queue"),
            link("hour_slider", "total_calls_by_hour"),
            link("hour_slider", "calls_per_rep"),
            link("hour_slider", "abandon_rate"),
            link("hour_slider", "lost_calls"),
            // Cross-visualization highlights.
            link("calls_per_rep", "total_calls_by_hour"),
            link("calls_by_queue", "abandon_rate"),
            link("calls_by_queue", "lost_calls"),
        ],
    }
}

/// Circulation Activity: two near-identical visualizations (§6.3 notes the
/// resulting lack of variance in query durations).
fn circulation_activity() -> DashboardSpec {
    DashboardSpec {
        name: "circulation_activity".into(),
        title: "Circulation Activity by Library".into(),
        dashboard_type: DashboardType::StrategicDecisionMaking,
        database: database_spec(DashboardDataset::CirculationActivity),
        visualizations: vec![
            vis(
                "circulation_by_branch",
                "Circulation by Branch",
                MarkType::Bar,
                vec![ChannelSpec::field("branch")],
                vec![agg(AggOp::Sum, "circulation_count")],
                true,
            ),
            // Near-identical to the branch view (§6.3 attributes the
            // dashboard's flat duration profile to this similarity).
            vis(
                "circulation_by_event",
                "Circulation by Event Type",
                MarkType::Bar,
                vec![ChannelSpec::field("event_type")],
                vec![
                    agg(AggOp::Sum, "circulation_count"),
                    agg(AggOp::Avg, "wait_days"),
                ],
                false,
            ),
        ],
        widgets: vec![
            widget(
                "branch_dropdown",
                "Branch",
                ControlSpec::Dropdown {
                    field: "branch".into(),
                },
            ),
            widget(
                "date_range",
                "Date Range",
                ControlSpec::DateRange {
                    field: "event_date".into(),
                },
            ),
        ],
        links: vec![
            link("branch_dropdown", "circulation_by_branch"),
            link("branch_dropdown", "circulation_by_event"),
            link("date_range", "circulation_by_branch"),
            link("date_range", "circulation_by_event"),
            link("circulation_by_branch", "circulation_by_event"),
        ],
    }
}

/// Supply Chain: order logistics with broad regional/categorical filters.
fn supply_chain() -> DashboardSpec {
    DashboardSpec {
        name: "supply_chain".into(),
        title: "Supply Chain".into(),
        dashboard_type: DashboardType::StrategicDecisionMaking,
        database: database_spec(DashboardDataset::SupplyChain),
        visualizations: vec![
            vis(
                "revenue_by_category",
                "Revenue by Category",
                MarkType::Bar,
                vec![
                    ChannelSpec::field("product_category"),
                    ChannelSpec::field("product_subcategory"),
                    ChannelSpec::field("brand"),
                ],
                vec![agg(AggOp::Sum, "total_revenue")],
                true,
            ),
            vis(
                "shipping_by_mode",
                "Shipping Cost by Mode",
                MarkType::Bar,
                vec![
                    ChannelSpec::field("ship_mode"),
                    ChannelSpec::field("priority"),
                    ChannelSpec::field("carrier"),
                ],
                vec![agg(AggOp::Avg, "shipping_cost")],
                true,
            ),
            vis(
                "orders_by_region",
                "Orders by Region",
                MarkType::Map,
                vec![
                    ChannelSpec::field("region"),
                    ChannelSpec::field("segment"),
                    ChannelSpec::field("state"),
                ],
                vec![count_star(), agg(AggOp::Sum, "quantity")],
                true,
            ),
            vis(
                "revenue_over_time",
                "Revenue over Time",
                MarkType::Line,
                vec![
                    ChannelSpec::transformed("order_date", FieldTransform::Month),
                    ChannelSpec::field("product_category"),
                ],
                vec![
                    agg(AggOp::Sum, "total_revenue"),
                    agg(AggOp::Avg, "discount"),
                ],
                false,
            ),
            VisualizationSpec {
                id: "discount_vs_revenue".into(),
                title: "Discount vs Revenue".into(),
                mark: MarkType::Scatter,
                dimensions: vec![],
                measures: vec![],
                raw_fields: vec![
                    "discount".into(),
                    "total_revenue".into(),
                    "unit_price".into(),
                ],
                selectable: false,
            },
        ],
        widgets: vec![
            widget(
                "region_checkbox",
                "Region",
                ControlSpec::Checkbox {
                    field: "region".into(),
                },
            ),
            widget(
                "segment_radio",
                "Segment",
                ControlSpec::Radio {
                    field: "segment".into(),
                },
            ),
            widget(
                "category_dropdown",
                "Category",
                ControlSpec::Dropdown {
                    field: "product_category".into(),
                },
            ),
            widget(
                "status_dropdown",
                "Order Status",
                ControlSpec::Dropdown {
                    field: "order_status".into(),
                },
            ),
        ],
        links: vec![
            link("region_checkbox", "revenue_by_category"),
            link("region_checkbox", "shipping_by_mode"),
            link("region_checkbox", "orders_by_region"),
            link("region_checkbox", "revenue_over_time"),
            link("segment_radio", "revenue_by_category"),
            link("segment_radio", "orders_by_region"),
            link("category_dropdown", "revenue_by_category"),
            link("category_dropdown", "revenue_over_time"),
            link("category_dropdown", "discount_vs_revenue"),
            link("status_dropdown", "orders_by_region"),
            link("status_dropdown", "revenue_over_time"),
            link("revenue_by_category", "revenue_over_time"),
            link("revenue_by_category", "discount_vs_revenue"),
            link("orders_by_region", "shipping_by_mode"),
        ],
    }
}

/// UBC Energy Map: granular per-building energy details.
fn ubc_energy() -> DashboardSpec {
    DashboardSpec {
        name: "ubc_energy".into(),
        title: "UBC Energy Map".into(),
        dashboard_type: DashboardType::StrategicDecisionMaking,
        database: database_spec(DashboardDataset::UbcEnergy),
        visualizations: vec![
            vis(
                "usage_by_building_type",
                "Usage by Building Type",
                MarkType::Bar,
                vec![ChannelSpec::field("building_type")],
                vec![agg(AggOp::Sum, "elec_kwh"), agg(AggOp::Sum, "gas_kwh")],
                true,
            ),
            vis(
                "usage_by_zone",
                "Campus Usage Map",
                MarkType::Map,
                vec![ChannelSpec::field("campus_zone")],
                vec![agg(AggOp::Sum, "elec_kwh")],
                true,
            ),
            vis(
                "intensity_by_type",
                "Energy Intensity",
                MarkType::Bar,
                vec![
                    ChannelSpec::field("building_type"),
                    ChannelSpec::field("energy_type"),
                ],
                vec![agg(AggOp::Avg, "energy_intensity")],
                false,
            ),
            vis(
                "usage_over_time",
                "Usage over Time",
                MarkType::Area,
                vec![ChannelSpec::transformed(
                    "reading_ts",
                    FieldTransform::Month,
                )],
                vec![
                    agg(AggOp::Sum, "elec_kwh"),
                    agg(AggOp::Sum, "gas_kwh"),
                    agg(AggOp::Sum, "steam_kwh"),
                ],
                false,
            ),
            vis(
                "subload_breakdown",
                "Electrical Sub-loads",
                MarkType::Table,
                vec![
                    ChannelSpec::field("building_type"),
                    ChannelSpec::field("campus_zone"),
                ],
                vec![
                    agg(AggOp::Sum, "hvac_kwh"),
                    agg(AggOp::Sum, "lighting_kwh"),
                    agg(AggOp::Sum, "plug_load_kwh"),
                    agg(AggOp::Avg, "peak_demand_kw"),
                ],
                false,
            ),
        ],
        widgets: vec![
            widget(
                "energy_checkbox",
                "Energy Type",
                ControlSpec::Checkbox {
                    field: "energy_type".into(),
                },
            ),
            widget(
                "zone_dropdown",
                "Zone",
                ControlSpec::Dropdown {
                    field: "campus_zone".into(),
                },
            ),
            widget(
                "date_range",
                "Reading Window",
                ControlSpec::DateRange {
                    field: "reading_ts".into(),
                },
            ),
        ],
        links: vec![
            link("energy_checkbox", "usage_by_building_type"),
            link("energy_checkbox", "usage_by_zone"),
            link("energy_checkbox", "usage_over_time"),
            link("zone_dropdown", "usage_by_building_type"),
            link("zone_dropdown", "intensity_by_type"),
            link("zone_dropdown", "subload_breakdown"),
            link("date_range", "usage_by_building_type"),
            link("date_range", "usage_by_zone"),
            link("date_range", "usage_over_time"),
            link("date_range", "subload_breakdown"),
            link("usage_by_zone", "intensity_by_type"),
            link("usage_by_building_type", "subload_breakdown"),
        ],
    }
}

/// MyRide: heart-rate over a cycling route. Exposes only one quantitative
/// field in its visualizations, making correlation workflows inapplicable
/// (§6.2.3).
fn my_ride() -> DashboardSpec {
    DashboardSpec {
        name: "my_ride".into(),
        title: "MyRide".into(),
        dashboard_type: DashboardType::QuantifiedSelf,
        database: database_spec(DashboardDataset::MyRide),
        visualizations: vec![
            vis(
                "hr_by_segment",
                "Heart Rate along Route",
                MarkType::Line,
                vec![ChannelSpec::field("route_segment")],
                vec![agg(AggOp::Avg, "heart_rate"), agg(AggOp::Max, "heart_rate")],
                true,
            ),
            vis(
                "hr_histogram",
                "Heart Rate Zones",
                MarkType::Bar,
                vec![ChannelSpec::transformed(
                    "heart_rate",
                    FieldTransform::Bin { width: 10 },
                )],
                vec![count_star()],
                false,
            ),
        ],
        widgets: vec![
            widget(
                "terrain_radio",
                "Terrain",
                ControlSpec::Radio {
                    field: "terrain".into(),
                },
            ),
            widget(
                "segment_dropdown",
                "Route Segment",
                ControlSpec::Dropdown {
                    field: "route_segment".into(),
                },
            ),
        ],
        links: vec![
            link("terrain_radio", "hr_by_segment"),
            link("terrain_radio", "hr_histogram"),
            link("segment_dropdown", "hr_histogram"),
            link("hr_by_segment", "hr_histogram"),
        ],
    }
}

/// IT Monitor: exactly three visualizations (§6.3) and a deep filter set
/// (§6.4 notes its filter count made over-randomized logs detectable).
fn it_monitor() -> DashboardSpec {
    DashboardSpec {
        name: "it_monitor".into(),
        title: "IT Monitor".into(),
        dashboard_type: DashboardType::OperationalDecisionMaking,
        database: database_spec(DashboardDataset::ItMonitor),
        visualizations: vec![
            vis(
                "response_by_service",
                "Response Time by Service",
                MarkType::Bar,
                vec![ChannelSpec::field("service")],
                vec![
                    agg(AggOp::Avg, "response_ms"),
                    agg(AggOp::Max, "response_ms"),
                ],
                true,
            ),
            vis(
                "alerts_over_time",
                "Alerts over Time",
                MarkType::Line,
                vec![ChannelSpec::transformed("event_ts", FieldTransform::Hour)],
                vec![count_star()],
                false,
            ),
            vis(
                "cpu_by_host",
                "CPU by Host",
                MarkType::Bar,
                vec![ChannelSpec::field("host"), ChannelSpec::field("datacenter")],
                vec![agg(AggOp::Avg, "cpu_util"), agg(AggOp::Avg, "memory_util")],
                true,
            ),
        ],
        widgets: vec![
            widget(
                "severity_checkbox",
                "Severity",
                ControlSpec::Checkbox {
                    field: "severity".into(),
                },
            ),
            widget(
                "dc_radio",
                "Datacenter",
                ControlSpec::Radio {
                    field: "datacenter".into(),
                },
            ),
            widget(
                "service_dropdown",
                "Service",
                ControlSpec::Dropdown {
                    field: "service".into(),
                },
            ),
            widget(
                "alert_checkbox",
                "Alert Type",
                ControlSpec::Checkbox {
                    field: "alert_type".into(),
                },
            ),
            widget(
                "response_slider",
                "Response (ms)",
                ControlSpec::RangeSlider {
                    field: "response_ms".into(),
                },
            ),
        ],
        links: vec![
            link("severity_checkbox", "response_by_service"),
            link("severity_checkbox", "alerts_over_time"),
            link("severity_checkbox", "cpu_by_host"),
            link("dc_radio", "response_by_service"),
            link("dc_radio", "alerts_over_time"),
            link("dc_radio", "cpu_by_host"),
            link("service_dropdown", "response_by_service"),
            link("service_dropdown", "alerts_over_time"),
            link("alert_checkbox", "alerts_over_time"),
            link("alert_checkbox", "cpu_by_host"),
            link("response_slider", "response_by_service"),
            link("response_slider", "cpu_by_host"),
            link("response_by_service", "cpu_by_host"),
            link("cpu_by_host", "alerts_over_time"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::validate::validate;

    #[test]
    fn all_builtin_specs_validate() {
        for spec in all_builtin() {
            validate(&spec).unwrap_or_else(|e| panic!("{} invalid: {e}", spec.name));
        }
    }

    #[test]
    fn it_monitor_has_three_visualizations() {
        assert_eq!(it_monitor().visualizations.len(), 3);
    }

    #[test]
    fn circulation_has_two_visualizations() {
        assert_eq!(circulation_activity().visualizations.len(), 2);
    }

    #[test]
    fn customer_service_has_five_visualizations_like_figure_2() {
        let cs = customer_service();
        assert_eq!(cs.visualizations.len(), 5);
        // The checkbox must link to all five (Figure 2A).
        let from_checkbox = cs
            .links
            .iter()
            .filter(|l| l.source == "queue_checkbox")
            .count();
        assert_eq!(from_checkbox, 5);
    }

    #[test]
    fn my_ride_exposes_one_quantitative_field() {
        let spec = my_ride();
        assert_eq!(spec.used_quantitative_fields(), vec!["heart_rate"]);
    }

    #[test]
    fn specs_round_trip_through_json() {
        for spec in all_builtin() {
            let parsed = DashboardSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(spec, parsed);
        }
    }

    #[test]
    fn database_specs_match_dataset_schemas() {
        for ds in DashboardDataset::ALL {
            let spec = builtin(ds);
            assert_eq!(spec.database.table, ds.table_name());
            assert_eq!(spec.database.fields.len(), ds.schema().width());
        }
    }
}
