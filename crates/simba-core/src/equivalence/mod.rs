//! Query equivalence and subsumption (§4.1.2 of the paper).
//!
//! Goal completion is decided three ways, in increasing cost:
//!
//! 1. **Syntactic** — canonical text equality, or >95 % string similarity
//!    after whitespace normalization (the paper's SPES fallback rule);
//! 2. **Semantic** — normal-form equality and sound subsumption reasoning
//!    (our substitute for the SPES solver, see DESIGN.md §3);
//! 3. **Result** — executed result-set coverage through
//!    [`CoverageStore`].

pub mod progress;

use simba_sql::implication::option_implies;
use simba_sql::normalize::NormalizedSelect;
use simba_sql::printer::print_select;
use simba_sql::similarity::nearly_identical;
use simba_sql::Select;
use simba_store::{CoverageStore, ResultSet};

/// Which equivalence method established a match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    Syntactic,
    Semantic,
    Result,
}

impl Method {
    /// Stable name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Method::Syntactic => "syntactic",
            Method::Semantic => "semantic",
            Method::Result => "result",
        }
    }
}

/// Syntactic equivalence: identical canonical text, or nearly identical
/// under the >95 % similarity rule.
pub fn syntactic_equivalent(a: &Select, b: &Select) -> bool {
    let ta = print_select(a);
    let tb = print_select(b);
    ta == tb || nearly_identical(&ta, &tb)
}

/// Semantic equivalence: equal normal forms (ignoring row order).
pub fn semantic_equivalent(a: &Select, b: &Select) -> bool {
    let mut na = NormalizedSelect::from_select(a);
    let mut nb = NormalizedSelect::from_select(b);
    // ORDER BY affects presentation, not content.
    na.order_by.clear();
    nb.order_by.clear();
    na == nb
}

/// Sound semantic subsumption: does `observed`'s result set necessarily
/// contain `goal`'s?
///
/// * Projection-only queries: `goal`'s projections must be a subset of
///   `observed`'s and `goal`'s WHERE must imply `observed`'s.
/// * Aggregate queries: aggregates are only comparable when computed over
///   the same input rows, so WHERE must match exactly, grouping must match,
///   and `goal`'s projections must be a subset; `observed`'s HAVING must be
///   absent or implied by `goal`'s.
///
/// Incomplete by design — a `false` means "could not prove".
pub fn semantically_subsumes(observed: &Select, goal: &Select) -> bool {
    if !observed.from.eq_ignore_ascii_case(&goal.from) {
        return false;
    }
    // A LIMIT on the observed side can drop goal rows.
    if observed.limit.is_some() {
        return false;
    }
    let no = NormalizedSelect::from_select(observed);
    let ng = NormalizedSelect::from_select(goal);

    if !ng.projections.is_subset(&no.projections) {
        return false;
    }

    let goal_aggregates = goal.is_aggregate_query();
    let observed_aggregates = observed.is_aggregate_query();
    if goal_aggregates != observed_aggregates {
        return false;
    }

    if !goal_aggregates {
        return option_implies(goal.where_clause.as_ref(), observed.where_clause.as_ref());
    }

    // Aggregate case: identical input rows and grouping required.
    if no.conjuncts != ng.conjuncts || no.group_by != ng.group_by {
        return false;
    }
    match (&observed.having, &goal.having) {
        (None, _) => true,
        (Some(oh), Some(gh)) => option_implies(Some(gh), Some(oh)),
        (Some(_), None) => false,
    }
}

/// Is `observed` a *fragment* of `goal` — a restriction of the goal query to
/// a subset of its groups (e.g. one queue of the Figure 3 goal)? Fragments
/// cover part of the goal result; a union of fragments can complete it.
///
/// Sound rule: identical grouping and projections-modulo-extra-filters,
/// where every extra conjunct in `observed` constrains only group-key
/// expressions (so surviving groups keep identical aggregate values).
pub fn semantic_fragment_of(observed: &Select, goal: &Select) -> bool {
    if !observed.from.eq_ignore_ascii_case(&goal.from) || observed.limit.is_some() {
        return false;
    }
    if !goal.is_aggregate_query() || !observed.is_aggregate_query() {
        return false;
    }
    let no = NormalizedSelect::from_select(observed);
    let ng = NormalizedSelect::from_select(goal);
    if no.group_by != ng.group_by {
        return false;
    }
    if !ng.projections.is_subset(&no.projections) {
        return false;
    }
    // Observed conjuncts = goal conjuncts + extras on group keys only.
    if !ng.conjuncts.is_subset(&no.conjuncts) {
        return false;
    }
    let group_keys = &ng.group_by;
    for extra in no.conjuncts.difference(&ng.conjuncts) {
        // Parse the conjunct back to find which expression it constrains.
        let Ok(expr) = simba_sql::parse_expr(extra) else {
            return false;
        };
        let constrained = constrained_expressions(&expr);
        if constrained.is_empty() || !constrained.iter().all(|c| group_keys.contains(c)) {
            return false;
        }
    }
    // HAVING must be identical (or absent from both).
    no.having == ng.having
}

/// The canonical prints of the expressions a conjunctive atom constrains.
fn constrained_expressions(e: &simba_sql::Expr) -> Vec<String> {
    use simba_sql::printer::print_expr;
    use simba_sql::{BinOp, Expr};
    match e {
        Expr::Binary { left, op, .. } if op.is_comparison() => vec![print_expr(left)],
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        }
        | Expr::Binary {
            left,
            op: BinOp::Or,
            right,
        } => {
            let mut out = constrained_expressions(left);
            out.extend(constrained_expressions(right));
            out
        }
        Expr::InList { expr, .. } | Expr::Between { expr, .. } | Expr::IsNull { expr, .. } => {
            vec![print_expr(expr)]
        }
        _ => vec![],
    }
}

/// Augment a query's result with constant columns implied by its
/// single-value equality filters.
///
/// Figure 3 of the paper treats `SELECT COUNT(lostCalls) … WHERE queue IN
/// ('A')` as covering the `(queue='A', count)` row of the goal query — the
/// user *saw* queue A's count even though `queue` is not a result column.
/// This function materializes that context: for every conjunct of the form
/// `expr = literal` (or single-element `IN`), a constant column named by the
/// expression is appended, unless the result already has one.
pub fn augment_result(query: &Select, result: ResultSet) -> ResultSet {
    use simba_sql::normalize::normalize_expr;
    use simba_sql::printer::print_expr;
    use simba_sql::{BinOp, Expr, Literal};

    let Some(where_clause) = &query.where_clause else {
        return result;
    };
    let normalized = normalize_expr(where_clause);
    let mut extra: Vec<(String, simba_store::Value)> = Vec::new();
    for conjunct in normalized.conjuncts() {
        let Expr::Binary {
            left,
            op: BinOp::Eq,
            right,
        } = conjunct
        else {
            continue;
        };
        let Expr::Literal(lit) = right.as_ref() else {
            continue;
        };
        if matches!(left.as_ref(), Expr::Literal(_)) {
            continue;
        }
        let name = print_expr(left);
        if result.column_index(&name).is_some()
            || extra.iter().any(|(n, _)| n.eq_ignore_ascii_case(&name))
        {
            continue;
        }
        let value = match lit {
            Literal::Null => simba_store::Value::Null,
            Literal::Bool(b) => simba_store::Value::Bool(*b),
            Literal::Int(v) => simba_store::Value::Int(*v),
            Literal::Float(v) => simba_store::Value::Float(*v),
            Literal::Str(s) => simba_store::Value::str(s),
        };
        extra.push((name, value));
    }
    if extra.is_empty() {
        return result;
    }
    let mut columns = result.columns;
    let mut rows = result.rows;
    for (name, value) in extra {
        columns.push(name);
        for row in &mut rows {
            row.push(value.clone());
        }
    }
    ResultSet::new(columns, rows)
}

/// Tracks progress of one goal query through a session.
#[derive(Debug, Clone)]
pub struct GoalChecker {
    /// The goal query.
    pub goal: Select,
    /// The goal's executed result set (for the result-equivalence method).
    pub goal_result: ResultSet,
    /// How (and that) the goal was solved.
    pub solved: Option<Method>,
}

impl GoalChecker {
    /// New checker for a goal with its pre-executed result set.
    pub fn new(goal: Select, goal_result: ResultSet) -> Self {
        Self {
            goal,
            goal_result,
            solved: None,
        }
    }

    /// Check an emitted query against the goal (syntactic, then semantic).
    /// Returns the matching method if the goal is newly solved.
    pub fn check_emitted(&mut self, query: &Select) -> Option<Method> {
        if self.solved.is_some() {
            return None;
        }
        if syntactic_equivalent(query, &self.goal) {
            self.solved = Some(Method::Syntactic);
            return self.solved;
        }
        if semantic_equivalent(query, &self.goal) || semantically_subsumes(query, &self.goal) {
            self.solved = Some(Method::Semantic);
            return self.solved;
        }
        None
    }

    /// Check accumulated result coverage (`∪R_g ⊆ ∪R_i`). Returns the
    /// method if the goal is newly solved.
    pub fn check_result(&mut self, coverage: &CoverageStore) -> Option<Method> {
        if self.solved.is_some() {
            return None;
        }
        if coverage.covers(&self.goal_result) {
            self.solved = Some(Method::Result);
            return self.solved;
        }
        None
    }

    /// Fraction of the goal's result currently covered.
    pub fn coverage_fraction(&self, coverage: &CoverageStore) -> f64 {
        if self.goal_result.is_empty() {
            return if self.solved.is_some() { 1.0 } else { 0.0 };
        }
        coverage.covered_rows(&self.goal_result) as f64 / self.goal_result.n_rows() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_sql::parse_select;
    use simba_store::Value;

    fn q(sql: &str) -> Select {
        parse_select(sql).unwrap()
    }

    #[test]
    fn syntactic_catches_whitespace_and_case() {
        assert!(syntactic_equivalent(
            &q("SELECT a FROM t WHERE x = 1"),
            &q("select  a  from  t  where x = 1")
        ));
    }

    #[test]
    fn syntactic_catches_near_identical() {
        let a = q(
            "SELECT queue, hour, call_direction, COUNT(calls) FROM customer_service \
                   WHERE queue IN ('A') GROUP BY queue, hour, call_direction",
        );
        let b = q(
            "SELECT queue, hour, call_direction, COUNT(calls) FROM customer_service \
                   WHERE queue IN ('B') GROUP BY queue, hour, call_direction",
        );
        assert!(syntactic_equivalent(&a, &b), "the paper's >95% rule");
    }

    #[test]
    fn semantic_equivalence_modulo_form() {
        assert!(semantic_equivalent(
            &q("SELECT rep, SUM(c) / COUNT(c) FROM t GROUP BY rep"),
            &q("SELECT AVG(c), rep FROM t GROUP BY rep")
        ));
        assert!(!semantic_equivalent(
            &q("SELECT rep, SUM(c) FROM t GROUP BY rep"),
            &q("SELECT rep, AVG(c) FROM t GROUP BY rep")
        ));
    }

    #[test]
    fn projection_subsumption_with_weaker_filter() {
        let observed = q("SELECT a, b, c FROM t");
        let goal = q("SELECT a, b FROM t WHERE a > 5");
        assert!(semantically_subsumes(&observed, &goal));
        assert!(!semantically_subsumes(&goal, &observed));
    }

    #[test]
    fn aggregate_subsumption_requires_equal_filters() {
        let observed = q("SELECT queue, COUNT(*), SUM(x) FROM t GROUP BY queue");
        let goal = q("SELECT queue, COUNT(*) FROM t GROUP BY queue");
        assert!(semantically_subsumes(&observed, &goal));
        // Different WHERE on aggregates: unsound, must refuse.
        let observed2 = q("SELECT queue, COUNT(*) FROM t WHERE a > 1 GROUP BY queue");
        assert!(!semantically_subsumes(&observed2, &goal));
    }

    #[test]
    fn having_weakening_is_subsumption() {
        let observed = q("SELECT q, COUNT(*) FROM t GROUP BY q HAVING COUNT(*) > 1");
        let goal = q("SELECT q, COUNT(*) FROM t GROUP BY q HAVING COUNT(*) > 5");
        assert!(semantically_subsumes(&observed, &goal));
        assert!(!semantically_subsumes(&goal, &observed));
    }

    #[test]
    fn limit_blocks_subsumption() {
        let observed = q("SELECT a FROM t LIMIT 10");
        let goal = q("SELECT a FROM t");
        assert!(!semantically_subsumes(&observed, &goal));
    }

    #[test]
    fn fragment_detection_figure_3() {
        // The Figure 3 scenario: per-queue restrictions of the goal query
        // are fragments when the filter hits the group key.
        let goal = q("SELECT queue, COUNT(lost_calls) FROM cs GROUP BY queue");
        let frag =
            q("SELECT queue, COUNT(lost_calls) FROM cs WHERE queue IN ('A', 'B') GROUP BY queue");
        assert!(semantic_fragment_of(&frag, &goal));
        // Filtering on a non-key column changes aggregate values: not a fragment.
        let not_frag = q("SELECT queue, COUNT(lost_calls) FROM cs WHERE hour > 9 GROUP BY queue");
        assert!(!semantic_fragment_of(&not_frag, &goal));
    }

    #[test]
    fn goal_checker_progression() {
        let goal = q("SELECT queue, COUNT(*) FROM t GROUP BY queue");
        let goal_result = ResultSet::new(
            vec!["queue".into(), "COUNT(*)".into()],
            vec![
                vec![Value::str("A"), Value::Int(2)],
                vec![Value::str("B"), Value::Int(1)],
            ],
        );
        let mut checker = GoalChecker::new(goal.clone(), goal_result.clone());

        // Unrelated query: no match.
        assert!(checker.check_emitted(&q("SELECT x FROM t")).is_none());
        assert!(checker.solved.is_none());

        // Result coverage path.
        let mut cov = CoverageStore::new();
        cov.absorb(&goal_result);
        assert_eq!(checker.check_result(&cov), Some(Method::Result));
        assert_eq!(checker.solved, Some(Method::Result));

        // Solved goals stay solved.
        assert!(checker.check_emitted(&goal).is_none());
    }

    #[test]
    fn goal_checker_semantic_path() {
        let goal = q("SELECT queue, COUNT(*) FROM t GROUP BY queue");
        let mut checker = GoalChecker::new(
            goal,
            ResultSet::empty(vec!["queue".into(), "COUNT(*)".into()]),
        );
        let emitted = q("SELECT COUNT(*), queue, SUM(x) FROM t GROUP BY queue");
        assert_eq!(checker.check_emitted(&emitted), Some(Method::Semantic));
    }

    #[test]
    fn coverage_fraction_partial() {
        let goal = q("SELECT queue FROM t");
        let goal_result = ResultSet::new(
            vec!["queue".into()],
            vec![vec![Value::str("A")], vec![Value::str("B")]],
        );
        let checker = GoalChecker::new(goal, goal_result);
        let mut cov = CoverageStore::new();
        cov.absorb(&ResultSet::new(
            vec!["queue".into()],
            vec![vec![Value::str("A")]],
        ));
        assert!((checker.coverage_fraction(&cov) - 0.5).abs() < 1e-12);
    }
}
