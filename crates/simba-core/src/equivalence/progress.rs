//! The planner's progress heuristic θ (§4.1.2, *Measuring Progress*).
//!
//! θ(s) measures how much of the goal result sets the user has seen in
//! state `s`: `|∪ R_g ∩ ∪ R_i|`. The Oracle compares candidate actions by
//! the coverage their emitted queries would add.

use simba_store::{CoverageStore, ResultSet};

/// Total goal rows covered by the accumulated results (θ over a goal set).
pub fn total_covered(coverage: &CoverageStore, goals: &[&ResultSet]) -> usize {
    goals.iter().map(|g| coverage.covered_rows(g)).sum()
}

/// Coverage after hypothetically absorbing `new_results` (the θ value of
/// the successor state in Algorithm 1's lookahead).
pub fn covered_after(
    coverage: &CoverageStore,
    new_results: &[ResultSet],
    goals: &[&ResultSet],
) -> usize {
    let mut hypothetical = coverage.clone();
    for r in new_results {
        hypothetical.absorb(r);
    }
    total_covered(&hypothetical, goals)
}

/// Net coverage gain of absorbing `new_results`.
pub fn coverage_gain(
    coverage: &CoverageStore,
    new_results: &[ResultSet],
    goals: &[&ResultSet],
) -> usize {
    covered_after(coverage, new_results, goals) - total_covered(coverage, goals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_store::Value;

    fn rs(values: &[(&str, i64)]) -> ResultSet {
        ResultSet::new(
            vec!["queue".into(), "n".into()],
            values
                .iter()
                .map(|(q, n)| vec![Value::str(q), Value::Int(*n)])
                .collect(),
        )
    }

    #[test]
    fn gain_counts_new_rows_only() {
        let goal = rs(&[("A", 1), ("B", 2), ("C", 3)]);
        let mut cov = CoverageStore::new();
        cov.absorb(&rs(&[("A", 1)]));
        assert_eq!(total_covered(&cov, &[&goal]), 1);

        let gain = coverage_gain(&cov, &[rs(&[("B", 2)])], &[&goal]);
        assert_eq!(gain, 1);
        // Re-seeing A adds nothing.
        let no_gain = coverage_gain(&cov, &[rs(&[("A", 1)])], &[&goal]);
        assert_eq!(no_gain, 0);
    }

    #[test]
    fn gain_is_hypothetical_not_destructive() {
        let goal = rs(&[("A", 1), ("B", 2)]);
        let cov = CoverageStore::new();
        let _ = coverage_gain(&cov, &[rs(&[("A", 1)])], &[&goal]);
        assert_eq!(total_covered(&cov, &[&goal]), 0, "original store untouched");
    }

    #[test]
    fn multiple_goals_sum() {
        let g1 = rs(&[("A", 1)]);
        let g2 = rs(&[("B", 2)]);
        let cov = CoverageStore::new();
        let gain = coverage_gain(&cov, &[rs(&[("A", 1), ("B", 2)])], &[&g1, &g2]);
        assert_eq!(gain, 2);
    }
}
