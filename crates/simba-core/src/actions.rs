//! Allowable actions: the data manipulations a simulated user can perform
//! (§3, §4.1.1).
//!
//! Actions operate on the interaction graph state; applying one returns the
//! set of visualization nodes whose queries must be re-executed (the
//! paper's "affected nodes"). Enumeration of candidate actions is driven by
//! [`FieldDomains`] extracted from the dataset, mirroring how a real user
//! sees the actual categories and ranges in the dashboard controls.

use crate::graph::{DashboardState, InteractionGraph, NodeId, NodeKind, NodeState, WidgetState};
use crate::spec::ControlSpec;
use simba_store::{ColumnRole, Table};
use std::collections::{BTreeSet, HashMap};

/// Maximum categories enumerated per control (very high-cardinality fields
/// are sampled, like a scrollable list a user realistically skims).
pub const MAX_CATEGORIES: usize = 24;

/// One data-manipulation interaction.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Toggle one checkbox option.
    Toggle { widget: NodeId, value: String },
    /// Check exactly one checkbox option, clearing the others (the
    /// label-click affordance; Figure 4's per-queue walkthrough uses this).
    SetExclusive { widget: NodeId, value: String },
    /// Select (or clear, with `None`) a radio/dropdown option.
    SetSingle {
        widget: NodeId,
        value: Option<String>,
    },
    /// Drag a range slider / date range to the given inclusive bounds.
    SetRange { widget: NodeId, lo: f64, hi: f64 },
    /// Reset one widget to its empty state.
    ClearWidget { widget: NodeId },
    /// Click a mark in a selectable visualization (toggles the value in the
    /// selection set on its primary dimension).
    SelectMark { vis: NodeId, value: String },
    /// Clear a visualization's mark selection.
    ClearSelection { vis: NodeId },
    /// Reset the whole dashboard to its initial state.
    ResetAll,
}

/// Coarse interaction category, used by the Markov model's transition
/// matrix (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ActionKind {
    Checkbox,
    Radio,
    Dropdown,
    Range,
    MarkSelect,
    Clear,
    Reset,
}

impl ActionKind {
    /// All kinds, in a stable order.
    pub const ALL: [ActionKind; 7] = [
        ActionKind::Checkbox,
        ActionKind::Radio,
        ActionKind::Dropdown,
        ActionKind::Range,
        ActionKind::MarkSelect,
        ActionKind::Clear,
        ActionKind::Reset,
    ];

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ActionKind::Checkbox => "checkbox",
            ActionKind::Radio => "radio",
            ActionKind::Dropdown => "dropdown",
            ActionKind::Range => "range",
            ActionKind::MarkSelect => "mark_select",
            ActionKind::Clear => "clear",
            ActionKind::Reset => "reset",
        }
    }
}

impl Action {
    /// The action's coarse kind (for transition matrices and logs).
    pub fn kind(&self, graph: &InteractionGraph) -> ActionKind {
        match self {
            Action::Toggle { .. } | Action::SetExclusive { .. } => ActionKind::Checkbox,
            Action::SetSingle { widget, value } => {
                if value.is_none() {
                    return ActionKind::Clear;
                }
                match graph.kind(*widget) {
                    NodeKind::Widget(w) => match graph.spec.widgets[w].control {
                        ControlSpec::Radio { .. } => ActionKind::Radio,
                        _ => ActionKind::Dropdown,
                    },
                    _ => ActionKind::Dropdown,
                }
            }
            Action::SetRange { .. } => ActionKind::Range,
            Action::ClearWidget { .. } | Action::ClearSelection { .. } => ActionKind::Clear,
            Action::SelectMark { .. } => ActionKind::MarkSelect,
            Action::ResetAll => ActionKind::Reset,
        }
    }

    /// Human-readable description for session logs.
    pub fn describe(&self, graph: &InteractionGraph) -> String {
        match self {
            Action::Toggle { widget, value } => {
                format!("toggle checkbox `{}` option '{}'", graph.id(*widget), value)
            }
            Action::SetExclusive { widget, value } => {
                format!("select only '{}' in `{}`", value, graph.id(*widget))
            }
            Action::SetSingle {
                widget,
                value: Some(v),
            } => {
                format!("select '{}' in `{}`", v, graph.id(*widget))
            }
            Action::SetSingle {
                widget,
                value: None,
            } => {
                format!("clear selection in `{}`", graph.id(*widget))
            }
            Action::SetRange { widget, lo, hi } => {
                format!("set `{}` range to [{lo}, {hi}]", graph.id(*widget))
            }
            Action::ClearWidget { widget } => format!("reset widget `{}`", graph.id(*widget)),
            Action::SelectMark { vis, value } => {
                format!("click mark '{}' in `{}`", value, graph.id(*vis))
            }
            Action::ClearSelection { vis } => {
                format!("clear highlight in `{}`", graph.id(*vis))
            }
            Action::ResetAll => "reset dashboard".to_string(),
        }
    }

    /// Apply the action to `state`; returns the visualization nodes whose
    /// queries must be refreshed.
    pub fn apply(&self, graph: &InteractionGraph, state: &mut DashboardState) -> Vec<NodeId> {
        let affected_from = |node: NodeId| -> Vec<NodeId> {
            graph
                .descendants(node)
                .into_iter()
                .filter(|n| matches!(graph.kind(*n), NodeKind::Visualization(_)))
                .collect()
        };
        match self {
            Action::Toggle { widget, value } => {
                if let NodeState::Widget(WidgetState::Checkbox { selected }) =
                    state.node_mut(*widget)
                {
                    if !selected.remove(value) {
                        selected.insert(value.clone());
                    }
                }
                affected_from(*widget)
            }
            Action::SetExclusive { widget, value } => {
                if let NodeState::Widget(WidgetState::Checkbox { selected }) =
                    state.node_mut(*widget)
                {
                    selected.clear();
                    selected.insert(value.clone());
                }
                affected_from(*widget)
            }
            Action::SetSingle { widget, value } => {
                if let NodeState::Widget(WidgetState::Single { selected }) = state.node_mut(*widget)
                {
                    *selected = value.clone();
                }
                affected_from(*widget)
            }
            Action::SetRange { widget, lo, hi } => {
                if let NodeState::Widget(WidgetState::Range { bounds }) = state.node_mut(*widget) {
                    *bounds = Some((*lo, *hi));
                }
                affected_from(*widget)
            }
            Action::ClearWidget { widget } => {
                if let NodeKind::Widget(w) = graph.kind(*widget) {
                    *state.node_mut(*widget) =
                        NodeState::Widget(WidgetState::empty(&graph.spec.widgets[w].control));
                }
                affected_from(*widget)
            }
            Action::SelectMark { vis, value } => {
                // Clicking a mark replaces the highlight (clicking the
                // already-selected mark clears it) — one queue per step, as
                // in Figure 4's walkthrough.
                if let NodeState::VisSelection(selected) = state.node_mut(*vis) {
                    let was_only_this = selected.len() == 1 && selected.contains(value);
                    selected.clear();
                    if !was_only_this {
                        selected.insert(value.clone());
                    }
                }
                affected_from(*vis)
            }
            Action::ClearSelection { vis } => {
                *state.node_mut(*vis) = NodeState::VisSelection(BTreeSet::new());
                affected_from(*vis)
            }
            Action::ResetAll => {
                *state = graph.initial_state();
                graph.visualization_nodes()
            }
        }
    }
}

/// Value domains for the dataset's fields, extracted once per table.
#[derive(Debug, Clone, Default)]
pub struct FieldDomains {
    map: HashMap<String, FieldDomain>,
}

/// The observable domain of one field.
#[derive(Debug, Clone)]
pub enum FieldDomain {
    /// Distinct categories (sorted; capped at [`MAX_CATEGORIES`]).
    Categories(Vec<String>),
    /// Numeric (or temporal) range.
    Numeric { min: f64, max: f64 },
}

impl FieldDomains {
    /// Extract domains for every column of a table.
    pub fn from_table(table: &Table) -> Self {
        let mut map = HashMap::new();
        for (i, def) in table.schema().columns.iter().enumerate() {
            let col = table.column(i);
            let domain = match def.role {
                ColumnRole::Categorical => {
                    let mut cats: Vec<String> = col
                        .distinct_values()
                        .into_iter()
                        .filter_map(|v| v.as_str().map(str::to_string))
                        .collect();
                    cats.sort();
                    cats.truncate(MAX_CATEGORIES);
                    FieldDomain::Categories(cats)
                }
                ColumnRole::Quantitative | ColumnRole::Temporal => match col.min_max() {
                    Some((lo, hi)) => FieldDomain::Numeric {
                        min: lo.as_f64().unwrap_or(0.0),
                        max: hi.as_f64().unwrap_or(0.0),
                    },
                    None => FieldDomain::Numeric { min: 0.0, max: 0.0 },
                },
            };
            map.insert(def.name.to_ascii_lowercase(), domain);
        }
        Self { map }
    }

    /// Domain of a field (case-insensitive).
    pub fn get(&self, field: &str) -> Option<&FieldDomain> {
        self.map.get(&field.to_ascii_lowercase())
    }

    /// Categories of a categorical field (empty for other roles).
    pub fn categories(&self, field: &str) -> &[String] {
        match self.get(field) {
            Some(FieldDomain::Categories(c)) => c,
            _ => &[],
        }
    }

    /// Numeric range of a quantitative/temporal field.
    pub fn numeric_range(&self, field: &str) -> Option<(f64, f64)> {
        match self.get(field) {
            Some(FieldDomain::Numeric { min, max }) => Some((*min, *max)),
            _ => None,
        }
    }
}

/// Enumerate every applicable data-manipulation action in the current state
/// (the planner's `Applicable(s)` set from Algorithm 1).
pub fn enumerate_actions(
    graph: &InteractionGraph,
    state: &DashboardState,
    domains: &FieldDomains,
) -> Vec<Action> {
    let mut out = Vec::new();

    for widget in graph.widget_nodes() {
        let NodeKind::Widget(w) = graph.kind(widget) else {
            continue;
        };
        let control = &graph.spec.widgets[w].control;
        let ws = match state.node(widget) {
            NodeState::Widget(ws) => ws,
            _ => continue,
        };
        match control {
            ControlSpec::Checkbox { field } => {
                let current = match ws {
                    WidgetState::Checkbox { selected } => Some(selected),
                    _ => None,
                };
                for value in domains.categories(field) {
                    out.push(Action::Toggle {
                        widget,
                        value: value.clone(),
                    });
                    let already_exclusive =
                        current.is_some_and(|s| s.len() == 1 && s.contains(value));
                    if !already_exclusive {
                        out.push(Action::SetExclusive {
                            widget,
                            value: value.clone(),
                        });
                    }
                }
                if ws.is_active() {
                    out.push(Action::ClearWidget { widget });
                }
            }
            ControlSpec::Radio { field } | ControlSpec::Dropdown { field } => {
                let current = match ws {
                    WidgetState::Single { selected } => selected.as_deref(),
                    _ => None,
                };
                for value in domains.categories(field) {
                    if Some(value.as_str()) != current {
                        out.push(Action::SetSingle {
                            widget,
                            value: Some(value.clone()),
                        });
                    }
                }
                if current.is_some() {
                    out.push(Action::SetSingle {
                        widget,
                        value: None,
                    });
                }
            }
            ControlSpec::RangeSlider { field } | ControlSpec::DateRange { field } => {
                if let Some((min, max)) = domains.numeric_range(field) {
                    let current = match ws {
                        WidgetState::Range { bounds } => *bounds,
                        _ => None,
                    };
                    for (lo, hi) in candidate_ranges(min, max) {
                        if current != Some((lo, hi)) {
                            out.push(Action::SetRange { widget, lo, hi });
                        }
                    }
                    if current.is_some() {
                        out.push(Action::ClearWidget { widget });
                    }
                }
            }
        }
    }

    for vis_node in graph.visualization_nodes() {
        let NodeKind::Visualization(v) = graph.kind(vis_node) else {
            continue;
        };
        let vis = &graph.spec.visualizations[v];
        if !vis.selectable {
            continue;
        }
        let Some(dim) = vis.dimensions.first() else {
            continue;
        };
        let selected = match state.node(vis_node) {
            NodeState::VisSelection(s) => s,
            _ => continue,
        };
        for value in domains.categories(&dim.field) {
            out.push(Action::SelectMark {
                vis: vis_node,
                value: value.clone(),
            });
        }
        if !selected.is_empty() {
            out.push(Action::ClearSelection { vis: vis_node });
        }
    }

    if state.active_count() > 0 {
        out.push(Action::ResetAll);
    }
    out
}

/// Candidate slider positions: full range, halves, and quartiles — the
/// discrete drag targets a simulated user picks between.
pub fn candidate_ranges(min: f64, max: f64) -> Vec<(f64, f64)> {
    if max <= min || !max.is_finite() || !min.is_finite() {
        return vec![(min, max)];
    }
    let q = (max - min) / 4.0;
    vec![
        (min, max),
        (min, min + 2.0 * q),
        (min + 2.0 * q, max),
        (min, min + q),
        (min + q, min + 3.0 * q),
        (min + 3.0 * q, max),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::InteractionGraph;
    use crate::spec::builtin::builtin;
    use simba_data::DashboardDataset;

    fn setup() -> (InteractionGraph, FieldDomains) {
        let graph =
            InteractionGraph::from_spec(builtin(DashboardDataset::CustomerService)).unwrap();
        let table = DashboardDataset::CustomerService.generate_rows(2_000, 42);
        let domains = FieldDomains::from_table(&table);
        (graph, domains)
    }

    #[test]
    fn toggle_then_toggle_restores_state() {
        let (graph, _) = setup();
        let widget = graph.node("queue_checkbox").unwrap();
        let mut state = graph.initial_state();
        let original = state.clone();
        let action = Action::Toggle {
            widget,
            value: "A".into(),
        };
        action.apply(&graph, &mut state);
        assert_ne!(state, original);
        action.apply(&graph, &mut state);
        assert_eq!(state, original);
    }

    #[test]
    fn apply_returns_affected_visualizations() {
        let (graph, _) = setup();
        let widget = graph.node("queue_checkbox").unwrap();
        let mut state = graph.initial_state();
        let affected = Action::Toggle {
            widget,
            value: "A".into(),
        }
        .apply(&graph, &mut state);
        assert_eq!(
            affected.len(),
            5,
            "checkbox affects all five visualizations"
        );
    }

    #[test]
    fn enumerate_respects_domains() {
        let (graph, domains) = setup();
        let state = graph.initial_state();
        let actions = enumerate_actions(&graph, &state, &domains);
        // 4 queue toggles must be present.
        let toggles = actions
            .iter()
            .filter(|a| matches!(a, Action::Toggle { .. }))
            .count();
        assert_eq!(toggles, 4);
        // No clear/reset actions in the pristine state.
        assert!(!actions.iter().any(|a| matches!(
            a,
            Action::ClearWidget { .. } | Action::ClearSelection { .. } | Action::ResetAll
        )));
    }

    #[test]
    fn clear_actions_appear_once_active() {
        let (graph, domains) = setup();
        let mut state = graph.initial_state();
        let widget = graph.node("queue_checkbox").unwrap();
        Action::Toggle {
            widget,
            value: "A".into(),
        }
        .apply(&graph, &mut state);
        let actions = enumerate_actions(&graph, &state, &domains);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::ClearWidget { .. })));
        assert!(actions.contains(&Action::ResetAll));
    }

    #[test]
    fn reset_all_restores_initial_state() {
        let (graph, _) = setup();
        let mut state = graph.initial_state();
        let widget = graph.node("queue_checkbox").unwrap();
        Action::Toggle {
            widget,
            value: "B".into(),
        }
        .apply(&graph, &mut state);
        let affected = Action::ResetAll.apply(&graph, &mut state);
        assert_eq!(state, graph.initial_state());
        assert_eq!(affected.len(), 5);
    }

    #[test]
    fn radio_actions_exclude_current_selection() {
        let (graph, domains) = setup();
        let mut state = graph.initial_state();
        let radio = graph.node("direction_radio").unwrap();
        Action::SetSingle {
            widget: radio,
            value: Some("incoming".into()),
        }
        .apply(&graph, &mut state);
        let actions = enumerate_actions(&graph, &state, &domains);
        assert!(!actions.contains(&Action::SetSingle {
            widget: radio,
            value: Some("incoming".into())
        }));
        assert!(actions.contains(&Action::SetSingle {
            widget: radio,
            value: None
        }));
    }

    #[test]
    fn candidate_ranges_cover_and_split() {
        let ranges = candidate_ranges(0.0, 100.0);
        assert!(ranges.contains(&(0.0, 100.0)));
        assert!(ranges.contains(&(0.0, 50.0)));
        assert!(ranges.len() >= 4);
        assert_eq!(candidate_ranges(5.0, 5.0), vec![(5.0, 5.0)]);
    }

    #[test]
    fn action_kinds_classify() {
        let (graph, _) = setup();
        let widget = graph.node("queue_checkbox").unwrap();
        let radio = graph.node("direction_radio").unwrap();
        assert_eq!(
            Action::Toggle {
                widget,
                value: "A".into()
            }
            .kind(&graph),
            ActionKind::Checkbox
        );
        assert_eq!(
            Action::SetSingle {
                widget: radio,
                value: Some("incoming".into())
            }
            .kind(&graph),
            ActionKind::Radio
        );
        assert_eq!(
            Action::SetSingle {
                widget: radio,
                value: None
            }
            .kind(&graph),
            ActionKind::Clear
        );
        assert_eq!(Action::ResetAll.kind(&graph), ActionKind::Reset);
    }

    #[test]
    fn domains_extract_categories_and_ranges() {
        let (_, domains) = setup();
        assert_eq!(domains.categories("queue"), &["A", "B", "C", "D"]);
        let (lo, hi) = domains.numeric_range("hour").unwrap();
        assert!(lo >= 0.0 && hi <= 23.0 && hi > lo);
        assert!(domains.get("nonexistent").is_none());
    }
}
