//! Error types for the SIMBA benchmark core.

use std::fmt;

/// Errors surfaced by the benchmark core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A dashboard specification failed validation.
    InvalidSpec(String),
    /// A goal template could not be instantiated against a dashboard.
    GoalInstantiation(String),
    /// A referenced field does not exist in the database specification.
    UnknownField(String),
    /// A referenced node id does not exist in the interaction graph.
    UnknownNode(String),
    /// The underlying engine rejected a query.
    Engine(String),
    /// An algebra expression could not be parsed.
    AlgebraParse(String),
    /// The requested workflow is not compatible with the dashboard.
    IncompatibleWorkflow {
        workflow: String,
        dashboard: String,
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidSpec(m) => write!(f, "invalid dashboard spec: {m}"),
            CoreError::GoalInstantiation(m) => write!(f, "goal instantiation failed: {m}"),
            CoreError::UnknownField(name) => write!(f, "unknown field `{name}`"),
            CoreError::UnknownNode(id) => write!(f, "unknown node `{id}`"),
            CoreError::Engine(m) => write!(f, "engine error: {m}"),
            CoreError::AlgebraParse(m) => write!(f, "algebra parse error: {m}"),
            CoreError::IncompatibleWorkflow {
                workflow,
                dashboard,
                reason,
            } => {
                write!(
                    f,
                    "workflow `{workflow}` incompatible with dashboard `{dashboard}`: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<simba_engine::EngineError> for CoreError {
    fn from(e: simba_engine::EngineError) -> Self {
        CoreError::Engine(e.to_string())
    }
}
