//! The goal algebra (§2.2, Table 1 of the paper).
//!
//! User exploration goals are expressed as algebra terms over data
//! attributes, then translated to SQL ([`to_sql`]) to become *goal queries*.
//! The operators follow Table 1:
//!
//! | Operator | Notation | Meaning |
//! |---|---|---|
//! | concatenate | `A + B` | place attributes on the same axis |
//! | filter | `A - c` | remove instances matching a constant/set |
//! | map | `MAP(A, f)` | apply a function to each instance |
//! | aggregate | `AGG(A, f)` | aggregate attribute A with f |
//! | compare | `B × A` | opposing axes; group by B when comparing aggregates |
//! | nest | `B / A` | hierarchical grouping (from VizQL) |

pub mod parse;
pub mod templates;
pub mod to_sql;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate functions available to the `AGG` operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    CountDistinct,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// Name as written in algebra expressions (`count`, `sum`, ...).
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::CountDistinct => "count_distinct",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    /// Parse an aggregate name (case-insensitive).
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "count_distinct" | "countd" => AggFunc::CountDistinct,
            "sum" => AggFunc::Sum,
            "avg" | "mean" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            _ => return None,
        })
    }
}

/// Map functions available to the `MAP` operator (scalar transforms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MapFunc {
    Hour,
    Day,
    Month,
    Year,
    DayOfWeek,
    Abs,
    /// Bin to fixed-width buckets; width in the same unit as the attribute.
    Bin(i64),
}

impl MapFunc {
    /// Name as written in algebra expressions.
    pub fn name(self) -> String {
        match self {
            MapFunc::Hour => "hour".into(),
            MapFunc::Day => "day".into(),
            MapFunc::Month => "month".into(),
            MapFunc::Year => "year".into(),
            MapFunc::DayOfWeek => "dayofweek".into(),
            MapFunc::Abs => "abs".into(),
            MapFunc::Bin(w) => format!("bin{w}"),
        }
    }
}

/// A constant in filter terms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Constant {
    Int(i64),
    Float(f64),
    Str(String),
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(v) => write!(f, "{v}"),
            Constant::Float(v) => write!(f, "{v}"),
            Constant::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// Comparison operators usable in filter conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "<>",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        }
    }
}

/// A goal algebra term (Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GoalExpr {
    /// A data attribute (column) reference.
    Attr(String),
    /// `A + B`: concatenate onto the same axis.
    Concat(Box<GoalExpr>, Box<GoalExpr>),
    /// `B × A`: compare on opposing axes (group by the left term when the
    /// right term aggregates).
    Compare(Box<GoalExpr>, Box<GoalExpr>),
    /// `B / A`: nest A under B (hierarchical grouping; from VizQL).
    Nest(Box<GoalExpr>, Box<GoalExpr>),
    /// `A - c` / condition: element-wise removal.
    Filter {
        expr: Box<GoalExpr>,
        condition: FilterCond,
    },
    /// `MAP(A, f)`.
    Map { func: MapFunc, expr: Box<GoalExpr> },
    /// `AGG(A, f)`.
    Agg { func: AggFunc, expr: Box<GoalExpr> },
}

/// Condition attached to a filter term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FilterCond {
    /// Remove instances equal to the constant (`A - c`).
    RemoveConst(Constant),
    /// Remove instances in the set (`A - B` with B a member set).
    RemoveSet(Vec<Constant>),
    /// Keep instances whose (aggregated) value compares true — used for
    /// threshold goals such as "more than 1 lost call" (Figure 3). The
    /// comparison applies to the expression the filter wraps.
    Keep(CmpOp, Constant),
}

impl GoalExpr {
    /// Attribute reference.
    pub fn attr(name: impl Into<String>) -> GoalExpr {
        GoalExpr::Attr(name.into())
    }

    /// `AGG(self, func)`.
    pub fn agg(self, func: AggFunc) -> GoalExpr {
        GoalExpr::Agg {
            func,
            expr: Box::new(self),
        }
    }

    /// `MAP(self, func)`.
    pub fn map(self, func: MapFunc) -> GoalExpr {
        GoalExpr::Map {
            func,
            expr: Box::new(self),
        }
    }

    /// `self × other`.
    pub fn compare(self, other: GoalExpr) -> GoalExpr {
        GoalExpr::Compare(Box::new(self), Box::new(other))
    }

    /// `self + other`.
    pub fn concat(self, other: GoalExpr) -> GoalExpr {
        GoalExpr::Concat(Box::new(self), Box::new(other))
    }

    /// `self / other` (nest).
    pub fn nest(self, other: GoalExpr) -> GoalExpr {
        GoalExpr::Nest(Box::new(self), Box::new(other))
    }

    /// Keep-filter: `self - {¬(self op c)}`.
    pub fn keep(self, op: CmpOp, c: Constant) -> GoalExpr {
        GoalExpr::Filter {
            expr: Box::new(self),
            condition: FilterCond::Keep(op, c),
        }
    }

    /// Remove-filter: `self - c`.
    pub fn remove(self, c: Constant) -> GoalExpr {
        GoalExpr::Filter {
            expr: Box::new(self),
            condition: FilterCond::RemoveConst(c),
        }
    }

    /// All attribute names referenced by the term, in first-appearance order.
    pub fn attributes(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        let mut seen = std::collections::HashSet::new();
        out.retain(|a| seen.insert(*a));
        out
    }

    fn collect_attrs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            GoalExpr::Attr(a) => out.push(a),
            GoalExpr::Concat(l, r) | GoalExpr::Compare(l, r) | GoalExpr::Nest(l, r) => {
                l.collect_attrs(out);
                r.collect_attrs(out);
            }
            GoalExpr::Filter { expr, .. }
            | GoalExpr::Map { expr, .. }
            | GoalExpr::Agg { expr, .. } => expr.collect_attrs(out),
        }
    }

    /// Does the term contain an `AGG` operator?
    pub fn has_aggregate(&self) -> bool {
        match self {
            GoalExpr::Agg { .. } => true,
            GoalExpr::Attr(_) => false,
            GoalExpr::Concat(l, r) | GoalExpr::Compare(l, r) | GoalExpr::Nest(l, r) => {
                l.has_aggregate() || r.has_aggregate()
            }
            GoalExpr::Filter { expr, .. } | GoalExpr::Map { expr, .. } => expr.has_aggregate(),
        }
    }
}

impl fmt::Display for GoalExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoalExpr::Attr(a) => write!(f, "{a}"),
            GoalExpr::Concat(l, r) => write!(f, "{l} + {r}"),
            GoalExpr::Compare(l, r) => write!(f, "{l} x {r}"),
            GoalExpr::Nest(l, r) => write!(f, "{l} / {r}"),
            GoalExpr::Filter { expr, condition } => match condition {
                FilterCond::RemoveConst(c) => write!(f, "{expr} - {c}"),
                FilterCond::RemoveSet(cs) => {
                    write!(f, "{expr} - {{")?;
                    for (i, c) in cs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{c}")?;
                    }
                    write!(f, "}}")
                }
                FilterCond::Keep(op, c) => write!(f, "{expr} - {{!({expr} {} {c})}}", op.symbol()),
            },
            GoalExpr::Map { func, expr } => write!(f, "MAP({expr}, {})", func.name()),
            GoalExpr::Agg { func, expr } => write!(f, "{}({expr})", func.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_paper_example_2_2() {
        // R × MAP(AGG(C, sum)/AGG(C, count), avg) — we express the average
        // directly with the avg aggregate, as §2.2 notes is equivalent.
        let expr = GoalExpr::attr("rep_id").compare(GoalExpr::attr("calls").agg(AggFunc::Avg));
        assert_eq!(expr.to_string(), "rep_id x avg(calls)");
        assert!(expr.has_aggregate());
        assert_eq!(expr.attributes(), vec!["rep_id", "calls"]);
    }

    #[test]
    fn builds_figure_3_expression() {
        // Q × count(lostCalls) - {count(lostCalls) < 2}
        let agg = GoalExpr::attr("lost_calls").agg(AggFunc::Count);
        let expr = GoalExpr::attr("queue").compare(agg.keep(CmpOp::Gt, Constant::Int(1)));
        let s = expr.to_string();
        assert!(s.contains("queue x"), "{s}");
        assert!(s.contains("count(lost_calls)"), "{s}");
    }

    #[test]
    fn attributes_deduplicate() {
        let e = GoalExpr::attr("a").concat(GoalExpr::attr("a").agg(AggFunc::Sum));
        assert_eq!(e.attributes(), vec!["a"]);
    }

    #[test]
    fn display_compare_and_concat() {
        let e = GoalExpr::attr("t").compare(
            GoalExpr::attr("c")
                .agg(AggFunc::Count)
                .concat(GoalExpr::attr("a").agg(AggFunc::Sum)),
        );
        assert_eq!(e.to_string(), "t x count(c) + sum(a)");
    }

    #[test]
    fn agg_func_names_round_trip() {
        for f in [
            AggFunc::Count,
            AggFunc::CountDistinct,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            assert_eq!(AggFunc::from_name(f.name()), Some(f));
        }
    }
}
