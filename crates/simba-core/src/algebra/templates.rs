//! The six reusable goal templates (Table 2 of the paper).
//!
//! Each template captures a well-known exploration goal from the
//! visualization/HCI literature, parameterized by column roles
//! (Categorical / Quantitative / Temporal). Instantiating a template against
//! a dashboard's fields yields a [`Goal`]: the algebra term, its SQL goal
//! query, and the filled-in question text.

use super::to_sql::to_sql;
use super::{AggFunc, CmpOp, Constant, GoalExpr, MapFunc};
use crate::error::CoreError;
use simba_sql::Select;

/// The six goal templates of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GoalTemplateKind {
    AnalyzingSpread,
    Filtering,
    FindingCorrelations,
    Identification,
    MeasuringDifferences,
    ObservingTemporalPatterns,
}

/// Minimum column-role counts a template needs (Table 2's Cat/Quant/Temporal
/// columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemplateRequirements {
    pub categorical: usize,
    pub quantitative: usize,
    pub temporal: usize,
}

impl GoalTemplateKind {
    /// All templates in Table 2 order.
    pub const ALL: [GoalTemplateKind; 6] = [
        GoalTemplateKind::AnalyzingSpread,
        GoalTemplateKind::Filtering,
        GoalTemplateKind::FindingCorrelations,
        GoalTemplateKind::Identification,
        GoalTemplateKind::MeasuringDifferences,
        GoalTemplateKind::ObservingTemporalPatterns,
    ];

    /// Template name as it appears in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            GoalTemplateKind::AnalyzingSpread => "Analyzing Spread",
            GoalTemplateKind::Filtering => "Filtering",
            GoalTemplateKind::FindingCorrelations => "Finding Correlations",
            GoalTemplateKind::Identification => "Identification",
            GoalTemplateKind::MeasuringDifferences => "Measuring Differences Between Group Members",
            GoalTemplateKind::ObservingTemporalPatterns => "Observing Temporal Patterns",
        }
    }

    /// The generalized question text from Table 2.
    pub fn generalization(self) -> &'static str {
        match self {
            GoalTemplateKind::AnalyzingSpread => {
                "Which member of [categorical attribute] has the largest range/spread of \
                 [quantitative attribute]?"
            }
            GoalTemplateKind::Filtering => {
                "Which [categorical attributes] have an [aggregation] of [quantitative \
                 attribute] that is [comparison operator] [constant] at any point in time?"
            }
            GoalTemplateKind::FindingCorrelations => {
                "Is there a strong correlation between [numerical attribute] and [numerical \
                 attribute]?"
            }
            GoalTemplateKind::Identification => {
                "Which [categorical attribute] consumes the [max OR min] of [ordered list of \
                 quantitative attributes OR aggregate attributes]?"
            }
            GoalTemplateKind::MeasuringDifferences => {
                "Are there differences in the value of [quantitative attribute] between the \
                 members of [categorical attribute]?"
            }
            GoalTemplateKind::ObservingTemporalPatterns => {
                "How does change in [temporal attribute] affect patterns in [quantitative \
                 attribute OR aggregate attribute], if at all?"
            }
        }
    }

    /// Column-role requirements (Table 2's right-hand columns).
    pub fn requirements(self) -> TemplateRequirements {
        match self {
            GoalTemplateKind::AnalyzingSpread | GoalTemplateKind::MeasuringDifferences => {
                TemplateRequirements {
                    categorical: 1,
                    quantitative: 1,
                    temporal: 0,
                }
            }
            GoalTemplateKind::Filtering => TemplateRequirements {
                categorical: 1,
                quantitative: 1,
                temporal: 0,
            },
            GoalTemplateKind::FindingCorrelations => TemplateRequirements {
                categorical: 0,
                quantitative: 2,
                temporal: 0,
            },
            GoalTemplateKind::Identification => TemplateRequirements {
                categorical: 1,
                quantitative: 1,
                temporal: 0,
            },
            GoalTemplateKind::ObservingTemporalPatterns => TemplateRequirements {
                categorical: 0,
                quantitative: 1,
                temporal: 1,
            },
        }
    }

    /// Instantiate the template against concrete fields.
    ///
    /// `choice` supplies fields by role; templates consume from the front of
    /// each list. `threshold` parameterizes the Filtering template's HAVING
    /// constant (defaults to 1, matching Figure 3's "more than 1 lost call").
    pub fn instantiate(self, choice: &FieldChoice) -> Result<Goal, CoreError> {
        let req = self.requirements();
        if choice.categorical.len() < req.categorical
            || choice.quantitative.len() < req.quantitative
            || choice.temporal.len() < req.temporal
        {
            return Err(CoreError::GoalInstantiation(format!(
                "{} requires {}C/{}Q/{}T fields but was given {}C/{}Q/{}T",
                self.name(),
                req.categorical,
                req.quantitative,
                req.temporal,
                choice.categorical.len(),
                choice.quantitative.len(),
                choice.temporal.len(),
            )));
        }
        let cat = |i: usize| GoalExpr::attr(choice.categorical[i].clone());
        let quant = |i: usize| GoalExpr::attr(choice.quantitative[i].clone());
        let temp = |i: usize| GoalExpr::attr(choice.temporal[i].clone());

        let (expr, question) = match self {
            // C × (max(Q) + min(Q)): the member whose range is widest.
            GoalTemplateKind::AnalyzingSpread => (
                cat(0).compare(
                    quant(0)
                        .agg(AggFunc::Max)
                        .concat(quant(0).agg(AggFunc::Min)),
                ),
                format!(
                    "Which member of {} has the largest range/spread of {}?",
                    choice.categorical[0], choice.quantitative[0]
                ),
            ),
            // C × count(Q) - {count(Q) <= threshold}: HAVING-style filter.
            GoalTemplateKind::Filtering => (
                cat(0).compare(
                    quant(0)
                        .agg(AggFunc::Count)
                        .keep(CmpOp::Gt, Constant::Int(choice.threshold)),
                ),
                format!(
                    "Which {} have a count of {} that is greater than {} at any point in time?",
                    choice.categorical[0], choice.quantitative[0], choice.threshold
                ),
            ),
            // M × agg(Q1) + agg(Q2): two measures over a shared modulator
            // (Example 2.3's template).
            GoalTemplateKind::FindingCorrelations => {
                let modulator = if !choice.temporal.is_empty() {
                    temp(0)
                } else if !choice.categorical.is_empty() {
                    cat(0)
                } else {
                    return Err(CoreError::GoalInstantiation(
                        "Finding Correlations needs a modulating attribute (temporal or \
                         categorical)"
                            .into(),
                    ));
                };
                (
                    modulator.compare(
                        quant(0)
                            .agg(AggFunc::Count)
                            .concat(quant(1).agg(AggFunc::Sum)),
                    ),
                    format!(
                        "Is there a strong correlation between {} and {}?",
                        choice.quantitative[0], choice.quantitative[1]
                    ),
                )
            }
            // C × (max(Q...) + min(Q...)): extremes over the measure list.
            GoalTemplateKind::Identification => {
                let mut measures = quant(0)
                    .agg(AggFunc::Max)
                    .concat(quant(0).agg(AggFunc::Min));
                for i in 1..choice.quantitative.len().min(3) {
                    measures = measures
                        .concat(quant(i).agg(AggFunc::Max))
                        .concat(quant(i).agg(AggFunc::Min));
                }
                (
                    cat(0).compare(measures),
                    format!(
                        "Which {} consumes the max or min of {}?",
                        choice.categorical[0],
                        choice.quantitative.join(", ")
                    ),
                )
            }
            // C × avg(Q): compare group means.
            GoalTemplateKind::MeasuringDifferences => (
                cat(0).compare(quant(0).agg(AggFunc::Avg)),
                format!(
                    "Are there differences in the value of {} between the members of {}?",
                    choice.quantitative[0], choice.categorical[0]
                ),
            ),
            // DAY(T) × agg(Q).
            GoalTemplateKind::ObservingTemporalPatterns => (
                temp(0)
                    .map(choice.temporal_grain)
                    .compare(quant(0).agg(AggFunc::Sum)),
                format!(
                    "How does change in {} affect patterns in {}, if at all?",
                    choice.temporal[0], choice.quantitative[0]
                ),
            ),
        };
        Ok(Goal::new(self, expr, question, &choice.table))
    }
}

/// Concrete fields chosen for template instantiation.
#[derive(Debug, Clone)]
pub struct FieldChoice {
    pub table: String,
    pub categorical: Vec<String>,
    pub quantitative: Vec<String>,
    pub temporal: Vec<String>,
    /// Constant for the Filtering template's HAVING clause.
    pub threshold: i64,
    /// Date-part grain for Observing Temporal Patterns.
    pub temporal_grain: MapFunc,
}

impl FieldChoice {
    /// A choice over the given table and fields, with default parameters
    /// (threshold 1, daily grain).
    pub fn new(
        table: impl Into<String>,
        categorical: Vec<String>,
        quantitative: Vec<String>,
        temporal: Vec<String>,
    ) -> Self {
        Self {
            table: table.into(),
            categorical,
            quantitative,
            temporal,
            threshold: 1,
            temporal_grain: MapFunc::Day,
        }
    }
}

/// A fully instantiated user goal: algebra term, SQL goal query, and the
/// question it answers.
#[derive(Debug, Clone)]
pub struct Goal {
    pub kind: GoalTemplateKind,
    pub expr: GoalExpr,
    pub question: String,
    pub query: Select,
}

impl Goal {
    fn new(kind: GoalTemplateKind, expr: GoalExpr, question: String, table: &str) -> Self {
        let query =
            to_sql(&expr, table).expect("template instantiation always yields a translatable term");
        Self {
            kind,
            expr,
            question,
            query,
        }
    }

    /// A goal defined directly in SQL (the paper allows bypassing the
    /// algebra: "dashboard developers can specify user goals directly in
    /// SQL").
    pub fn from_sql(kind: GoalTemplateKind, question: impl Into<String>, query: Select) -> Self {
        let expr = GoalExpr::attr("(custom sql)");
        Self {
            kind,
            expr,
            question: question.into(),
            query,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_sql::printer::print_select;

    fn cs_choice() -> FieldChoice {
        FieldChoice::new(
            "customer_service",
            vec!["queue".into(), "rep_id".into()],
            vec!["lost_calls".into(), "abandoned".into()],
            vec!["hour".into()],
        )
    }

    #[test]
    fn all_templates_instantiate_on_customer_service() {
        for kind in GoalTemplateKind::ALL {
            let goal = kind.instantiate(&cs_choice()).unwrap();
            assert!(!goal.question.is_empty());
            assert_eq!(goal.query.from, "customer_service");
            assert!(
                goal.query.is_aggregate_query(),
                "{:?} should aggregate",
                kind
            );
        }
    }

    #[test]
    fn filtering_template_matches_figure_3_shape() {
        let goal = GoalTemplateKind::Filtering
            .instantiate(&cs_choice())
            .unwrap();
        let text = print_select(&goal.query);
        assert_eq!(
            text,
            "SELECT queue, COUNT(lost_calls) FROM customer_service GROUP BY queue \
             HAVING COUNT(lost_calls) > 1"
        );
    }

    #[test]
    fn correlations_prefers_temporal_modulator() {
        let goal = GoalTemplateKind::FindingCorrelations
            .instantiate(&cs_choice())
            .unwrap();
        let text = print_select(&goal.query);
        assert!(
            text.starts_with("SELECT hour, COUNT(lost_calls), SUM(abandoned)"),
            "{text}"
        );
    }

    #[test]
    fn correlations_falls_back_to_categorical_modulator() {
        let mut choice = cs_choice();
        choice.temporal.clear();
        let goal = GoalTemplateKind::FindingCorrelations
            .instantiate(&choice)
            .unwrap();
        assert!(print_select(&goal.query).contains("GROUP BY queue"));
    }

    #[test]
    fn requirements_enforced() {
        let empty = FieldChoice::new("t", vec![], vec![], vec![]);
        for kind in GoalTemplateKind::ALL {
            assert!(kind.instantiate(&empty).is_err(), "{:?}", kind);
        }
    }

    #[test]
    fn identification_uses_multiple_measures() {
        let goal = GoalTemplateKind::Identification
            .instantiate(&cs_choice())
            .unwrap();
        let text = print_select(&goal.query);
        assert!(text.contains("MAX(lost_calls)"));
        assert!(text.contains("MIN(lost_calls)"));
        assert!(text.contains("MAX(abandoned)"));
    }

    #[test]
    fn temporal_template_uses_grain() {
        let mut choice = cs_choice();
        choice.temporal_grain = MapFunc::Hour;
        let goal = GoalTemplateKind::ObservingTemporalPatterns
            .instantiate(&choice)
            .unwrap();
        assert!(print_select(&goal.query).contains("HOUR(hour)"));
    }

    #[test]
    fn threshold_parameterizes_filtering() {
        let mut choice = cs_choice();
        choice.threshold = 5;
        let goal = GoalTemplateKind::Filtering.instantiate(&choice).unwrap();
        assert!(print_select(&goal.query).contains("> 5"));
    }
}
