//! Translation from goal algebra terms to SQL goal queries (§2.3).
//!
//! A term is flattened into axis leaves: non-aggregate leaves become
//! dimensions (`SELECT` + `GROUP BY`), aggregate leaves become measures,
//! remove-filters become `WHERE` conjuncts, and keep-filters on aggregates
//! become `HAVING` conjuncts — reproducing the paper's template-to-SQL
//! mapping (Example 2.3, Figure 3).

use super::{AggFunc, CmpOp, Constant, FilterCond, GoalExpr, MapFunc};
use crate::error::CoreError;
use simba_sql::{BinOp, Expr, Func, Literal, Select, SelectItem};

/// Translate a goal algebra term into a SQL `SELECT` over `table`.
pub fn to_sql(expr: &GoalExpr, table: &str) -> Result<Select, CoreError> {
    let mut parts = Parts::default();
    collect(expr, &mut parts)?;

    if parts.dims.is_empty() && parts.measures.is_empty() {
        return Err(CoreError::GoalInstantiation(
            "goal term produced neither dimensions nor measures".into(),
        ));
    }

    let mut projections: Vec<SelectItem> =
        parts.dims.iter().cloned().map(SelectItem::bare).collect();
    projections.extend(parts.measures.iter().cloned().map(SelectItem::bare));

    let mut select = Select::new(table, projections);
    if !parts.measures.is_empty() {
        select.group_by = parts.dims.clone();
    }
    select.where_clause = Expr::conjoin(parts.wheres);
    select.having = Expr::conjoin(parts.havings);
    Ok(select)
}

#[derive(Default)]
struct Parts {
    dims: Vec<Expr>,
    measures: Vec<Expr>,
    wheres: Vec<Expr>,
    havings: Vec<Expr>,
}

fn collect(expr: &GoalExpr, parts: &mut Parts) -> Result<(), CoreError> {
    match expr {
        GoalExpr::Concat(l, r) | GoalExpr::Compare(l, r) | GoalExpr::Nest(l, r) => {
            collect(l, parts)?;
            collect(r, parts)?;
            Ok(())
        }
        GoalExpr::Filter {
            expr: inner,
            condition,
        } => {
            // Translate the wrapped term first, then attach the condition.
            let (sql, is_agg) = leaf_to_expr(inner)?;
            place_leaf(inner, parts)?;
            let cond = condition_to_expr(&sql, condition);
            if is_agg {
                parts.havings.push(cond);
            } else {
                parts.wheres.push(cond);
            }
            Ok(())
        }
        leaf => place_leaf(leaf, parts),
    }
}

/// Add a leaf term as a dimension or measure (deduplicated).
fn place_leaf(leaf: &GoalExpr, parts: &mut Parts) -> Result<(), CoreError> {
    let (sql, is_agg) = leaf_to_expr(leaf)?;
    let bucket = if is_agg {
        &mut parts.measures
    } else {
        &mut parts.dims
    };
    if !bucket.contains(&sql) {
        bucket.push(sql);
    }
    Ok(())
}

/// Translate a leaf term (Attr possibly wrapped in Map/Agg) into a SQL
/// expression; returns whether it aggregates.
fn leaf_to_expr(expr: &GoalExpr) -> Result<(Expr, bool), CoreError> {
    match expr {
        GoalExpr::Attr(name) => Ok((Expr::col(name.clone()), false)),
        GoalExpr::Map { func, expr: inner } => {
            let (sql, is_agg) = leaf_to_expr(inner)?;
            if is_agg {
                return Err(CoreError::GoalInstantiation(
                    "MAP over aggregates is not supported; aggregate the mapped attribute instead"
                        .into(),
                ));
            }
            Ok((map_to_sql(*func, sql), false))
        }
        GoalExpr::Agg { func, expr: inner } => {
            let (sql, is_agg) = leaf_to_expr(inner)?;
            if is_agg {
                return Err(CoreError::GoalInstantiation("nested aggregation".into()));
            }
            let e = match func {
                AggFunc::Count => Expr::agg(Func::Count, sql),
                AggFunc::CountDistinct => Expr::Function {
                    func: Func::Count,
                    args: vec![sql],
                    distinct: true,
                },
                AggFunc::Sum => Expr::agg(Func::Sum, sql),
                AggFunc::Avg => Expr::agg(Func::Avg, sql),
                AggFunc::Min => Expr::agg(Func::Min, sql),
                AggFunc::Max => Expr::agg(Func::Max, sql),
            };
            Ok((e, true))
        }
        GoalExpr::Filter { expr: inner, .. } => leaf_to_expr(inner),
        GoalExpr::Concat(..) | GoalExpr::Compare(..) | GoalExpr::Nest(..) => Err(
            CoreError::GoalInstantiation("axis operator where a leaf term was expected".into()),
        ),
    }
}

fn map_to_sql(func: MapFunc, arg: Expr) -> Expr {
    match func {
        MapFunc::Hour => Expr::Function {
            func: Func::Hour,
            args: vec![arg],
            distinct: false,
        },
        MapFunc::Day => Expr::Function {
            func: Func::Day,
            args: vec![arg],
            distinct: false,
        },
        MapFunc::Month => Expr::Function {
            func: Func::Month,
            args: vec![arg],
            distinct: false,
        },
        MapFunc::Year => Expr::Function {
            func: Func::Year,
            args: vec![arg],
            distinct: false,
        },
        MapFunc::DayOfWeek => Expr::Function {
            func: Func::DayOfWeek,
            args: vec![arg],
            distinct: false,
        },
        MapFunc::Abs => Expr::Function {
            func: Func::Abs,
            args: vec![arg],
            distinct: false,
        },
        MapFunc::Bin(width) => Expr::Function {
            func: Func::Bin,
            args: vec![arg, Expr::int(width)],
            distinct: false,
        },
    }
}

fn condition_to_expr(target: &Expr, cond: &FilterCond) -> Expr {
    match cond {
        FilterCond::RemoveConst(c) => {
            Expr::binary(target.clone(), BinOp::NotEq, constant_to_expr(c))
        }
        FilterCond::RemoveSet(cs) => Expr::InList {
            expr: Box::new(target.clone()),
            list: cs.iter().map(constant_to_expr).collect(),
            negated: true,
        },
        FilterCond::Keep(op, c) => {
            let bin = match op {
                CmpOp::Eq => BinOp::Eq,
                CmpOp::NotEq => BinOp::NotEq,
                CmpOp::Lt => BinOp::Lt,
                CmpOp::LtEq => BinOp::LtEq,
                CmpOp::Gt => BinOp::Gt,
                CmpOp::GtEq => BinOp::GtEq,
            };
            Expr::binary(target.clone(), bin, constant_to_expr(c))
        }
    }
}

fn constant_to_expr(c: &Constant) -> Expr {
    match c {
        Constant::Int(v) => Expr::Literal(Literal::Int(*v)),
        Constant::Float(v) => Expr::Literal(Literal::Float(*v)),
        Constant::Str(s) => Expr::Literal(Literal::Str(s.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_sql::printer::print_select;

    #[test]
    fn figure_3_goal_query() {
        // Q × count(lostCalls) - {keep count > 1} →
        // SELECT queue, COUNT(lost_calls) FROM customer_service
        // GROUP BY queue HAVING COUNT(lost_calls) > 1
        let agg = GoalExpr::attr("lost_calls").agg(AggFunc::Count);
        let expr = GoalExpr::attr("queue").compare(agg.keep(CmpOp::Gt, Constant::Int(1)));
        let sql = to_sql(&expr, "customer_service").unwrap();
        assert_eq!(
            print_select(&sql),
            "SELECT queue, COUNT(lost_calls) FROM customer_service \
             GROUP BY queue HAVING COUNT(lost_calls) > 1"
        );
    }

    #[test]
    fn example_2_3_correlation_query() {
        // modulator × count(*) + sum(abandoned) →
        // SELECT hour, COUNT(calls), SUM(abandoned) FROM t GROUP BY hour
        let expr = GoalExpr::attr("hour").compare(
            GoalExpr::attr("calls")
                .agg(AggFunc::Count)
                .concat(GoalExpr::attr("abandoned").agg(AggFunc::Sum)),
        );
        let sql = to_sql(&expr, "customer_service").unwrap();
        assert_eq!(
            print_select(&sql),
            "SELECT hour, COUNT(calls), SUM(abandoned) FROM customer_service GROUP BY hour"
        );
    }

    #[test]
    fn temporal_pattern_with_map() {
        let expr = GoalExpr::attr("ts")
            .map(MapFunc::Day)
            .compare(GoalExpr::attr("sales").agg(AggFunc::Sum));
        let sql = to_sql(&expr, "t").unwrap();
        assert_eq!(
            print_select(&sql),
            "SELECT DAY(ts), SUM(sales) FROM t GROUP BY DAY(ts)"
        );
    }

    #[test]
    fn remove_filter_goes_to_where() {
        let expr = GoalExpr::attr("queue")
            .remove(Constant::Str("X".into()))
            .compare(GoalExpr::attr("calls").agg(AggFunc::Count));
        let sql = to_sql(&expr, "t").unwrap();
        let text = print_select(&sql);
        assert!(text.contains("WHERE queue <> 'X'"), "{text}");
        assert!(text.contains("GROUP BY queue"), "{text}");
    }

    #[test]
    fn remove_set_filter() {
        let expr = GoalExpr::Filter {
            expr: Box::new(GoalExpr::attr("region")),
            condition: FilterCond::RemoveSet(vec![
                Constant::Str("north".into()),
                Constant::Str("south".into()),
            ]),
        };
        let sql = to_sql(&expr, "t").unwrap();
        let text = print_select(&sql);
        assert!(text.contains("region NOT IN ('north', 'south')"), "{text}");
    }

    #[test]
    fn non_aggregate_projection_has_no_group_by() {
        let expr = GoalExpr::attr("a").concat(GoalExpr::attr("b"));
        let sql = to_sql(&expr, "t").unwrap();
        assert_eq!(print_select(&sql), "SELECT a, b FROM t");
    }

    #[test]
    fn keep_on_raw_attr_goes_to_where() {
        let expr = GoalExpr::attr("price")
            .keep(CmpOp::GtEq, Constant::Float(10.0))
            .compare(GoalExpr::attr("price").agg(AggFunc::Avg));
        let sql = to_sql(&expr, "t").unwrap();
        let text = print_select(&sql);
        assert!(text.contains("WHERE price >= 10"), "{text}");
    }

    #[test]
    fn nested_aggregation_rejected() {
        let expr = GoalExpr::attr("x").agg(AggFunc::Sum).agg(AggFunc::Max);
        assert!(to_sql(&expr, "t").is_err());
    }

    #[test]
    fn duplicate_leaves_deduplicate() {
        let expr = GoalExpr::attr("a")
            .compare(GoalExpr::attr("a").concat(GoalExpr::attr("q").agg(AggFunc::Sum)));
        let sql = to_sql(&expr, "t").unwrap();
        assert_eq!(print_select(&sql), "SELECT a, SUM(q) FROM t GROUP BY a");
    }

    #[test]
    fn count_distinct_translation() {
        let expr = GoalExpr::attr("c").compare(GoalExpr::attr("user").agg(AggFunc::CountDistinct));
        let sql = to_sql(&expr, "t").unwrap();
        assert!(print_select(&sql).contains("COUNT(DISTINCT user)"));
    }
}
