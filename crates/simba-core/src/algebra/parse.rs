//! Text syntax for goal algebra expressions.
//!
//! Benchmark users can write goals as text instead of building
//! [`GoalExpr`] trees:
//!
//! ```text
//! queue x count(lost_calls) - {count(lost_calls) < 2}
//! hour x count(calls) + sum(abandoned)
//! day(ts) x sum(revenue)
//! ```
//!
//! Grammar (all binary axis operators share one precedence level and
//! associate left; use parentheses to group):
//!
//! ```text
//! expr   := term (('x' | '×' | '+' | '/') term)*
//! term   := func '(' expr ')' | ident | '(' expr ')' | term filter
//! filter := '-' const | '-' '{' expr cmp const '}'
//! ```
//!
//! A `- {cond}` filter *removes* instances satisfying `cond` (Figure 3 of
//! the paper writes "remove where count < 2" to mean "keep count ≥ 2").

use super::{AggFunc, CmpOp, Constant, FilterCond, GoalExpr, MapFunc};
use crate::error::CoreError;

/// Parse a goal algebra expression from text.
pub fn parse_goal(input: &str) -> Result<GoalExpr, CoreError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.expr()?;
    if p.pos < p.tokens.len() {
        return Err(CoreError::AlgebraParse(format!(
            "unexpected trailing input near `{:?}`",
            p.tokens[p.pos]
        )));
    }
    Ok(expr)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Cross,
    Plus,
    Minus,
    Slash,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Cmp(CmpOp),
}

fn lex(input: &str) -> Result<Vec<Tok>, CoreError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '{' => {
                out.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Tok::RBrace);
                i += 1;
            }
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '×' => {
                out.push(Tok::Cross);
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Cmp(CmpOp::LtEq));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(Tok::Cmp(CmpOp::NotEq));
                    i += 2;
                } else {
                    out.push(Tok::Cmp(CmpOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Cmp(CmpOp::GtEq));
                    i += 2;
                } else {
                    out.push(Tok::Cmp(CmpOp::Gt));
                    i += 1;
                }
            }
            '=' => {
                out.push(Tok::Cmp(CmpOp::Eq));
                i += 1;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(CoreError::AlgebraParse("unterminated string".into()));
                }
                i += 1;
                out.push(Tok::Str(s));
            }
            '0'..='9' => {
                let start = i;
                let mut saw_dot = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit() || (chars[i] == '.' && !saw_dot))
                {
                    if chars[i] == '.' {
                        saw_dot = true;
                    }
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if saw_dot {
                    out.push(Tok::Float(text.parse().map_err(|_| {
                        CoreError::AlgebraParse(format!("bad float `{text}`"))
                    })?));
                } else {
                    out.push(Tok::Int(text.parse().map_err(|_| {
                        CoreError::AlgebraParse(format!("bad int `{text}`"))
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                // A bare `x` between terms is the cross operator.
                if word == "x" || word == "X" {
                    out.push(Tok::Cross);
                } else {
                    out.push(Tok::Ident(word));
                }
            }
            other => {
                return Err(CoreError::AlgebraParse(format!(
                    "unexpected character `{other}`"
                )))
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> Result<GoalExpr, CoreError> {
        let mut left = self.term()?;
        loop {
            if self.eat(&Tok::Cross) {
                let right = self.term()?;
                left = left.compare(right);
            } else if self.eat(&Tok::Plus) {
                let right = self.term()?;
                left = left.concat(right);
            } else if self.eat(&Tok::Slash) {
                let right = self.term()?;
                left = left.nest(right);
            } else {
                return Ok(left);
            }
        }
    }

    fn term(&mut self) -> Result<GoalExpr, CoreError> {
        let mut base = self.atom()?;
        // Postfix filters bind to the preceding term.
        while self.eat(&Tok::Minus) {
            base = self.filter(base)?;
        }
        Ok(base)
    }

    fn atom(&mut self) -> Result<GoalExpr, CoreError> {
        match self.peek().cloned() {
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.expr()?;
                if !self.eat(&Tok::RParen) {
                    return Err(CoreError::AlgebraParse("expected `)`".into()));
                }
                Ok(inner)
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                if self.eat(&Tok::LParen) {
                    let inner = self.expr()?;
                    if !self.eat(&Tok::RParen) {
                        return Err(CoreError::AlgebraParse("expected `)`".into()));
                    }
                    if let Some(agg) = AggFunc::from_name(&name) {
                        return Ok(inner.agg(agg));
                    }
                    if let Some(map) = map_func_from_name(&name) {
                        return Ok(inner.map(map));
                    }
                    return Err(CoreError::AlgebraParse(format!(
                        "unknown function `{name}`"
                    )));
                }
                Ok(GoalExpr::attr(name))
            }
            other => Err(CoreError::AlgebraParse(format!(
                "expected term, found {other:?}"
            ))),
        }
    }

    fn filter(&mut self, base: GoalExpr) -> Result<GoalExpr, CoreError> {
        if self.eat(&Tok::LBrace) {
            // `- {expr cmp const}`: remove instances satisfying the
            // condition, i.e. keep the negation.
            let _target = self.expr()?;
            let Some(Tok::Cmp(op)) = self.peek().cloned() else {
                return Err(CoreError::AlgebraParse(
                    "expected comparison in filter".into(),
                ));
            };
            self.pos += 1;
            let c = self.constant()?;
            if !self.eat(&Tok::RBrace) {
                return Err(CoreError::AlgebraParse("expected `}`".into()));
            }
            let keep_op = negate(op);
            Ok(GoalExpr::Filter {
                expr: Box::new(base),
                condition: FilterCond::Keep(keep_op, c),
            })
        } else {
            let c = self.constant()?;
            Ok(GoalExpr::Filter {
                expr: Box::new(base),
                condition: FilterCond::RemoveConst(c),
            })
        }
    }

    fn constant(&mut self) -> Result<Constant, CoreError> {
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(Constant::Int(v))
            }
            Some(Tok::Float(v)) => {
                self.pos += 1;
                Ok(Constant::Float(v))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Constant::Str(s))
            }
            other => Err(CoreError::AlgebraParse(format!(
                "expected constant, found {other:?}"
            ))),
        }
    }
}

fn negate(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::NotEq,
        CmpOp::NotEq => CmpOp::Eq,
        CmpOp::Lt => CmpOp::GtEq,
        CmpOp::LtEq => CmpOp::Gt,
        CmpOp::Gt => CmpOp::LtEq,
        CmpOp::GtEq => CmpOp::Lt,
    }
}

fn map_func_from_name(name: &str) -> Option<MapFunc> {
    let lower = name.to_ascii_lowercase();
    Some(match lower.as_str() {
        "hour" => MapFunc::Hour,
        "day" => MapFunc::Day,
        "month" => MapFunc::Month,
        "year" => MapFunc::Year,
        "dayofweek" | "dow" => MapFunc::DayOfWeek,
        "abs" => MapFunc::Abs,
        _ => {
            if let Some(width) = lower.strip_prefix("bin") {
                return width.parse().ok().map(MapFunc::Bin);
            }
            return None;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::to_sql::to_sql;
    use simba_sql::printer::print_select;

    #[test]
    fn parses_figure_3_expression() {
        let g = parse_goal("queue x count(lost_calls) - {count(lost_calls) < 2}").unwrap();
        let sql = to_sql(&g, "customer_service").unwrap();
        assert_eq!(
            print_select(&sql),
            "SELECT queue, COUNT(lost_calls) FROM customer_service \
             GROUP BY queue HAVING COUNT(lost_calls) >= 2"
        );
    }

    #[test]
    fn parses_correlation_expression() {
        let g = parse_goal("hour x count(calls) + sum(abandoned)").unwrap();
        let sql = to_sql(&g, "cs").unwrap();
        assert_eq!(
            print_select(&sql),
            "SELECT hour, COUNT(calls), SUM(abandoned) FROM cs GROUP BY hour"
        );
    }

    #[test]
    fn parses_map_functions() {
        let g = parse_goal("day(ts) x sum(revenue)").unwrap();
        let sql = to_sql(&g, "orders").unwrap();
        assert_eq!(
            print_select(&sql),
            "SELECT DAY(ts), SUM(revenue) FROM orders GROUP BY DAY(ts)"
        );
    }

    #[test]
    fn parses_bin_map() {
        let g = parse_goal("bin10(price) x count(price)").unwrap();
        let sql = to_sql(&g, "t").unwrap();
        assert!(print_select(&sql).contains("BIN(price, 10)"));
    }

    #[test]
    fn parses_unicode_cross() {
        let g = parse_goal("queue × max(calls)").unwrap();
        assert_eq!(g.to_string(), "queue x max(calls)");
    }

    #[test]
    fn parses_remove_constant_filter() {
        let g = parse_goal("region - 'north' x count(sales)").unwrap();
        let sql = to_sql(&g, "t").unwrap();
        assert!(print_select(&sql).contains("WHERE region <> 'north'"));
    }

    #[test]
    fn parses_parenthesized_axes() {
        let g = parse_goal("category x (max(price) + min(price))").unwrap();
        let sql = to_sql(&g, "t").unwrap();
        assert_eq!(
            print_select(&sql),
            "SELECT category, MAX(price), MIN(price) FROM t GROUP BY category"
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_goal("x x x ???").is_err());
        assert!(parse_goal("count(").is_err());
        assert!(parse_goal("a - {b <}").is_err());
        assert!(parse_goal("unknownfn(a)").is_err());
    }

    #[test]
    fn display_round_trips_through_parser() {
        for s in [
            "queue x count(lost_calls)",
            "hour x count(calls) + sum(abandoned)",
            "category x max(price) + min(price)",
        ] {
            let g = parse_goal(s).unwrap();
            let reparsed = parse_goal(&g.to_string()).unwrap();
            assert_eq!(g, reparsed, "round trip failed for `{s}`");
        }
    }
}
