//! Interface manipulations (§3.0.2 of the paper).
//!
//! The interaction layer supports two interaction classes: *data
//! manipulations* ([`crate::actions::Action`]) that use the dashboard as-is,
//! and **interface manipulations** that "modify the original dashboard
//! definition (i.e., alter the dashboard's user interface, for example, to
//! add/remove a visualization)". Interface manipulations rebuild the
//! interaction graph; sessions that use them model a *developer* iterating
//! on a design between user simulations.

use crate::dashboard::Dashboard;
use crate::error::CoreError;
use crate::spec::{DashboardSpec, LinkSpec, VisualizationSpec, WidgetSpec};
use simba_store::Table;

/// A modification to the dashboard definition itself.
#[derive(Debug, Clone, PartialEq)]
pub enum InterfaceAction {
    /// Add a visualization, linked from the given source component ids.
    AddVisualization {
        vis: VisualizationSpec,
        linked_from: Vec<String>,
    },
    /// Remove a visualization and every link touching it.
    RemoveVisualization { id: String },
    /// Add an interaction widget, linked to the given target component ids.
    AddWidget {
        widget: WidgetSpec,
        targets: Vec<String>,
    },
    /// Remove a widget and every link touching it.
    RemoveWidget { id: String },
    /// Add a single interaction link.
    AddLink { source: String, target: String },
    /// Remove all links from `source` to `target`.
    RemoveLink { source: String, target: String },
}

impl InterfaceAction {
    /// Human-readable description for logs.
    pub fn describe(&self) -> String {
        match self {
            InterfaceAction::AddVisualization { vis, .. } => {
                format!("add visualization `{}`", vis.id)
            }
            InterfaceAction::RemoveVisualization { id } => {
                format!("remove visualization `{id}`")
            }
            InterfaceAction::AddWidget { widget, .. } => format!("add widget `{}`", widget.id),
            InterfaceAction::RemoveWidget { id } => format!("remove widget `{id}`"),
            InterfaceAction::AddLink { source, target } => {
                format!("link `{source}` -> `{target}`")
            }
            InterfaceAction::RemoveLink { source, target } => {
                format!("unlink `{source}` -> `{target}`")
            }
        }
    }

    /// Apply the manipulation to a specification, returning the modified
    /// spec. The input is not mutated; validation happens when the new spec
    /// is rebuilt into a [`Dashboard`].
    pub fn apply_to(&self, spec: &DashboardSpec) -> Result<DashboardSpec, CoreError> {
        let mut next = spec.clone();
        let exists = |s: &DashboardSpec, id: &str| {
            s.visualizations
                .iter()
                .any(|v| v.id.eq_ignore_ascii_case(id))
                || s.widgets.iter().any(|w| w.id.eq_ignore_ascii_case(id))
        };
        match self {
            InterfaceAction::AddVisualization { vis, linked_from } => {
                if exists(&next, &vis.id) {
                    return Err(CoreError::InvalidSpec(format!(
                        "component id `{}` already exists",
                        vis.id
                    )));
                }
                for src in linked_from {
                    if !exists(&next, src) {
                        return Err(CoreError::UnknownNode(src.clone()));
                    }
                    next.links.push(LinkSpec {
                        source: src.clone(),
                        target: vis.id.clone(),
                    });
                }
                next.visualizations.push(vis.clone());
            }
            InterfaceAction::RemoveVisualization { id } => {
                let before = next.visualizations.len();
                next.visualizations
                    .retain(|v| !v.id.eq_ignore_ascii_case(id));
                if next.visualizations.len() == before {
                    return Err(CoreError::UnknownNode(id.clone()));
                }
                if next.visualizations.is_empty() {
                    return Err(CoreError::InvalidSpec(
                        "cannot remove the last visualization".into(),
                    ));
                }
                next.links.retain(|l| {
                    !l.source.eq_ignore_ascii_case(id) && !l.target.eq_ignore_ascii_case(id)
                });
            }
            InterfaceAction::AddWidget { widget, targets } => {
                if exists(&next, &widget.id) {
                    return Err(CoreError::InvalidSpec(format!(
                        "component id `{}` already exists",
                        widget.id
                    )));
                }
                for t in targets {
                    if !exists(&next, t) {
                        return Err(CoreError::UnknownNode(t.clone()));
                    }
                    next.links.push(LinkSpec {
                        source: widget.id.clone(),
                        target: t.clone(),
                    });
                }
                next.widgets.push(widget.clone());
            }
            InterfaceAction::RemoveWidget { id } => {
                let before = next.widgets.len();
                next.widgets.retain(|w| !w.id.eq_ignore_ascii_case(id));
                if next.widgets.len() == before {
                    return Err(CoreError::UnknownNode(id.clone()));
                }
                next.links.retain(|l| {
                    !l.source.eq_ignore_ascii_case(id) && !l.target.eq_ignore_ascii_case(id)
                });
            }
            InterfaceAction::AddLink { source, target } => {
                if !exists(&next, source) {
                    return Err(CoreError::UnknownNode(source.clone()));
                }
                if !exists(&next, target) {
                    return Err(CoreError::UnknownNode(target.clone()));
                }
                next.links.push(LinkSpec {
                    source: source.clone(),
                    target: target.clone(),
                });
            }
            InterfaceAction::RemoveLink { source, target } => {
                let before = next.links.len();
                next.links.retain(|l| {
                    !(l.source.eq_ignore_ascii_case(source)
                        && l.target.eq_ignore_ascii_case(target))
                });
                if next.links.len() == before {
                    return Err(CoreError::InvalidSpec(format!(
                        "no link `{source}` -> `{target}`"
                    )));
                }
            }
        }
        Ok(next)
    }

    /// Apply to a live dashboard: rebuild the runtime (interaction graph and
    /// all) against the same table. Existing `DashboardState`s are
    /// invalidated by design — an interface change re-renders the dashboard.
    pub fn rebuild(&self, dashboard: &Dashboard, table: &Table) -> Result<Dashboard, CoreError> {
        let next_spec = self.apply_to(dashboard.spec())?;
        Dashboard::new(next_spec, table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::builtin::builtin;
    use crate::spec::{AggOp, AggregateChannel, ChannelSpec, ControlSpec, MarkType};
    use simba_data::DashboardDataset;

    fn setup() -> (Dashboard, Table) {
        let ds = DashboardDataset::CustomerService;
        let table = ds.generate_rows(500, 1);
        let dashboard = Dashboard::new(builtin(ds), &table).unwrap();
        (dashboard, table)
    }

    fn new_vis() -> VisualizationSpec {
        VisualizationSpec {
            id: "satisfaction_by_queue".into(),
            title: "Satisfaction by Queue".into(),
            mark: MarkType::Bar,
            dimensions: vec![ChannelSpec::field("queue")],
            measures: vec![AggregateChannel {
                func: AggOp::Avg,
                field: Some("satisfaction".into()),
            }],
            raw_fields: vec![],
            selectable: false,
        }
    }

    #[test]
    fn add_visualization_extends_graph_and_data_layer() {
        let (dashboard, table) = setup();
        let action = InterfaceAction::AddVisualization {
            vis: new_vis(),
            linked_from: vec!["queue_checkbox".into()],
        };
        let next = action.rebuild(&dashboard, &table).unwrap();
        assert_eq!(
            next.spec().visualizations.len(),
            dashboard.spec().visualizations.len() + 1
        );
        // The new node renders a query and receives checkbox filters.
        let node = next.graph().node("satisfaction_by_queue").unwrap();
        let state = next.initial_state();
        let q = next.query_for(&state, node);
        assert!(q.to_string().contains("AVG(satisfaction)"), "{q}");
        let checkbox = next.graph().node("queue_checkbox").unwrap();
        assert!(next.graph().ancestors(node).contains(&checkbox));
    }

    #[test]
    fn remove_visualization_drops_links() {
        let (dashboard, table) = setup();
        let action = InterfaceAction::RemoveVisualization {
            id: "lost_calls".into(),
        };
        let next = action.rebuild(&dashboard, &table).unwrap();
        assert!(next.graph().node("lost_calls").is_none());
        assert!(next
            .spec()
            .links
            .iter()
            .all(|l| l.target != "lost_calls" && l.source != "lost_calls"));
    }

    #[test]
    fn cannot_remove_last_visualization() {
        let ds = DashboardDataset::MyRide;
        let table = ds.generate_rows(200, 1);
        let dashboard = Dashboard::new(builtin(ds), &table).unwrap();
        let first = InterfaceAction::RemoveVisualization {
            id: "hr_histogram".into(),
        }
        .rebuild(&dashboard, &table)
        .unwrap();
        let err = InterfaceAction::RemoveVisualization {
            id: "hr_by_segment".into(),
        }
        .rebuild(&first, &table)
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidSpec(_)));
    }

    #[test]
    fn add_widget_links_to_targets() {
        let (dashboard, table) = setup();
        let action = InterfaceAction::AddWidget {
            widget: WidgetSpec {
                id: "tier_radio".into(),
                title: "Tier".into(),
                control: ControlSpec::Radio {
                    field: "customer_tier".into(),
                },
            },
            targets: vec!["calls_per_rep".into(), "lost_calls".into()],
        };
        let next = action.rebuild(&dashboard, &table).unwrap();
        let widget = next.graph().node("tier_radio").unwrap();
        // Direct targets plus their transitive descendants
        // (calls_per_rep -> total_calls_by_hour).
        let desc = next.graph().descendants(widget);
        assert!(desc.len() >= 2, "{desc:?}");
        assert!(desc.contains(&next.graph().node("lost_calls").unwrap()));
        // The new widget contributes applicable actions.
        let actions = next.applicable_actions(&next.initial_state());
        assert!(actions
            .iter()
            .any(|a| a.describe(next.graph()).contains("tier_radio")));
    }

    #[test]
    fn duplicate_ids_and_dangling_endpoints_rejected() {
        let (dashboard, table) = setup();
        let dup = InterfaceAction::AddVisualization {
            vis: VisualizationSpec {
                id: "lost_calls".into(),
                ..new_vis()
            },
            linked_from: vec![],
        };
        assert!(dup.rebuild(&dashboard, &table).is_err());

        let dangling = InterfaceAction::AddLink {
            source: "ghost".into(),
            target: "lost_calls".into(),
        };
        assert!(matches!(
            dangling.rebuild(&dashboard, &table),
            Err(CoreError::UnknownNode(_))
        ));
        let missing = InterfaceAction::RemoveWidget { id: "ghost".into() };
        assert!(missing.rebuild(&dashboard, &table).is_err());
    }

    #[test]
    fn link_add_remove_round_trip() {
        let (dashboard, table) = setup();
        let add = InterfaceAction::AddLink {
            source: "direction_radio".into(),
            target: "lost_calls".into(),
        };
        let with_link = add.rebuild(&dashboard, &table).unwrap();
        let lost = with_link.graph().node("lost_calls").unwrap();
        let radio = with_link.graph().node("direction_radio").unwrap();
        assert!(with_link.graph().ancestors(lost).contains(&radio));

        let remove = InterfaceAction::RemoveLink {
            source: "direction_radio".into(),
            target: "lost_calls".into(),
        };
        let without = remove.rebuild(&with_link, &table).unwrap();
        // The direct link is gone (transitive paths through calls_by_queue
        // may remain — ancestors are path-based, links are direct).
        assert!(!without
            .spec()
            .links
            .iter()
            .any(|l| l.source == "direction_radio" && l.target == "lost_calls"));
        let radio2 = without.graph().node("direction_radio").unwrap();
        assert_eq!(
            without.graph().out_degree(radio2),
            with_link
                .graph()
                .out_degree(with_link.graph().node("direction_radio").unwrap())
                - 1
        );
    }

    #[test]
    fn invalid_new_visualization_caught_at_rebuild() {
        let (dashboard, table) = setup();
        let bad = InterfaceAction::AddVisualization {
            vis: VisualizationSpec {
                id: "broken".into(),
                dimensions: vec![ChannelSpec::field("no_such_field")],
                ..new_vis()
            },
            linked_from: vec![],
        };
        assert!(matches!(
            bad.rebuild(&dashboard, &table),
            Err(CoreError::UnknownField(_))
        ));
    }

    #[test]
    fn descriptions_are_informative() {
        assert_eq!(
            InterfaceAction::RemoveVisualization { id: "x".into() }.describe(),
            "remove visualization `x`"
        );
        assert_eq!(
            InterfaceAction::AddLink {
                source: "a".into(),
                target: "b".into()
            }
            .describe(),
            "link `a` -> `b`"
        );
    }
}
