//! The Oracle: goal-directed exploration via LookAhead forward planning
//! (§4.1, Algorithm 1 of the paper).
//!
//! Given the interaction graph and a goal set, the Oracle enumerates the
//! applicable interactions, *hypothetically* executes each candidate's
//! emitted queries, and picks the interaction maximizing the result-overlap
//! heuristic θ. Re-planning happens after every executed action (the
//! "Acting" step of Algorithm 1), so the plan adapts as results come back.

use crate::actions::Action;
use crate::dashboard::Dashboard;
use crate::equivalence::progress::covered_after;
use crate::error::CoreError;
use crate::graph::DashboardState;
use rand::seq::SliceRandom;
use rand::Rng;
use simba_engine::Dbms;
use simba_store::{CoverageStore, ResultSet};

/// Oracle tuning knobs.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// LookAhead depth (1 = greedy one-step planning; 2+ explores chains).
    pub depth: usize,
    /// Cap on candidate actions evaluated per planning step; candidates are
    /// sampled uniformly when the applicable set is larger.
    pub max_candidates: usize,
    /// Branching factor kept when recursing below depth 1.
    pub beam_width: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            depth: 1,
            max_candidates: 48,
            beam_width: 4,
        }
    }
}

/// A planned next step and its heuristic value.
#[derive(Debug, Clone)]
pub struct PlannedStep {
    pub action: Action,
    /// θ of the successor state (goal rows covered after the action).
    pub score: usize,
    /// Queries the action would emit (usable as a cache by the caller).
    pub emitted: Vec<(crate::graph::NodeId, simba_sql::Select)>,
}

/// The Oracle planner.
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    pub config: OracleConfig,
}

impl Oracle {
    /// New Oracle with the given configuration.
    pub fn new(config: OracleConfig) -> Self {
        Self { config }
    }

    /// Plan the next interaction from `state` toward `goals` (Algorithm 1's
    /// `Lookahead(s, θ)`). Returns `None` when no action is applicable.
    ///
    /// Candidate queries are executed against `engine` to evaluate θ —
    /// exactly the cost profile the paper describes for simulation-based
    /// planning over real DBMSs.
    pub fn plan_next(
        &self,
        dashboard: &Dashboard,
        state: &DashboardState,
        engine: &dyn Dbms,
        coverage: &CoverageStore,
        goals: &[&ResultSet],
        rng: &mut impl Rng,
    ) -> Result<Option<PlannedStep>, CoreError> {
        self.plan_depth(
            dashboard,
            state,
            engine,
            coverage,
            goals,
            rng,
            self.config.depth,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn plan_depth(
        &self,
        dashboard: &Dashboard,
        state: &DashboardState,
        engine: &dyn Dbms,
        coverage: &CoverageStore,
        goals: &[&ResultSet],
        rng: &mut impl Rng,
        depth: usize,
    ) -> Result<Option<PlannedStep>, CoreError> {
        let mut actions = dashboard.applicable_actions(state);
        if actions.is_empty() {
            return Ok(None);
        }
        if actions.len() > self.config.max_candidates {
            actions.shuffle(rng);
            actions.truncate(self.config.max_candidates);
        }

        let mut best: Option<PlannedStep> = None;
        let mut scored: Vec<PlannedStep> = Vec::with_capacity(actions.len());
        for action in actions {
            let mut next_state = state.clone();
            let emitted = dashboard.apply(&mut next_state, &action);
            let mut results = Vec::with_capacity(emitted.len());
            for (_, query) in &emitted {
                let out = engine.execute(query)?;
                results.push(crate::equivalence::augment_result(query, out.result));
            }
            let score = covered_after(coverage, &results, goals);
            scored.push(PlannedStep {
                action,
                score,
                emitted,
            });
        }

        if depth > 1 {
            // Beam search: refine the top candidates by their best successor.
            scored.sort_by_key(|s| std::cmp::Reverse(s.score));
            scored.truncate(self.config.beam_width);
            for step in &mut scored {
                let mut next_state = state.clone();
                let emitted = dashboard.apply(&mut next_state, &step.action);
                let mut hypothetical = coverage.clone();
                for (_, query) in &emitted {
                    let out = engine.execute(query)?;
                    hypothetical.absorb(&crate::equivalence::augment_result(query, out.result));
                }
                if let Some(deeper) = self.plan_depth(
                    dashboard,
                    &next_state,
                    engine,
                    &hypothetical,
                    goals,
                    rng,
                    depth - 1,
                )? {
                    step.score = step.score.max(deeper.score);
                }
            }
        }

        // When nothing gains coverage, the plan is stuck in a dead end —
        // prefer backing out (clear/reset) so subsequent re-planning sees
        // fresh applicable states (Algorithm 1 re-plans after acting).
        let baseline = crate::equivalence::progress::total_covered(coverage, goals);
        let stuck = scored.iter().all(|s| s.score <= baseline);
        for step in scored {
            let step_is_clear = matches!(
                step.action,
                Action::ClearWidget { .. } | Action::ClearSelection { .. } | Action::ResetAll
            );
            let best_is_clear = best.as_ref().is_some_and(|b| {
                matches!(
                    b.action,
                    Action::ClearWidget { .. } | Action::ClearSelection { .. } | Action::ResetAll
                )
            });
            let better = match &best {
                None => true,
                Some(b) => {
                    step.score > b.score
                        || (stuck && step.score == b.score && step_is_clear && !best_is_clear)
                }
            };
            if better {
                best = Some(step);
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::templates::{FieldChoice, GoalTemplateKind};
    use crate::spec::builtin::builtin;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use simba_data::DashboardDataset;
    use simba_engine::EngineKind;
    use std::sync::Arc;

    fn setup() -> (Dashboard, Arc<dyn Dbms>, ResultSet) {
        let ds = DashboardDataset::CustomerService;
        let table = Arc::new(ds.generate_rows(3_000, 9));
        let dashboard = Dashboard::new(builtin(ds), &table).unwrap();
        let engine = EngineKind::DuckDbLike.build();
        engine.register(table);
        // Figure 3's goal: per-queue lost-call counts.
        let goal = GoalTemplateKind::Filtering
            .instantiate(&FieldChoice::new(
                "customer_service",
                vec!["queue".into()],
                vec!["lost_calls".into()],
                vec![],
            ))
            .unwrap();
        let goal_result = engine.execute(&goal.query).unwrap().result;
        (dashboard, engine, goal_result)
    }

    #[test]
    fn oracle_picks_a_coverage_increasing_action() {
        let (dashboard, engine, goal_result) = setup();
        let state = dashboard.initial_state();
        let coverage = CoverageStore::new();
        let oracle = Oracle::default();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let step = oracle
            .plan_next(
                &dashboard,
                &state,
                engine.as_ref(),
                &coverage,
                &[&goal_result],
                &mut rng,
            )
            .unwrap()
            .expect("actions exist");
        assert!(
            step.score > 0,
            "some action must make progress toward the goal"
        );
        assert!(!step.emitted.is_empty());
    }

    #[test]
    fn oracle_reaches_goal_within_bounded_steps() {
        // Repeated plan-act cycles must cover the Figure 3 goal.
        let (dashboard, engine, goal_result) = setup();
        let mut state = dashboard.initial_state();
        let mut coverage = CoverageStore::new();
        let oracle = Oracle::default();
        let mut rng = ChaCha8Rng::seed_from_u64(11);

        // Absorb the initial render, as the session runner does.
        for (_, q) in dashboard.all_queries(&state) {
            let out = engine.execute(&q).unwrap();
            coverage.absorb(&crate::equivalence::augment_result(&q, out.result));
        }

        let mut steps = 0;
        while !coverage.covers(&goal_result) && steps < 12 {
            let step = oracle
                .plan_next(
                    &dashboard,
                    &state,
                    engine.as_ref(),
                    &coverage,
                    &[&goal_result],
                    &mut rng,
                )
                .unwrap()
                .expect("applicable actions remain");
            let emitted = dashboard.apply(&mut state, &step.action);
            for (_, q) in &emitted {
                let out = engine.execute(q).unwrap();
                coverage.absorb(&crate::equivalence::augment_result(q, out.result));
            }
            steps += 1;
        }
        assert!(
            coverage.covers(&goal_result),
            "oracle failed to reach the goal in {steps} steps"
        );
    }

    #[test]
    fn deeper_lookahead_scores_at_least_as_well() {
        let (dashboard, engine, goal_result) = setup();
        let state = dashboard.initial_state();
        let coverage = CoverageStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let shallow = Oracle::new(OracleConfig {
            depth: 1,
            max_candidates: 16,
            beam_width: 3,
        })
        .plan_next(
            &dashboard,
            &state,
            engine.as_ref(),
            &coverage,
            &[&goal_result],
            &mut rng,
        )
        .unwrap()
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let deep = Oracle::new(OracleConfig {
            depth: 2,
            max_candidates: 16,
            beam_width: 3,
        })
        .plan_next(
            &dashboard,
            &state,
            engine.as_ref(),
            &coverage,
            &[&goal_result],
            &mut rng,
        )
        .unwrap()
        .unwrap();
        assert!(deep.score >= shallow.score);
    }

    #[test]
    fn empty_goalset_still_plans() {
        let (dashboard, engine, _) = setup();
        let state = dashboard.initial_state();
        let coverage = CoverageStore::new();
        let oracle = Oracle::default();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let step = oracle
            .plan_next(
                &dashboard,
                &state,
                engine.as_ref(),
                &coverage,
                &[],
                &mut rng,
            )
            .unwrap();
        assert!(step.is_some());
        assert_eq!(step.unwrap().score, 0);
    }
}
