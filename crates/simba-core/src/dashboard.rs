//! The dashboard runtime: specification + interaction graph + field domains.

use crate::actions::{enumerate_actions, Action, FieldDomains};
use crate::error::CoreError;
use crate::graph::{data_layer, DashboardState, InteractionGraph, NodeId};
use crate::spec::DashboardSpec;
use simba_sql::Select;
use simba_store::Table;

/// A ready-to-simulate dashboard: the validated spec, its interaction
/// graph, and the dataset's field domains (which populate widget options).
#[derive(Debug, Clone)]
pub struct Dashboard {
    graph: InteractionGraph,
    domains: FieldDomains,
}

impl Dashboard {
    /// Build the runtime from a spec and the table it visualizes.
    pub fn new(spec: DashboardSpec, table: &Table) -> Result<Self, CoreError> {
        if !spec.database.table.eq_ignore_ascii_case(table.name()) {
            return Err(CoreError::InvalidSpec(format!(
                "spec is for table `{}` but was given `{}`",
                spec.database.table,
                table.name()
            )));
        }
        // Every spec field must exist in the physical schema.
        for f in &spec.database.fields {
            if table.schema().index_of(&f.name).is_none() {
                return Err(CoreError::UnknownField(f.name.clone()));
            }
        }
        let graph = InteractionGraph::from_spec(spec)?;
        let domains = FieldDomains::from_table(table);
        Ok(Self { graph, domains })
    }

    /// The dashboard's spec.
    pub fn spec(&self) -> &DashboardSpec {
        &self.graph.spec
    }

    /// The interaction graph.
    pub fn graph(&self) -> &InteractionGraph {
        &self.graph
    }

    /// Field domains extracted from the dataset.
    pub fn domains(&self) -> &FieldDomains {
        &self.domains
    }

    /// The pristine dashboard state.
    pub fn initial_state(&self) -> DashboardState {
        self.graph.initial_state()
    }

    /// The query a visualization node currently displays.
    pub fn query_for(&self, state: &DashboardState, vis: NodeId) -> Select {
        data_layer::vis_query(&self.graph, state, vis)
    }

    /// Queries for all visualizations (the initial dashboard render, or a
    /// full refresh after `ResetAll`).
    pub fn all_queries(&self, state: &DashboardState) -> Vec<(NodeId, Select)> {
        self.graph
            .visualization_nodes()
            .into_iter()
            .map(|n| (n, self.query_for(state, n)))
            .collect()
    }

    /// Apply an action and return the refreshed queries it triggers.
    pub fn apply(&self, state: &mut DashboardState, action: &Action) -> Vec<(NodeId, Select)> {
        let affected = action.apply(&self.graph, state);
        affected
            .into_iter()
            .map(|n| (n, self.query_for(state, n)))
            .collect()
    }

    /// All applicable actions in the current state.
    pub fn applicable_actions(&self, state: &DashboardState) -> Vec<Action> {
        enumerate_actions(&self.graph, state, &self.domains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::builtin::builtin;
    use simba_data::DashboardDataset;

    fn dashboard() -> Dashboard {
        let ds = DashboardDataset::CustomerService;
        let table = ds.generate_rows(1_000, 1);
        Dashboard::new(builtin(ds), &table).unwrap()
    }

    #[test]
    fn builds_for_all_datasets() {
        for ds in DashboardDataset::ALL {
            let table = ds.generate_rows(500, 2);
            let d = Dashboard::new(builtin(ds), &table);
            assert!(d.is_ok(), "{}: {:?}", ds.title(), d.err());
        }
    }

    #[test]
    fn initial_render_queries_every_visualization() {
        let d = dashboard();
        let state = d.initial_state();
        let queries = d.all_queries(&state);
        assert_eq!(queries.len(), d.spec().visualizations.len());
    }

    #[test]
    fn apply_emits_refreshed_queries() {
        let d = dashboard();
        let mut state = d.initial_state();
        let widget = d.graph().node("queue_checkbox").unwrap();
        let emitted = d.apply(
            &mut state,
            &Action::Toggle {
                widget,
                value: "A".into(),
            },
        );
        assert_eq!(emitted.len(), 5);
        for (_, q) in &emitted {
            assert!(q.to_string().contains("queue IN ('A')"), "{q}");
        }
    }

    #[test]
    fn wrong_table_rejected() {
        let table = DashboardDataset::MyRide.generate_rows(100, 3);
        let err = Dashboard::new(builtin(DashboardDataset::CustomerService), &table).unwrap_err();
        assert!(matches!(err, CoreError::InvalidSpec(_)));
    }

    #[test]
    fn applicable_actions_nonempty() {
        let d = dashboard();
        let state = d.initial_state();
        assert!(d.applicable_actions(&state).len() > 10);
    }
}
