//! Machine-readable session-log export.
//!
//! The paper's user study (§6.4) handed experts logs of interactions and
//! their SQL; this module serializes [`SessionLog`]s to a
//! stable JSON shape for the same purpose (and for harness post-processing).

use super::{ModelChoice, SessionLog};
use serde::{Deserialize, Serialize};

/// Serializable snapshot of a session log.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct LogExport {
    pub dashboard: String,
    pub engine: String,
    pub seed: u64,
    pub entries: Vec<EntryExport>,
    pub goals: Vec<GoalExport>,
}

/// One interaction step.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct EntryExport {
    pub step: usize,
    pub model: String,
    pub action: String,
    pub queries: Vec<QueryExport>,
}

/// One executed query.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct QueryExport {
    pub vis: String,
    pub sql: String,
    pub duration_us: u64,
    pub rows: usize,
}

/// One goal outcome.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct GoalExport {
    pub question: String,
    pub sql: String,
    pub solved_at: Option<usize>,
    pub method: Option<String>,
}

impl LogExport {
    /// Snapshot a session log.
    pub fn from_log(log: &SessionLog) -> LogExport {
        LogExport {
            dashboard: log.dashboard.clone(),
            engine: log.engine.clone(),
            seed: log.seed,
            entries: log
                .entries
                .iter()
                .map(|e| EntryExport {
                    step: e.step,
                    model: e.model.name().to_string(),
                    action: e.action.clone(),
                    queries: e
                        .queries
                        .iter()
                        .map(|q| QueryExport {
                            vis: q.vis.clone(),
                            sql: q.sql.clone(),
                            duration_us: q.duration.as_micros() as u64,
                            rows: q.rows,
                        })
                        .collect(),
                })
                .collect(),
            goals: log
                .goals
                .iter()
                .map(|g| GoalExport {
                    question: g.question.clone(),
                    sql: g.sql.clone(),
                    solved_at: g.solved_at,
                    method: g.method.map(|m| m.name().to_string()),
                })
                .collect(),
        }
    }

    /// Pretty JSON text.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("log serializes")
    }

    /// Parse from JSON text.
    pub fn from_json(json: &str) -> Result<LogExport, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl ModelChoice {
    /// Parse a model name back from an export.
    pub fn from_name(name: &str) -> Option<ModelChoice> {
        match name {
            "initial" => Some(ModelChoice::InitialRender),
            "oracle" => Some(ModelChoice::Oracle),
            "markov" => Some(ModelChoice::Markov),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{GoalOutcome, LogEntry, QueryRecord};
    use std::time::Duration;

    fn sample_log() -> SessionLog {
        SessionLog {
            dashboard: "cs".into(),
            engine: "duckdb-like".into(),
            seed: 42,
            entries: vec![LogEntry {
                step: 0,
                model: ModelChoice::InitialRender,
                action: "open dashboard".into(),
                action_kind: None,
                queries: vec![QueryRecord {
                    vis: "v1".into(),
                    sql: "SELECT COUNT(*) FROM cs".into(),
                    duration: Duration::from_micros(1500),
                    rows: 1,
                }],
            }],
            goals: vec![GoalOutcome {
                question: "q?".into(),
                sql: "SELECT 1 FROM cs".into(),
                solved_at: Some(0),
                method: Some(crate::equivalence::Method::Result),
            }],
        }
    }

    #[test]
    fn export_round_trips_through_json() {
        let export = LogExport::from_log(&sample_log());
        let json = export.to_json();
        let back = LogExport::from_json(&json).unwrap();
        assert_eq!(export, back);
        assert_eq!(back.entries[0].queries[0].duration_us, 1500);
        assert_eq!(back.goals[0].method.as_deref(), Some("result"));
    }

    #[test]
    fn model_names_round_trip() {
        for m in [
            ModelChoice::InitialRender,
            ModelChoice::Oracle,
            ModelChoice::Markov,
        ] {
            assert_eq!(ModelChoice::from_name(m.name()), Some(m));
        }
        assert_eq!(ModelChoice::from_name("alien"), None);
    }
}
