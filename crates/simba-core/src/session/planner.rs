//! The engine-free session planner: one user's Markov walk over a live
//! dashboard.
//!
//! [`SessionRunner`](super::SessionRunner) (scripted synthesis with goal
//! checking) and the workload driver's adaptive mode both need the same
//! core loop — hold a [`DashboardState`], sample the next action from a
//! [`MarkovModel`], apply it, and collect the refreshed queries. The
//! planner owns exactly that loop and nothing engine-shaped, so scripted
//! synthesis ([`super::batch`]) and live result-steered driving
//! (`simba-driver`'s `SessionMode::Adaptive`) share one walk
//! implementation: identical seeds produce identical action sequences in
//! both.

use crate::actions::{Action, ActionKind};
use crate::dashboard::Dashboard;
use crate::graph::{DashboardState, NodeId};
use crate::markov::MarkovModel;
use rand::Rng;
use simba_sql::Select;

/// One planned step: the action taken (if any) and the queries it emits.
#[derive(Debug, Clone)]
pub struct PlannedStep {
    /// The applied action; `None` for the initial dashboard render.
    pub action: Option<Action>,
    /// Human-readable action description.
    pub description: String,
    /// Coarse kind of the action (`None` for the initial render).
    pub kind: Option<ActionKind>,
    /// Refreshed visualization queries, in node order.
    pub queries: Vec<(NodeId, Select)>,
}

/// Walks one simulated user through a dashboard without executing queries.
///
/// The planner tracks the dashboard state and the previous action kind (the
/// Markov chain's conditioning variable). Callers drive it with
/// [`plan_next`](Self::plan_next) for model-sampled steps or
/// [`apply`](Self::apply) for externally chosen actions (the Oracle's
/// planned interactions, or a steering policy's corrections) — both keep
/// the chain state consistent.
#[derive(Debug, Clone)]
pub struct SessionPlanner<'a> {
    dashboard: &'a Dashboard,
    model: MarkovModel,
    state: DashboardState,
    prev: Option<ActionKind>,
}

impl<'a> SessionPlanner<'a> {
    /// New planner in the pristine dashboard state.
    pub fn new(dashboard: &'a Dashboard, model: MarkovModel) -> Self {
        Self {
            dashboard,
            model,
            state: dashboard.initial_state(),
            prev: None,
        }
    }

    /// The dashboard being walked.
    pub fn dashboard(&self) -> &'a Dashboard {
        self.dashboard
    }

    /// The current interaction-layer state.
    pub fn state(&self) -> &DashboardState {
        &self.state
    }

    /// Kind of the most recently applied action.
    pub fn prev_kind(&self) -> Option<ActionKind> {
        self.prev
    }

    /// The "open dashboard" step: every visualization's query in the
    /// current state. Does not advance the walk.
    pub fn initial_render(&self) -> PlannedStep {
        PlannedStep {
            action: None,
            description: "open dashboard".to_string(),
            kind: None,
            queries: self.dashboard.all_queries(&self.state),
        }
    }

    /// Sample the next action from the Markov model and apply it. Returns
    /// `None` when no action is applicable (terminal state).
    pub fn plan_next(&mut self, rng: &mut impl Rng) -> Option<PlannedStep> {
        let action = self
            .model
            .pick_action(self.dashboard, &self.state, self.prev, rng)?;
        Some(self.apply(action))
    }

    /// Apply an externally chosen action (Oracle plan, steering policy),
    /// keeping the Markov conditioning state in sync.
    pub fn apply(&mut self, action: Action) -> PlannedStep {
        let graph = self.dashboard.graph();
        let description = action.describe(graph);
        let kind = action.kind(graph);
        let queries = self.dashboard.apply(&mut self.state, &action);
        self.prev = Some(kind);
        PlannedStep {
            action: Some(action),
            description,
            kind: Some(kind),
            queries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::builtin::builtin;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use simba_data::DashboardDataset;

    fn dashboard() -> Dashboard {
        let ds = DashboardDataset::CustomerService;
        let table = ds.generate_rows(500, 4);
        Dashboard::new(builtin(ds), &table).unwrap()
    }

    #[test]
    fn initial_render_covers_every_visualization() {
        let d = dashboard();
        let planner = SessionPlanner::new(&d, MarkovModel::idebench_default());
        let step = planner.initial_render();
        assert_eq!(step.action, None);
        assert_eq!(step.kind, None);
        assert_eq!(step.queries.len(), d.all_queries(&d.initial_state()).len());
    }

    #[test]
    fn walk_is_deterministic_under_seed() {
        let d = dashboard();
        let walk = |seed: u64| {
            let mut planner = SessionPlanner::new(&d, MarkovModel::idebench_default());
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..8)
                .filter_map(|_| planner.plan_next(&mut rng))
                .map(|s| s.description)
                .collect::<Vec<_>>()
        };
        assert_eq!(walk(11), walk(11));
        assert_ne!(walk(11), walk(12), "different seeds should diverge");
    }

    #[test]
    fn apply_updates_markov_conditioning_state() {
        let d = dashboard();
        let mut planner = SessionPlanner::new(&d, MarkovModel::idebench_default());
        assert_eq!(planner.prev_kind(), None);
        let widget = d.graph().node("queue_checkbox").unwrap();
        let step = planner.apply(Action::Toggle {
            widget,
            value: "A".into(),
        });
        assert_eq!(step.kind, Some(ActionKind::Checkbox));
        assert_eq!(planner.prev_kind(), Some(ActionKind::Checkbox));
        assert_eq!(planner.state().active_count(), 1);
        assert_eq!(step.queries.len(), 5, "checkbox refreshes all five charts");
    }
}
