//! Session simulation: the benchmark's main loop (§4 of the paper).
//!
//! A session opens a dashboard (executing every visualization's query),
//! then repeatedly chooses between the Markov model and the Oracle by the
//! decaying probability of Figure 5, applies the chosen interaction, runs
//! the emitted SQL against the DBMS under test, and checks goal completion
//! with the equivalence suite. Everything is recorded in a [`SessionLog`].

pub mod adaptive;
pub mod batch;
pub mod export;
pub mod interleave;
pub mod planner;
pub mod source;
pub mod synthesize;
pub mod workflows;

use crate::actions::ActionKind;
use crate::algebra::templates::Goal;
use crate::dashboard::Dashboard;
use crate::equivalence::{GoalChecker, Method};
use crate::error::CoreError;
use crate::markov::MarkovModel;
use crate::oracle::{Oracle, OracleConfig};
use interleave::DecayConfig;
use planner::SessionPlanner;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simba_engine::Dbms;
use simba_store::CoverageStore;
use std::time::Duration;

/// Which user model produced an interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelChoice {
    /// The dashboard-open render, before any interaction.
    InitialRender,
    Oracle,
    Markov,
}

impl ModelChoice {
    /// Stable name for logs.
    pub fn name(self) -> &'static str {
        match self {
            ModelChoice::InitialRender => "initial",
            ModelChoice::Oracle => "oracle",
            ModelChoice::Markov => "markov",
        }
    }
}

/// One executed query in the log.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Visualization node id that issued the query.
    pub vis: String,
    /// Canonical SQL text.
    pub sql: String,
    /// Engine-reported execution latency.
    pub duration: Duration,
    /// Result row count.
    pub rows: usize,
}

impl QueryRecord {
    /// Did the query return zero rows? (The realism probe of §6.4 counts
    /// these.)
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }
}

/// One step of the session.
#[derive(Debug, Clone)]
pub struct LogEntry {
    pub step: usize,
    pub model: ModelChoice,
    /// Human-readable action description.
    pub action: String,
    pub action_kind: Option<ActionKind>,
    pub queries: Vec<QueryRecord>,
}

/// Outcome of one goal.
#[derive(Debug, Clone)]
pub struct GoalOutcome {
    pub question: String,
    pub sql: String,
    /// Step at which the goal was achieved (None = never).
    pub solved_at: Option<usize>,
    pub method: Option<Method>,
}

/// The complete record of one simulated exploration session.
#[derive(Debug, Clone)]
pub struct SessionLog {
    pub dashboard: String,
    pub engine: String,
    pub seed: u64,
    pub entries: Vec<LogEntry>,
    pub goals: Vec<GoalOutcome>,
}

impl SessionLog {
    /// Iterator over every executed query.
    pub fn queries(&self) -> impl Iterator<Item = &QueryRecord> {
        self.entries.iter().flat_map(|e| e.queries.iter())
    }

    /// Total number of queries issued.
    pub fn query_count(&self) -> usize {
        self.queries().count()
    }

    /// Total interactions performed (excluding the initial render).
    pub fn interaction_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.model != ModelChoice::InitialRender)
            .count()
    }

    /// Were all goals achieved?
    pub fn all_goals_met(&self) -> bool {
        self.goals.iter().all(|g| g.solved_at.is_some())
    }

    /// All query durations.
    pub fn durations(&self) -> Vec<Duration> {
        self.queries().map(|q| q.duration).collect()
    }
}

/// Session configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    pub seed: u64,
    /// Hard cap on interactions (the paper's sessions are time-boxed; we
    /// bound by steps for determinism).
    pub max_steps: usize,
    pub decay: DecayConfig,
    pub oracle: OracleConfig,
    pub markov: MarkovModel,
    /// Stop as soon as all goals are met (otherwise run out max_steps).
    pub stop_on_completion: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            max_steps: 40,
            decay: DecayConfig::typical(),
            oracle: OracleConfig::default(),
            markov: MarkovModel::idebench_default(),
            stop_on_completion: true,
        }
    }
}

/// Runs simulated sessions against one dashboard and one engine.
pub struct SessionRunner<'a> {
    pub dashboard: &'a Dashboard,
    pub engine: &'a dyn Dbms,
    pub config: SessionConfig,
}

impl<'a> SessionRunner<'a> {
    /// New runner.
    pub fn new(dashboard: &'a Dashboard, engine: &'a dyn Dbms, config: SessionConfig) -> Self {
        Self {
            dashboard,
            engine,
            config,
        }
    }

    /// Simulate one goal-directed session (§4.3's interleaved model).
    ///
    /// Goals are pursued in order: the Oracle always targets the first
    /// unsolved goal, modeling the paper's goal-transition progression.
    pub fn run(&self, goals: &[Goal]) -> Result<SessionLog, CoreError> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let oracle = Oracle::new(self.config.oracle.clone());
        // The walk itself (state + Markov conditioning) lives in the shared
        // engine-free planner; this runner adds engines, goals, and the
        // Oracle/Markov interleaving on top.
        let mut planner = SessionPlanner::new(self.dashboard, self.config.markov.clone());
        let mut coverage = CoverageStore::new();
        let mut entries = Vec::new();

        // Pre-execute goal queries to obtain their expected result sets.
        let mut checkers: Vec<GoalChecker> = goals
            .iter()
            .map(|g| {
                let out = self.engine.execute(&g.query)?;
                Ok(GoalChecker::new(g.query.clone(), out.result))
            })
            .collect::<Result<_, CoreError>>()?;
        let mut outcomes: Vec<GoalOutcome> = goals
            .iter()
            .map(|g| GoalOutcome {
                question: g.question.clone(),
                sql: g.query.to_string(),
                solved_at: None,
                method: None,
            })
            .collect();

        // Step 0: the dashboard opens and renders every visualization.
        let initial = planner.initial_render().queries;
        let mut records = Vec::with_capacity(initial.len());
        for (node, query) in &initial {
            let out = self.engine.execute(query)?;
            let rows = out.result.n_rows();
            coverage.absorb(&crate::equivalence::augment_result(query, out.result));
            records.push(QueryRecord {
                vis: self.dashboard.graph().id(*node).to_string(),
                sql: query.to_string(),
                duration: out.elapsed,
                rows,
            });
            check_goals(&mut checkers, &mut outcomes, Some(query), &coverage, 0);
        }
        entries.push(LogEntry {
            step: 0,
            model: ModelChoice::InitialRender,
            action: "open dashboard".into(),
            action_kind: None,
            queries: records,
        });

        for step in 1..=self.config.max_steps {
            if self.config.stop_on_completion && checkers.iter().all(|c| c.solved.is_some()) {
                break;
            }
            let p_markov = self.config.decay.p_markov(step);
            let use_markov = rng.gen_bool(p_markov);

            let (model, planned) = if use_markov {
                match planner.plan_next(&mut rng) {
                    Some(planned) => (ModelChoice::Markov, planned),
                    None => break,
                }
            } else {
                // The Oracle targets the first unsolved goal (goal-ordering
                // semantics of §4.3).
                let active: Vec<&simba_store::ResultSet> = checkers
                    .iter()
                    .find(|c| c.solved.is_none())
                    .map(|c| vec![&c.goal_result])
                    .unwrap_or_default();
                match oracle.plan_next(
                    self.dashboard,
                    planner.state(),
                    self.engine,
                    &coverage,
                    &active,
                    &mut rng,
                )? {
                    Some(oracle_plan) => (ModelChoice::Oracle, planner.apply(oracle_plan.action)),
                    None => break,
                }
            };

            let description = planned.description;
            let action_kind = planned.kind.expect("interaction steps carry an action");
            let emitted = planned.queries;
            let mut records = Vec::with_capacity(emitted.len());
            for (node, query) in &emitted {
                let out = self.engine.execute(query)?;
                let rows = out.result.n_rows();
                coverage.absorb(&crate::equivalence::augment_result(query, out.result));
                records.push(QueryRecord {
                    vis: self.dashboard.graph().id(*node).to_string(),
                    sql: query.to_string(),
                    duration: out.elapsed,
                    rows,
                });
                check_goals(&mut checkers, &mut outcomes, Some(query), &coverage, step);
            }
            // Result-coverage may also complete goals with no new emitted
            // match (e.g. after absorbing the last fragment).
            check_goals(&mut checkers, &mut outcomes, None, &coverage, step);

            entries.push(LogEntry {
                step,
                model,
                action: description,
                action_kind: Some(action_kind),
                queries: records,
            });
        }

        Ok(SessionLog {
            dashboard: self.dashboard.spec().name.clone(),
            engine: self.engine.name().to_string(),
            seed: self.config.seed,
            entries,
            goals: outcomes,
        })
    }
}

fn check_goals(
    checkers: &mut [GoalChecker],
    outcomes: &mut [GoalOutcome],
    emitted: Option<&simba_sql::Select>,
    coverage: &CoverageStore,
    step: usize,
) {
    for (checker, outcome) in checkers.iter_mut().zip(outcomes.iter_mut()) {
        if checker.solved.is_some() {
            continue;
        }
        let method = match emitted {
            Some(q) => checker
                .check_emitted(q)
                .or_else(|| checker.check_result(coverage)),
            None => checker.check_result(coverage),
        };
        if let Some(m) = method {
            outcome.solved_at = Some(step);
            outcome.method = Some(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::workflows::Workflow;
    use super::*;
    use crate::spec::builtin::builtin;
    use simba_data::DashboardDataset;
    use simba_engine::EngineKind;
    use std::sync::Arc;

    fn setup() -> (Dashboard, Arc<dyn Dbms>, Vec<Goal>) {
        let ds = DashboardDataset::CustomerService;
        let table = Arc::new(ds.generate_rows(2_000, 21));
        let dashboard = Dashboard::new(builtin(ds), &table).unwrap();
        let goals = Workflow::Shneiderman.goals_for(&dashboard).unwrap();
        let engine = EngineKind::DuckDbLike.build();
        engine.register(table);
        (dashboard, engine, goals)
    }

    #[test]
    fn session_replays_identically_for_same_seed() {
        let (dashboard, engine, goals) = setup();
        let config = SessionConfig {
            seed: 77,
            max_steps: 12,
            ..Default::default()
        };
        let run = |cfg: &SessionConfig| {
            SessionRunner::new(&dashboard, engine.as_ref(), cfg.clone())
                .run(&goals)
                .unwrap()
        };
        let a = run(&config);
        let b = run(&config);
        assert_eq!(a.entries.len(), b.entries.len());
        for (ea, eb) in a.entries.iter().zip(&b.entries) {
            assert_eq!(ea.action, eb.action);
            let sa: Vec<&str> = ea.queries.iter().map(|q| q.sql.as_str()).collect();
            let sb: Vec<&str> = eb.queries.iter().map(|q| q.sql.as_str()).collect();
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn oracle_only_session_achieves_goals() {
        let (dashboard, engine, goals) = setup();
        let config = SessionConfig {
            seed: 3,
            max_steps: 30,
            decay: DecayConfig::oracle_only(),
            ..Default::default()
        };
        let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
            .run(&goals)
            .unwrap();
        assert!(
            log.all_goals_met(),
            "oracle-only session should achieve all goals: {:?}",
            log.goals.iter().map(|g| g.solved_at).collect::<Vec<_>>()
        );
        // No Markov steps should appear.
        assert!(log.entries.iter().all(|e| e.model != ModelChoice::Markov));
    }

    #[test]
    fn initial_render_queries_all_visualizations() {
        let (dashboard, engine, goals) = setup();
        let log = SessionRunner::new(&dashboard, engine.as_ref(), SessionConfig::default())
            .run(&goals)
            .unwrap();
        assert_eq!(log.entries[0].model, ModelChoice::InitialRender);
        assert_eq!(log.entries[0].queries.len(), 5);
    }

    #[test]
    fn max_steps_bounds_session_length() {
        let (dashboard, engine, goals) = setup();
        let config = SessionConfig {
            seed: 5,
            max_steps: 4,
            decay: DecayConfig::markov_only(),
            stop_on_completion: false,
            ..Default::default()
        };
        let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
            .run(&goals)
            .unwrap();
        assert_eq!(log.interaction_count(), 4);
    }

    #[test]
    fn goal_outcomes_record_method_and_step() {
        let (dashboard, engine, goals) = setup();
        let config = SessionConfig {
            seed: 9,
            max_steps: 30,
            decay: DecayConfig::oracle_only(),
            ..Default::default()
        };
        let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
            .run(&goals)
            .unwrap();
        for outcome in &log.goals {
            if let Some(step) = outcome.solved_at {
                assert!(outcome.method.is_some());
                assert!(step <= 30);
            }
        }
    }

    #[test]
    fn log_statistics_consistent() {
        let (dashboard, engine, goals) = setup();
        let config = SessionConfig {
            seed: 13,
            max_steps: 8,
            stop_on_completion: false,
            ..Default::default()
        };
        let log = SessionRunner::new(&dashboard, engine.as_ref(), config)
            .run(&goals)
            .unwrap();
        assert_eq!(log.query_count(), log.queries().count());
        assert_eq!(log.durations().len(), log.query_count());
        assert!(log.query_count() >= log.interaction_count());
    }
}
