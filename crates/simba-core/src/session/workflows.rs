//! Benchmark workflows: ordered goal-template sequences (§4.3, Table 3).
//!
//! The three default goal orderings re-create established exploration
//! scenarios from the literature:
//!
//! * **Shneiderman** — "overview first, zoom and filter, then
//!   details-on-demand": temporal overview → filtering → identification.
//! * **Battle & Heer** — characterize distributions, then correlations,
//!   then group differences (their EVA study's common arc).
//! * **Crossfilter (Battle et al.)** — rapid filter-first exploration with
//!   correlation follow-ups.

use super::synthesize::synthesize;
use crate::algebra::templates::{Goal, GoalTemplateKind};
use crate::dashboard::Dashboard;
use crate::error::CoreError;

/// The three built-in goal orderings (Table 3's "Goal Sequence" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workflow {
    Shneiderman,
    BattleHeer,
    Crossfilter,
}

impl Workflow {
    /// All workflows in Table 3 order.
    pub const ALL: [Workflow; 3] = [
        Workflow::Shneiderman,
        Workflow::BattleHeer,
        Workflow::Crossfilter,
    ];

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            Workflow::Shneiderman => "Shneiderman",
            Workflow::BattleHeer => "Battle & Heer",
            Workflow::Crossfilter => "Battle et al.",
        }
    }

    /// The goal-template sequence this workflow executes.
    pub fn template_sequence(self) -> Vec<GoalTemplateKind> {
        match self {
            Workflow::Shneiderman => vec![
                GoalTemplateKind::ObservingTemporalPatterns,
                GoalTemplateKind::Filtering,
                GoalTemplateKind::Identification,
            ],
            Workflow::BattleHeer => vec![
                GoalTemplateKind::MeasuringDifferences,
                GoalTemplateKind::FindingCorrelations,
                GoalTemplateKind::AnalyzingSpread,
            ],
            Workflow::Crossfilter => vec![
                GoalTemplateKind::Filtering,
                GoalTemplateKind::FindingCorrelations,
                GoalTemplateKind::MeasuringDifferences,
            ],
        }
    }

    /// Instantiate this workflow's goals against a dashboard.
    ///
    /// Goals are synthesized from the dashboard's own visualization
    /// structures (see [`synthesize`]), so every goal is reachable through
    /// some sequence of interactions. This reproduces the paper's
    /// compatibility rule: MyRide exposes too few quantitative measures for
    /// the correlation-bearing workflows (§6.2.3).
    pub fn goals_for(self, dashboard: &Dashboard) -> Result<Vec<Goal>, CoreError> {
        let mut goals = Vec::new();
        for (i, kind) in self.template_sequence().into_iter().enumerate() {
            let goal = synthesize(kind, dashboard, i as u64).map_err(|e| {
                CoreError::IncompatibleWorkflow {
                    workflow: self.name().to_string(),
                    dashboard: dashboard.spec().name.clone(),
                    reason: e.to_string(),
                }
            })?;
            goals.push(goal);
        }
        Ok(goals)
    }

    /// Is the workflow applicable to this dashboard?
    pub fn compatible_with(self, dashboard: &Dashboard) -> bool {
        self.goals_for(dashboard).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::builtin::builtin;
    use simba_data::DashboardDataset;

    fn dash(ds: DashboardDataset) -> Dashboard {
        let table = ds.generate_rows(1_000, 5);
        Dashboard::new(builtin(ds), &table).unwrap()
    }

    #[test]
    fn shneiderman_compatible_with_all_dashboards() {
        for ds in DashboardDataset::ALL {
            let d = dash(ds);
            assert!(
                Workflow::Shneiderman.compatible_with(&d),
                "{} should run Shneiderman",
                d.spec().name
            );
        }
    }

    #[test]
    fn my_ride_incompatible_with_correlation_workflows() {
        // §6.2.3: "the MyRide dashboard contains a low number of
        // quantitative data columns for testing correlations, making it
        // inapplicable to the Battle & Heer and crossfilter workflows."
        let d = dash(DashboardDataset::MyRide);
        assert!(!Workflow::BattleHeer.compatible_with(&d));
        assert!(!Workflow::Crossfilter.compatible_with(&d));
        let err = Workflow::BattleHeer.goals_for(&d).unwrap_err();
        assert!(matches!(err, CoreError::IncompatibleWorkflow { .. }));
    }

    #[test]
    fn other_dashboards_run_all_workflows() {
        for ds in [
            DashboardDataset::CustomerService,
            DashboardDataset::SupplyChain,
            DashboardDataset::UbcEnergy,
            DashboardDataset::ItMonitor,
            DashboardDataset::CirculationActivity,
        ] {
            let d = dash(ds);
            for wf in Workflow::ALL {
                assert!(wf.compatible_with(&d), "{} x {}", wf.name(), d.spec().name);
            }
        }
    }

    #[test]
    fn goals_target_the_dashboards_table() {
        let d = dash(DashboardDataset::ItMonitor);
        for goal in Workflow::Crossfilter.goals_for(&d).unwrap() {
            assert_eq!(goal.query.from, "it_monitor");
        }
    }

    #[test]
    fn each_workflow_yields_three_goals() {
        let d = dash(DashboardDataset::CustomerService);
        for wf in Workflow::ALL {
            assert_eq!(wf.goals_for(&d).unwrap().len(), 3, "{}", wf.name());
        }
    }
}
