//! The unified workload surface: every way of producing exploration
//! sessions — scripted replay, live adaptive walks, IDEBench-style
//! stochastic storms — behind one pair of traits.
//!
//! The benchmark's execution paths had forked: scripted replay consumed
//! pre-synthesized [`SessionScript`]s, adaptive runs drove a
//! [`SessionPlanner`] + [`AdaptivePolicy`] live, and the IDEBench baseline
//! had its own self-executing loop. Each fork duplicated pacing, worker
//! scheduling, latency accounting, and fingerprinting. This module factors
//! the *session-production* half out of the driver:
//!
//! * [`SessionSource`] — a set of N deterministic sessions. Implementations
//!   here: [`ScriptedSource`] (pre-synthesized scripts) and
//!   [`AdaptiveSource`] (live planner + steering policy). The
//!   `simba-idebench` crate bridges its stochastic loop in with
//!   `IdebenchSource`.
//! * [`SessionStream`] — one user's session as a feedback-driven stream of
//!   [`SourceStep`]s. The driver executes each step's queries and hands the
//!   results back on the next [`next_step`](SessionStream::next_step) call,
//!   which is how adaptive sources steer; scripted sources ignore the
//!   feedback.
//!
//! Streams are engine-free and deterministic: for a fixed source and user
//! index, the emitted steps may depend only on the *results* fed back
//! (which the equivalence suite pins across engines), never on timing. The
//! driver derives think-time pacing from
//! [`session_seed`](SessionStream::session_seed) so pacing noise can never
//! perturb a walk.

use super::adaptive::{AdaptivePolicy, SteeringKind, StepObservation, StepOutcome};
use super::batch::{splitmix, SessionScript};
use super::planner::{PlannedStep, SessionPlanner};
use crate::actions::Action;
use crate::dashboard::Dashboard;
use crate::graph::NodeId;
use crate::markov::MarkovModel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simba_sql::Select;
use simba_store::ResultSet;
use std::borrow::Cow;

/// One step of a session: a human-readable description and the queries the
/// interaction (or initial render) emits, in refresh order.
#[derive(Debug, Clone)]
pub struct SourceStep {
    /// Human-readable action description (`"open dashboard"` for the
    /// initial render).
    pub description: String,
    /// Which steering rule produced this step, if it was a result-steered
    /// correction rather than a model-sampled interaction.
    pub steering: Option<SteeringKind>,
    /// Emitted queries: `(visualization id, query)`.
    pub queries: Vec<(String, Select)>,
}

/// What one executed query left behind, fed back to the stream. Errors are
/// an explicit variant, not a missing result: adaptive sources steer on
/// them (a failed chart is a dead end the user backs out of), and the
/// distinction must survive the trip through the driver.
#[derive(Debug, Clone, Copy)]
pub enum QueryFeedback<'a> {
    /// The query completed with this result.
    Ok(&'a ResultSet),
    /// The query failed (after any driver-level retries).
    Errored,
}

impl<'a> QueryFeedback<'a> {
    /// The result, if the query completed.
    pub fn result(&self) -> Option<&'a ResultSet> {
        match self {
            QueryFeedback::Ok(r) => Some(r),
            QueryFeedback::Errored => None,
        }
    }
}

/// One user's session as a feedback-driven stream of steps.
///
/// The caller executes each returned step's queries and passes the results
/// (position-aligned with [`SourceStep::queries`]) to the next call. The
/// first call receives an empty slice.
pub trait SessionStream {
    /// Session-specific seed. The driver mixes it with its own seed for
    /// think-time pacing, keeping pacing draws off any walk rng.
    fn session_seed(&self) -> u64;

    /// Produce the next step given the previous step's results, or `None`
    /// when the session is over.
    fn next_step(&mut self, feedback: &[QueryFeedback<'_>]) -> Option<SourceStep>;
}

/// A deterministic set of exploration sessions the workload driver can
/// execute concurrently: one [`SessionStream`] per user index.
pub trait SessionSource: Sync {
    /// Stable mode name for reports: `"scripted"`, `"adaptive"`,
    /// `"idebench"`, …
    fn mode(&self) -> &'static str;

    /// Number of sessions this source yields.
    fn sessions(&self) -> usize;

    /// Description of the steering policy, for sources that react to
    /// results; `None` for sources that cannot steer. Drives whether the
    /// driver attaches a steering section to its report.
    fn steering_policy(&self) -> Option<String> {
        None
    }

    /// Open session `user`'s stream. Must be deterministic in
    /// `(self, user)`: opening the same user twice yields streams that
    /// emit identical steps under identical feedback.
    fn open(&self, user: usize) -> Box<dyn SessionStream + '_>;
}

// ---------------------------------------------------------------------------
// Scripted

/// Replays pre-synthesized [`SessionScript`]s: every interaction was fixed
/// before the first query ran, so the workload is engine-independent but
/// can never react to results.
#[derive(Debug, Clone)]
pub struct ScriptedSource<'a> {
    scripts: Cow<'a, [SessionScript]>,
}

impl ScriptedSource<'static> {
    /// Own a batch of scripts (e.g. straight from
    /// [`synthesize_scripts`](super::batch::synthesize_scripts)).
    pub fn new(scripts: Vec<SessionScript>) -> Self {
        ScriptedSource {
            scripts: Cow::Owned(scripts),
        }
    }
}

impl<'a> ScriptedSource<'a> {
    /// Borrow an existing batch without cloning it.
    pub fn borrowed(scripts: &'a [SessionScript]) -> Self {
        ScriptedSource {
            scripts: Cow::Borrowed(scripts),
        }
    }

    /// The underlying scripts.
    pub fn scripts(&self) -> &[SessionScript] {
        &self.scripts
    }
}

impl SessionSource for ScriptedSource<'_> {
    fn mode(&self) -> &'static str {
        "scripted"
    }

    fn sessions(&self) -> usize {
        self.scripts.len()
    }

    fn open(&self, user: usize) -> Box<dyn SessionStream + '_> {
        Box::new(ScriptedStream {
            script: &self.scripts[user],
            next: 0,
        })
    }
}

struct ScriptedStream<'a> {
    script: &'a SessionScript,
    next: usize,
}

impl SessionStream for ScriptedStream<'_> {
    fn session_seed(&self) -> u64 {
        self.script.seed
    }

    fn next_step(&mut self, _feedback: &[QueryFeedback<'_>]) -> Option<SourceStep> {
        let step = self.script.steps.get(self.next)?;
        self.next += 1;
        Some(SourceStep {
            description: step.action.clone(),
            steering: None,
            queries: step
                .queries
                .iter()
                .map(|q| (q.vis.clone(), q.query.clone()))
                .collect(),
        })
    }
}

// ---------------------------------------------------------------------------
// Adaptive

/// Configuration of the live, result-steered walks an [`AdaptiveSource`]
/// produces.
#[derive(Debug, Clone)]
pub struct AdaptiveWalkConfig {
    /// Base seed; user `u` walks with `base_seed ^ splitmix(u + 1)` — the
    /// same derivation as [`BatchConfig`](super::batch::BatchConfig), so
    /// scripted and adaptive runs of one seed explore comparably.
    pub base_seed: u64,
    /// Interaction budget per session after the initial render (steering
    /// steps count: reacting *is* interacting).
    pub steps_per_session: usize,
    /// Model mix; user `u` draws `mix[u % mix.len()]`.
    pub mix: Vec<MarkovModel>,
    /// Result-steering rules applied after every non-steered step.
    pub policy: AdaptivePolicy,
}

impl Default for AdaptiveWalkConfig {
    fn default() -> Self {
        AdaptiveWalkConfig {
            base_seed: 0,
            steps_per_session: 8,
            mix: MarkovModel::presets(),
            policy: AdaptivePolicy::default(),
        }
    }
}

/// Live result-steered sessions: each user runs a fresh Markov walk whose
/// next interaction may be overridden by the [`AdaptivePolicy`] inspecting
/// what the previous step's queries returned.
pub struct AdaptiveSource<'a> {
    dashboard: &'a Dashboard,
    config: AdaptiveWalkConfig,
    sessions: usize,
}

impl<'a> AdaptiveSource<'a> {
    /// Sessions over `dashboard` under `config`.
    ///
    /// # Panics
    /// If the model mix is empty.
    pub fn new(dashboard: &'a Dashboard, config: AdaptiveWalkConfig, sessions: usize) -> Self {
        assert!(
            !config.mix.is_empty(),
            "adaptive walk config needs at least one Markov model"
        );
        AdaptiveSource {
            dashboard,
            config,
            sessions,
        }
    }

    /// The configuration the source was built with.
    pub fn config(&self) -> &AdaptiveWalkConfig {
        &self.config
    }
}

impl SessionSource for AdaptiveSource<'_> {
    fn mode(&self) -> &'static str {
        "adaptive"
    }

    fn sessions(&self) -> usize {
        self.sessions
    }

    fn steering_policy(&self) -> Option<String> {
        Some(self.config.policy.describe())
    }

    fn open(&self, user: usize) -> Box<dyn SessionStream + '_> {
        let seed = self.config.base_seed ^ splitmix(user as u64 + 1);
        let model = self.config.mix[user % self.config.mix.len()].clone();
        Box::new(AdaptiveStream {
            planner: SessionPlanner::new(self.dashboard, model),
            policy: &self.config.policy,
            walk_rng: ChaCha8Rng::seed_from_u64(seed),
            seed,
            remaining: self.config.steps_per_session,
            last: None,
            started: false,
        })
    }
}

/// What the previous step left behind, for the steering decision.
struct LastStep {
    /// The applied action (`None` for the initial render).
    action: Option<Action>,
    /// Node of each emitted query, position-aligned with the feedback.
    nodes: Vec<NodeId>,
    /// Was the step itself a steering correction? A correction is given
    /// one normal step to play out — never steer twice in a row.
    steered: bool,
}

struct AdaptiveStream<'a> {
    planner: SessionPlanner<'a>,
    policy: &'a AdaptivePolicy,
    walk_rng: ChaCha8Rng,
    seed: u64,
    remaining: usize,
    last: Option<LastStep>,
    started: bool,
}

impl AdaptiveStream<'_> {
    fn record(&mut self, planned: &PlannedStep, steered: bool) -> SourceStep {
        self.last = Some(LastStep {
            action: planned.action.clone(),
            nodes: planned.queries.iter().map(|(n, _)| *n).collect(),
            steered,
        });
        let graph = self.planner.dashboard().graph();
        SourceStep {
            description: planned.description.clone(),
            steering: None,
            queries: planned
                .queries
                .iter()
                .map(|(n, q)| (graph.id(*n).to_string(), q.clone()))
                .collect(),
        }
    }

    /// Ask the policy for a correction to the previous step.
    fn steer(&self, feedback: &[QueryFeedback<'_>]) -> Option<(SteeringKind, Action)> {
        let last = self.last.as_ref()?;
        if last.steered || !self.policy.is_enabled() {
            return None;
        }
        let views: Vec<StepObservation<'_>> = last
            .nodes
            .iter()
            .zip(feedback)
            .map(|(node, fb)| StepObservation {
                vis: *node,
                outcome: match fb {
                    QueryFeedback::Ok(r) => StepOutcome::Ok(r),
                    QueryFeedback::Errored => StepOutcome::Errored,
                },
            })
            .collect();
        self.policy.steer(
            self.planner.dashboard(),
            self.planner.state(),
            last.action.as_ref(),
            &views,
        )
    }
}

impl SessionStream for AdaptiveStream<'_> {
    fn session_seed(&self) -> u64 {
        self.seed
    }

    fn next_step(&mut self, feedback: &[QueryFeedback<'_>]) -> Option<SourceStep> {
        if !self.started {
            self.started = true;
            let planned = self.planner.initial_render();
            return Some(self.record(&planned, false));
        }
        if self.remaining == 0 {
            return None;
        }
        let (steering, planned) = match self.steer(feedback) {
            Some((kind, action)) => (Some(kind), self.planner.apply(action)),
            None => (None, self.planner.plan_next(&mut self.walk_rng)?),
        };
        self.remaining -= 1;
        let mut step = self.record(&planned, steering.is_some());
        step.steering = steering;
        Some(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::batch::{synthesize_scripts, BatchConfig};
    use crate::spec::builtin::builtin;
    use simba_data::DashboardDataset;

    fn dashboard() -> (Dashboard, std::sync::Arc<simba_store::Table>) {
        let ds = DashboardDataset::CustomerService;
        let table = std::sync::Arc::new(ds.generate_rows(400, 9));
        (Dashboard::new(builtin(ds), &table).unwrap(), table)
    }

    fn drain(stream: &mut dyn SessionStream) -> Vec<SourceStep> {
        let mut steps = Vec::new();
        while let Some(step) = stream.next_step(&[]) {
            steps.push(step);
        }
        steps
    }

    #[test]
    fn scripted_source_replays_scripts_verbatim() {
        let (dash, _table) = dashboard();
        let config = BatchConfig {
            base_seed: 5,
            steps_per_session: 4,
            ..Default::default()
        };
        let scripts = synthesize_scripts(&dash, &config, 3);
        let source = ScriptedSource::borrowed(&scripts);
        assert_eq!(source.mode(), "scripted");
        assert_eq!(source.sessions(), 3);
        assert!(source.steering_policy().is_none());
        for (user, script) in scripts.iter().enumerate() {
            let mut stream = source.open(user);
            assert_eq!(stream.session_seed(), script.seed);
            let steps = drain(stream.as_mut());
            assert_eq!(steps.len(), script.steps.len());
            for (got, want) in steps.iter().zip(&script.steps) {
                assert_eq!(got.description, want.action);
                assert_eq!(got.steering, None);
                assert_eq!(got.queries.len(), want.queries.len());
                for ((vis, q), sq) in got.queries.iter().zip(&want.queries) {
                    assert_eq!(vis, &sq.vis);
                    assert_eq!(q.to_string(), sq.query.to_string());
                }
            }
        }
    }

    #[test]
    fn adaptive_stream_without_feedback_matches_plain_walk() {
        let (dash, _table) = dashboard();
        let config = AdaptiveWalkConfig {
            base_seed: 77,
            steps_per_session: 5,
            policy: AdaptivePolicy::disabled(),
            ..Default::default()
        };
        // With steering disabled and no feedback, the stream is exactly the
        // batch synthesizer's walk for the same (seed, model) pair.
        let scripts = synthesize_scripts(
            &dash,
            &BatchConfig {
                base_seed: 77,
                steps_per_session: 5,
                mix: config.mix.clone(),
            },
            2,
        );
        let source = AdaptiveSource::new(&dash, config, 2);
        assert_eq!(source.mode(), "adaptive");
        assert_eq!(source.steering_policy().as_deref(), Some("none"));
        for (user, script) in scripts.iter().enumerate() {
            let mut stream = source.open(user);
            assert_eq!(stream.session_seed(), script.seed);
            let descriptions: Vec<String> = drain(stream.as_mut())
                .into_iter()
                .map(|s| s.description)
                .collect();
            let expected: Vec<String> = script.steps.iter().map(|s| s.action.clone()).collect();
            assert_eq!(descriptions, expected, "user {user}");
        }
    }

    #[test]
    fn adaptive_stream_steers_on_empty_feedback_once() {
        let (dash, _table) = dashboard();
        let source = AdaptiveSource::new(
            &dash,
            AdaptiveWalkConfig {
                base_seed: 3,
                steps_per_session: 4,
                policy: AdaptivePolicy {
                    backtrack_on_empty: true,
                    drill_into_top_group: false,
                },
                ..Default::default()
            },
            1,
        );
        let mut stream = source.open(0);
        let render = stream.next_step(&[]).expect("initial render");
        assert_eq!(render.description, "open dashboard");

        // Feed a "filter emptied a chart" observation: the next step must be
        // the backtrack — but only if the previous action was a filter, so
        // walk until one is.
        let empty = ResultSet::empty(vec!["x".to_string()]);
        let mut steered = None;
        let mut feedback: Vec<ResultSet> = Vec::new();
        for _ in 0..6 {
            let fb: Vec<QueryFeedback<'_>> = feedback.iter().map(QueryFeedback::Ok).collect();
            let Some(step) = stream.next_step(&fb) else {
                break;
            };
            if step.steering.is_some() {
                steered = Some(step);
                break;
            }
            // Pretend every refreshed chart came back empty.
            feedback = step.queries.iter().map(|_| empty.clone()).collect();
        }
        let steered = steered.expect("an emptying filter must eventually be backtracked");
        assert_eq!(steered.steering, Some(SteeringKind::BacktrackOnEmpty));
        assert!(
            steered.description.starts_with("clear") || steered.description.starts_with("reset"),
            "backtrack must widen, got: {}",
            steered.description
        );
    }

    #[test]
    fn sources_reopen_deterministically() {
        let (dash, _table) = dashboard();
        let source = AdaptiveSource::new(
            &dash,
            AdaptiveWalkConfig {
                base_seed: 12,
                steps_per_session: 6,
                ..Default::default()
            },
            2,
        );
        for user in 0..2 {
            let a: Vec<String> = drain(source.open(user).as_mut())
                .into_iter()
                .map(|s| s.description)
                .collect();
            let b: Vec<String> = drain(source.open(user).as_mut())
                .into_iter()
                .map(|s| s.description)
                .collect();
            assert_eq!(a, b);
        }
    }
}
