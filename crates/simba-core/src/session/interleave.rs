//! Interleaving targeted and open-ended exploration (§4.3, Figure 5).
//!
//! Sessions start Markov-dominated (open-ended) and become Oracle-dominated
//! (goal-focused) via exponential decay of the Markov-selection probability.
//! The decay parameters model user expertise: experts start focused and
//! converge fast; novices linger in open exploration.

/// Exponential-decay schedule for P(Markov) over session steps (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayConfig {
    /// P(Markov) at step 0.
    pub initial_markov: f64,
    /// Decay rate λ in `P(t) = initial · e^(−λt)`.
    pub decay_rate: f64,
}

impl DecayConfig {
    /// Default parameters, tuned to yield session lengths consistent with
    /// the exploration studies the paper cites (~tens of interactions).
    pub fn typical() -> Self {
        Self {
            initial_markov: 0.90,
            decay_rate: 0.12,
        }
    }

    /// A novice lingers in open-ended exploration.
    pub fn novice() -> Self {
        Self {
            initial_markov: 0.97,
            decay_rate: 0.05,
        }
    }

    /// An expert "knows what they are looking for": low initial probability,
    /// fast decay (§4.3).
    pub fn expert() -> Self {
        Self {
            initial_markov: 0.50,
            decay_rate: 0.35,
        }
    }

    /// Pure Oracle (no randomness) — used by ablations.
    pub fn oracle_only() -> Self {
        Self {
            initial_markov: 0.0,
            decay_rate: 1.0,
        }
    }

    /// Pure Markov (IDEBench-style fully stochastic sessions).
    pub fn markov_only() -> Self {
        Self {
            initial_markov: 1.0,
            decay_rate: 0.0,
        }
    }

    /// P(Markov) at step `t`.
    pub fn p_markov(&self, step: usize) -> f64 {
        (self.initial_markov * (-self.decay_rate * step as f64).exp()).clamp(0.0, 1.0)
    }

    /// The step at which both models become equally likely (the dotted line
    /// in Figure 5), if it exists.
    pub fn crossover_step(&self) -> Option<usize> {
        if self.initial_markov <= 0.5 {
            return Some(0);
        }
        if self.decay_rate <= 0.0 {
            return None;
        }
        Some(((self.initial_markov / 0.5).ln() / self.decay_rate).ceil() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_is_monotonically_decreasing() {
        let d = DecayConfig::typical();
        let mut prev = f64::INFINITY;
        for t in 0..100 {
            let p = d.p_markov(t);
            assert!((0.0..=1.0).contains(&p));
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn expert_focuses_before_novice() {
        let novice = DecayConfig::novice().crossover_step().unwrap();
        let expert = DecayConfig::expert().crossover_step().unwrap();
        assert!(expert < novice, "expert {expert} vs novice {novice}");
    }

    #[test]
    fn extremes_pin_model_choice() {
        assert_eq!(DecayConfig::oracle_only().p_markov(0), 0.0);
        assert_eq!(DecayConfig::markov_only().p_markov(1_000), 1.0);
        assert_eq!(DecayConfig::markov_only().crossover_step(), None);
    }

    #[test]
    fn crossover_is_where_p_drops_below_half() {
        let d = DecayConfig::typical();
        let t = d.crossover_step().unwrap();
        assert!(d.p_markov(t) <= 0.5);
        if t > 0 {
            assert!(d.p_markov(t - 1) > 0.5);
        }
    }
}
