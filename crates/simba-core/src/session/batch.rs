//! Batch session synthesis for the concurrent workload driver.
//!
//! [`SessionRunner`](super::SessionRunner) interleaves planning with engine
//! execution, so it cannot pre-generate work for load testing. This module
//! walks the Markov interaction model *without* an engine, producing
//! [`SessionScript`]s — fully materialized query sequences — that
//! `simba-driver` replays concurrently against shared `Dbms` instances.
//! Scripts are deterministic in the batch seed, and a batch draws each
//! user's model from a configurable mix, following Battle et al.'s
//! observation that real deployments serve *heterogeneous* user
//! populations, not N copies of one behavior.

use super::planner::{PlannedStep, SessionPlanner};
use crate::dashboard::Dashboard;
use crate::markov::MarkovModel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use simba_sql::Select;

/// One query a session step emits.
#[derive(Debug, Clone)]
pub struct ScriptQuery {
    /// Visualization node id that issues the query.
    pub vis: String,
    pub query: Select,
}

/// One scripted interaction (or the initial render) and its queries.
#[derive(Debug, Clone)]
pub struct ScriptStep {
    /// Human-readable action description.
    pub action: String,
    pub queries: Vec<ScriptQuery>,
}

/// A fully materialized exploration session for one simulated user.
#[derive(Debug, Clone)]
pub struct SessionScript {
    /// Index of the user within the batch.
    pub user: usize,
    /// Session-specific seed (derived from the batch seed).
    pub seed: u64,
    /// Name of the Markov model that drove this user.
    pub model: &'static str,
    pub steps: Vec<ScriptStep>,
}

impl SessionScript {
    /// Total queries across all steps.
    pub fn query_count(&self) -> usize {
        self.steps.iter().map(|s| s.queries.len()).sum()
    }
}

/// Configuration for batch synthesis.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Base seed; user `u` runs with `base_seed ^ splitmix(u)`.
    pub base_seed: u64,
    /// Interactions per session after the initial render.
    pub steps_per_session: usize,
    /// Model mix; user `u` draws `mix[u % mix.len()]`.
    pub mix: Vec<MarkovModel>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            base_seed: 0,
            steps_per_session: 8,
            mix: vec![
                MarkovModel::idebench_default(),
                MarkovModel::uniform(),
                MarkovModel::brush_heavy(),
                MarkovModel::drilldown(),
            ],
        }
    }
}

/// Pre-generate `sessions` scripted sessions against one dashboard.
pub fn synthesize_scripts(
    dash: &Dashboard,
    config: &BatchConfig,
    sessions: usize,
) -> Vec<SessionScript> {
    assert!(
        !config.mix.is_empty(),
        "batch config needs at least one Markov model"
    );
    (0..sessions)
        .map(|user| synthesize_one(dash, config, user))
        .collect()
}

fn synthesize_one(dash: &Dashboard, config: &BatchConfig, user: usize) -> SessionScript {
    let seed = config.base_seed ^ splitmix(user as u64 + 1);
    let model = &config.mix[user % config.mix.len()];
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut planner = SessionPlanner::new(dash, model.clone());

    let to_step = |planned: PlannedStep| ScriptStep {
        action: planned.description,
        queries: planned
            .queries
            .into_iter()
            .map(|(node, query)| ScriptQuery {
                vis: dash.graph().id(node).to_string(),
                query,
            })
            .collect(),
    };

    let mut steps = vec![to_step(planner.initial_render())];
    for _ in 0..config.steps_per_session {
        let Some(planned) = planner.plan_next(&mut rng) else {
            break;
        };
        steps.push(to_step(planned));
    }

    SessionScript {
        user,
        seed,
        model: model.name,
        steps,
    }
}

/// SplitMix64 finalizer: a cheap bijective scrambler that decorrelates
/// seeds derived from nearby values (indices, salted bases). Shared by the
/// driver and the harness binaries so all seed derivation mixes one way.
pub fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::builtin::builtin;
    use simba_data::DashboardDataset;

    fn dash() -> Dashboard {
        let ds = DashboardDataset::CustomerService;
        let table = ds.generate_rows(500, 11);
        Dashboard::new(builtin(ds), &table).unwrap()
    }

    #[test]
    fn batches_are_deterministic() {
        let d = dash();
        let config = BatchConfig {
            base_seed: 42,
            ..Default::default()
        };
        let a = synthesize_scripts(&d, &config, 6);
        let b = synthesize_scripts(&d, &config, 6);
        assert_eq!(a.len(), 6);
        for (sa, sb) in a.iter().zip(&b) {
            assert_eq!(sa.seed, sb.seed);
            assert_eq!(sa.steps.len(), sb.steps.len());
            for (ta, tb) in sa.steps.iter().zip(&sb.steps) {
                assert_eq!(ta.action, tb.action);
                let qa: Vec<String> = ta.queries.iter().map(|q| q.query.to_string()).collect();
                let qb: Vec<String> = tb.queries.iter().map(|q| q.query.to_string()).collect();
                assert_eq!(qa, qb);
            }
        }
    }

    #[test]
    fn scripts_start_with_full_render_and_respect_step_bound() {
        let d = dash();
        let config = BatchConfig {
            base_seed: 7,
            steps_per_session: 5,
            ..Default::default()
        };
        for script in synthesize_scripts(&d, &config, 4) {
            assert_eq!(script.steps[0].action, "open dashboard");
            assert_eq!(
                script.steps[0].queries.len(),
                d.all_queries(&d.initial_state()).len()
            );
            assert!(script.steps.len() <= 6, "render + at most 5 interactions");
            assert!(script.query_count() >= script.steps[0].queries.len());
        }
    }

    #[test]
    fn users_are_heterogeneous() {
        let d = dash();
        let scripts = synthesize_scripts(&d, &BatchConfig::default(), 4);
        // Model mix rotates...
        let models: Vec<&str> = scripts.iter().map(|s| s.model).collect();
        assert_eq!(
            models
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            4
        );
        // ...and seeds decorrelate, so action sequences differ.
        let flat: Vec<String> = scripts
            .iter()
            .map(|s| {
                s.steps
                    .iter()
                    .map(|t| t.action.clone())
                    .collect::<Vec<_>>()
                    .join(";")
            })
            .collect();
        assert!(
            flat.windows(2).any(|w| w[0] != w[1]),
            "all sessions identical: {flat:?}"
        );
    }

    #[test]
    fn scripted_queries_reference_known_fields() {
        let d = dash();
        let config = BatchConfig {
            base_seed: 3,
            steps_per_session: 6,
            ..Default::default()
        };
        for script in synthesize_scripts(&d, &config, 3) {
            for step in &script.steps {
                for q in &step.queries {
                    assert_eq!(q.query.from, d.spec().database.table);
                    for col in q.query.referenced_columns() {
                        assert!(
                            d.spec().database.field(col).is_some(),
                            "unknown field `{col}` in {}",
                            q.query
                        );
                    }
                }
            }
        }
    }
}
