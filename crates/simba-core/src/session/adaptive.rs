//! Result-steered session policies: the *adaptive* half of the benchmark.
//!
//! Scripted replay fixes every interaction before the first query runs, so
//! a simulated user can never react to what they see — exactly the
//! behavior IDEBench's viewport argument says interactive workloads need.
//! An [`AdaptivePolicy`] closes the loop: after each step executes, the
//! driver hands the policy the refreshed results
//! ([`StepObservation`]s) and the policy may answer with a *steering*
//! action — an interaction a real user plausibly performs in response:
//!
//! * **backtrack-on-empty** — the last filter emptied a chart, so undo it
//!   (clear the widget or the mark selection that caused it);
//! * **drill-into-top-group** — pin the dominant category of the last
//!   aggregate by clicking its mark, the classic overview→detail move.
//!
//! Policies are engine-free and deterministic: decisions depend only on
//! result *content*, which the equivalence suite pins to be identical
//! across engines — so the same seed steers the same way on every engine.

use crate::actions::Action;
use crate::dashboard::Dashboard;
use crate::graph::{DashboardState, NodeId, NodeKind, NodeState};
use simba_store::{ResultSet, Value};

/// Which steering rule fired (for driver counters and logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SteeringKind {
    /// Undid a filter that emptied one of its charts.
    BacktrackOnEmpty,
    /// Pinned the dominant category of an aggregate result.
    DrillTopGroup,
}

impl SteeringKind {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            SteeringKind::BacktrackOnEmpty => "backtrack_on_empty",
            SteeringKind::DrillTopGroup => "drill_top_group",
        }
    }
}

/// How one executed query ended, as seen by the steering hooks.
///
/// Errors are explicit rather than folded into "empty result": a failed
/// query is a dead end the user *notices* (the chart shows an error state),
/// and steering must react to it deterministically — the same walk, the
/// same unwind, on every rerun of the same faulted seed.
#[derive(Debug, Clone, Copy)]
pub enum StepOutcome<'a> {
    /// The query completed with this result.
    Ok(&'a ResultSet),
    /// The query failed (after any driver-level retries); there is no
    /// result to inspect.
    Errored,
}

impl<'a> StepOutcome<'a> {
    /// The result, if the query completed.
    pub fn result(&self) -> Option<&'a ResultSet> {
        match self {
            StepOutcome::Ok(r) => Some(r),
            StepOutcome::Errored => None,
        }
    }

    /// Did the query fail?
    pub fn is_err(&self) -> bool {
        matches!(self, StepOutcome::Errored)
    }
}

/// One executed query as seen by the steering hooks.
#[derive(Debug, Clone, Copy)]
pub struct StepObservation<'a> {
    /// Visualization node that issued the query.
    pub vis: NodeId,
    /// How the query ended.
    pub outcome: StepOutcome<'a>,
}

/// Configurable result-inspection steering rules.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    /// Undo a filtering action when it empties any refreshed chart.
    pub backtrack_on_empty: bool,
    /// Click the dominant mark of the first multi-group aggregate result.
    pub drill_into_top_group: bool,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            backtrack_on_empty: true,
            drill_into_top_group: true,
        }
    }
}

impl AdaptivePolicy {
    /// A policy with every rule disabled (adaptive mode degenerates to an
    /// unsteered live Markov walk).
    pub fn disabled() -> Self {
        AdaptivePolicy {
            backtrack_on_empty: false,
            drill_into_top_group: false,
        }
    }

    /// Is any steering rule active?
    pub fn is_enabled(&self) -> bool {
        self.backtrack_on_empty || self.drill_into_top_group
    }

    /// Stable description of the enabled rules, for reports.
    pub fn describe(&self) -> String {
        let mut on = Vec::new();
        if self.backtrack_on_empty {
            on.push(SteeringKind::BacktrackOnEmpty.name());
        }
        if self.drill_into_top_group {
            on.push(SteeringKind::DrillTopGroup.name());
        }
        if on.is_empty() {
            "none".to_string()
        } else {
            on.join("+")
        }
    }

    /// Inspect the last step's results and propose at most one steering
    /// action. `action` is the interaction that produced `observed`
    /// (`None` for the initial render). Backtracking has priority: an
    /// emptied chart is a dead end a user corrects before exploring
    /// further.
    pub fn steer(
        &self,
        dashboard: &Dashboard,
        state: &DashboardState,
        action: Option<&Action>,
        observed: &[StepObservation<'_>],
    ) -> Option<(SteeringKind, Action)> {
        if self.backtrack_on_empty {
            if let Some(undo) = backtrack(action, observed) {
                return Some((SteeringKind::BacktrackOnEmpty, undo));
            }
        }
        if self.drill_into_top_group {
            if let Some(drill) = drill_top_group(dashboard, state, observed) {
                return Some((SteeringKind::DrillTopGroup, drill));
            }
        }
        None
    }
}

/// If the last action narrowed a filter and any refreshed chart came back
/// empty — or failed outright — produce the undo action. An errored chart
/// is treated like an emptied one: the user sees a dead view either way,
/// and undoing the triggering filter is the reaction that re-renders it.
fn backtrack(action: Option<&Action>, observed: &[StepObservation<'_>]) -> Option<Action> {
    let dead = observed
        .iter()
        .any(|o| o.outcome.is_err() || o.outcome.result().is_some_and(ResultSet::is_empty));
    if !dead {
        return None;
    }
    // Only *filtering* actions are backtrack-able; clears and resets widen.
    match action? {
        Action::Toggle { widget, .. }
        | Action::SetExclusive { widget, .. }
        | Action::SetSingle {
            widget,
            value: Some(_),
        }
        | Action::SetRange { widget, .. } => Some(Action::ClearWidget { widget: *widget }),
        Action::SelectMark { vis, .. } => Some(Action::ClearSelection { vis: *vis }),
        _ => None,
    }
}

/// Find the first refreshed aggregate with ≥ 2 groups on a selectable
/// categorical dimension and click its dominant mark.
///
/// "Dominant" is decided from the result *multiset* — maximum measure
/// value under [`f64::total_cmp`], ties broken toward the lexicographically
/// smaller category — so row emission order (which differs across engines)
/// cannot change the decision.
fn drill_top_group(
    dashboard: &Dashboard,
    state: &DashboardState,
    observed: &[StepObservation<'_>],
) -> Option<Action> {
    let graph = dashboard.graph();
    for obs in observed {
        let Some(result) = obs.outcome.result() else {
            continue;
        };
        let NodeKind::Visualization(vidx) = graph.kind(obs.vis) else {
            continue;
        };
        let vis = &graph.spec.visualizations[vidx];
        // Need a clickable chart grouped on a plain categorical field.
        if !vis.selectable || vis.measures.is_empty() {
            continue;
        }
        let Some(dim) = vis.dimensions.first() else {
            continue;
        };
        if dim.transform.is_some() || result.n_rows() < 2 {
            continue;
        }
        // Column layout: dimensions first, then measures.
        let measure_col = vis.dimensions.len();
        if result.n_cols() <= measure_col {
            continue;
        }
        let mut top: Option<(f64, &str)> = None;
        for row in &result.rows {
            let (Some(Value::Str(cat)), Some(measure)) = (row.first(), row.get(measure_col)) else {
                continue;
            };
            let cat: &str = cat;
            let Some(m) = measure.as_f64() else { continue };
            let better = match top {
                None => true,
                Some((best, cat_best)) => match m.total_cmp(&best) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Equal => cat < cat_best,
                    std::cmp::Ordering::Less => false,
                },
            };
            if better {
                top = Some((m, cat));
            }
        }
        let Some((_, value)) = top else { continue };
        // The mark must exist as a clickable option, and clicking the sole
        // already-selected mark would *clear* it, not pin it.
        if !dashboard
            .domains()
            .categories(&dim.field)
            .iter()
            .any(|c| c == value)
        {
            continue;
        }
        if let NodeState::VisSelection(sel) = state.node(obs.vis) {
            if sel.len() == 1 && sel.contains(value) {
                continue;
            }
        }
        return Some(Action::SelectMark {
            vis: obs.vis,
            value: value.to_string(),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::builtin::builtin;
    use simba_data::DashboardDataset;

    fn dashboard() -> Dashboard {
        let ds = DashboardDataset::CustomerService;
        let table = ds.generate_rows(500, 4);
        Dashboard::new(builtin(ds), &table).unwrap()
    }

    fn grouped(rows: Vec<(&str, i64)>) -> ResultSet {
        ResultSet::new(
            vec!["queue".to_string(), "count".to_string()],
            rows.into_iter()
                .map(|(q, n)| vec![Value::from(q), Value::Int(n)])
                .collect(),
        )
    }

    #[test]
    fn backtrack_undoes_the_emptying_filter() {
        let d = dashboard();
        let state = d.initial_state();
        let widget = d.graph().node("queue_checkbox").unwrap();
        let vis = d.graph().node("calls_per_rep").unwrap();
        let action = Action::SetExclusive {
            widget,
            value: "A".into(),
        };
        let empty = ResultSet::empty(vec!["rep".to_string(), "count".to_string()]);
        let obs = [StepObservation {
            vis,
            outcome: StepOutcome::Ok(&empty),
        }];
        let (kind, undo) = AdaptivePolicy::default()
            .steer(&d, &state, Some(&action), &obs)
            .expect("empty result must trigger steering");
        assert_eq!(kind, SteeringKind::BacktrackOnEmpty);
        assert_eq!(undo, Action::ClearWidget { widget });
    }

    #[test]
    fn backtrack_undoes_the_filter_that_errored_a_chart() {
        let d = dashboard();
        let state = d.initial_state();
        let widget = d.graph().node("queue_checkbox").unwrap();
        let vis = d.graph().node("calls_per_rep").unwrap();
        let action = Action::SetExclusive {
            widget,
            value: "A".into(),
        };
        // An errored query is a dead view just like an empty one: the
        // filter that triggered it must be unwound, with no result to
        // inspect at all.
        let obs = [StepObservation {
            vis,
            outcome: StepOutcome::Errored,
        }];
        assert!(obs[0].outcome.is_err());
        assert!(obs[0].outcome.result().is_none());
        let (kind, undo) = AdaptivePolicy::default()
            .steer(&d, &state, Some(&action), &obs)
            .expect("errored result must trigger steering");
        assert_eq!(kind, SteeringKind::BacktrackOnEmpty);
        assert_eq!(undo, Action::ClearWidget { widget });

        // But only filtering actions unwind; an errored initial render has
        // nothing to undo.
        assert!(AdaptivePolicy::default()
            .steer(&d, &state, None, &obs)
            .is_none());
    }

    #[test]
    fn backtrack_ignores_widening_actions_and_nonempty_results() {
        let d = dashboard();
        let state = d.initial_state();
        let widget = d.graph().node("queue_checkbox").unwrap();
        let vis = d.graph().node("calls_per_rep").unwrap();
        let empty = ResultSet::empty(vec!["rep".to_string()]);
        let obs = [StepObservation {
            vis,
            outcome: StepOutcome::Ok(&empty),
        }];
        let policy = AdaptivePolicy {
            drill_into_top_group: false,
            ..Default::default()
        };
        // A clear is never backtracked, even over an empty result.
        assert!(policy
            .steer(&d, &state, Some(&Action::ClearWidget { widget }), &obs)
            .is_none());
        // A filter over non-empty results is left alone.
        let full = grouped(vec![("A", 3)]);
        let obs = [StepObservation {
            vis,
            outcome: StepOutcome::Ok(&full),
        }];
        let filter = Action::SetExclusive {
            widget,
            value: "A".into(),
        };
        assert!(policy.steer(&d, &state, Some(&filter), &obs).is_none());
    }

    #[test]
    fn drill_pins_dominant_category_order_insensitively() {
        let d = dashboard();
        let state = d.initial_state();
        // calls_per_rep groups on (rep_id, hour) with a COUNT measure, so a
        // realistic result is [rep_id, hour, count] and the measure sits at
        // column index 2 (= dimensions.len()).
        let vis = d.graph().node("calls_per_rep").unwrap();
        let cats = d.domains().categories("rep_id").to_vec();
        assert!(cats.len() >= 3, "need ≥3 categories, got {cats:?}");
        let grouped = |rows: Vec<(&str, i64)>| {
            ResultSet::new(
                vec!["rep_id".into(), "hour".into(), "count".into()],
                rows.into_iter()
                    .map(|(r, n)| vec![Value::from(r), Value::Int(9), Value::Int(n)])
                    .collect(),
            )
        };

        let fwd = grouped(vec![(&cats[0], 5), (&cats[1], 9), (&cats[2], 2)]);
        let rev = grouped(vec![(&cats[2], 2), (&cats[1], 9), (&cats[0], 5)]);
        let policy = AdaptivePolicy {
            backtrack_on_empty: false,
            ..Default::default()
        };
        let pick = |rs: &ResultSet| {
            let obs = [StepObservation {
                vis,
                outcome: StepOutcome::Ok(rs),
            }];
            policy.steer(&d, &state, None, &obs)
        };
        let a = pick(&fwd).expect("dominant group must be drilled");
        let b = pick(&rev).expect("row order must not matter");
        assert_eq!(a, b);
        assert_eq!(
            a.1,
            Action::SelectMark {
                vis,
                value: cats[1].clone()
            }
        );
        assert_eq!(a.0, SteeringKind::DrillTopGroup);

        // Ties break toward the lexicographically smaller category.
        let mut sorted = [cats[0].clone(), cats[1].clone()];
        sorted.sort();
        let tied = grouped(vec![(&cats[0], 7), (&cats[1], 7)]);
        let t = pick(&tied).unwrap();
        assert_eq!(
            t.1,
            Action::SelectMark {
                vis,
                value: sorted[0].clone()
            }
        );

        // Clicking the sole already-selected mark would clear it — skip.
        let mut selected = state.clone();
        if let NodeState::VisSelection(sel) = selected.node_mut(vis) {
            sel.insert(cats[1].clone());
        }
        let obs = [StepObservation {
            vis,
            outcome: StepOutcome::Ok(&fwd),
        }];
        assert!(policy.steer(&d, &selected, None, &obs).is_none());
    }

    #[test]
    fn disabled_policy_never_steers() {
        let d = dashboard();
        let state = d.initial_state();
        let vis = d.graph().node("calls_per_rep").unwrap();
        let empty = ResultSet::empty(vec!["rep".to_string()]);
        let obs = [StepObservation {
            vis,
            outcome: StepOutcome::Ok(&empty),
        }];
        let widget = d.graph().node("queue_checkbox").unwrap();
        let filter = Action::SetExclusive {
            widget,
            value: "A".into(),
        };
        let policy = AdaptivePolicy::disabled();
        assert!(!policy.is_enabled());
        assert_eq!(policy.describe(), "none");
        assert!(policy.steer(&d, &state, Some(&filter), &obs).is_none());
        assert_eq!(
            AdaptivePolicy::default().describe(),
            "backtrack_on_empty+drill_top_group"
        );
    }
}
