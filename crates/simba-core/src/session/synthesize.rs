//! Dashboard-aware goal synthesis.
//!
//! §2.1 of the paper observes that "a dashboard emits certain query
//! structures which constrain the range of exploration goals it can
//! support". This module instantiates the Table 2 goal templates *from the
//! dashboard's own visualization structures*, guaranteeing every goal is
//! reachable through some sequence of interactions:
//!
//! * **view goals** reuse a visualization's base query, optionally narrowed
//!   by a widget-achievable filter (the user must navigate to that state);
//! * **fragment goals** (the Figure 3 pattern) group a stat visualization's
//!   measure by a *pinnable* categorical field — achievable only as the
//!   union of per-value filtered queries, driving multi-step exploration.

use crate::algebra::templates::{Goal, GoalTemplateKind};
use crate::dashboard::Dashboard;
use crate::error::CoreError;
use crate::graph::{data_layer, NodeId, NodeKind};
use crate::spec::{ControlSpec, FieldRole, VisualizationSpec};
use simba_sql::{BinOp, Expr, Select, SelectItem};

/// Synthesize one goal of the given template kind for a dashboard.
///
/// `salt` varies parameter choices (pin values, thresholds) deterministically
/// so repeated runs can explore different instantiations.
pub fn synthesize(kind: GoalTemplateKind, dash: &Dashboard, salt: u64) -> Result<Goal, CoreError> {
    match kind {
        GoalTemplateKind::ObservingTemporalPatterns => temporal_overview(dash),
        GoalTemplateKind::Filtering => filtering(dash, salt),
        GoalTemplateKind::FindingCorrelations => correlations(dash, salt),
        GoalTemplateKind::AnalyzingSpread => view_goal(
            kind, dash, salt, /*require_cat_dim=*/ true, /*min_measures=*/ 1,
        ),
        GoalTemplateKind::MeasuringDifferences => view_goal(kind, dash, salt, true, 1),
        GoalTemplateKind::Identification => view_goal(kind, dash, salt, true, 1),
    }
}

/// Fields pinnable to a single value upstream of `vis`: categorical fields
/// controlled by an ancestor widget (checkbox/radio/dropdown) or by an
/// ancestor selectable visualization's primary dimension.
fn pinnable_fields(dash: &Dashboard, vis: NodeId) -> Vec<String> {
    let graph = dash.graph();
    let mut out: Vec<String> = Vec::new();
    for anc in graph.ancestors(vis) {
        let field = match graph.kind(anc) {
            NodeKind::Widget(w) => match &graph.spec.widgets[w].control {
                ControlSpec::Checkbox { field }
                | ControlSpec::Radio { field }
                | ControlSpec::Dropdown { field } => Some(field.clone()),
                _ => None,
            },
            NodeKind::Visualization(v) => {
                let vs = &graph.spec.visualizations[v];
                if vs.selectable {
                    vs.dimensions.first().map(|d| d.field.clone())
                } else {
                    None
                }
            }
        };
        if let Some(f) = field {
            let is_cat = graph
                .spec
                .database
                .field(&f)
                .is_some_and(|fs| fs.role == FieldRole::Categorical);
            if is_cat
                && !dash.domains().categories(&f).is_empty()
                && !out.iter().any(|x| x.eq_ignore_ascii_case(&f))
            {
                out.push(f);
            }
        }
    }
    out
}

/// Visualization metadata used during synthesis.
struct VisInfo<'a> {
    node: NodeId,
    spec: &'a VisualizationSpec,
    base: Select,
}

fn vis_infos(dash: &Dashboard) -> Vec<VisInfo<'_>> {
    let graph = dash.graph();
    graph
        .visualization_nodes()
        .into_iter()
        .filter_map(|node| match graph.kind(node) {
            NodeKind::Visualization(i) => {
                let spec = &graph.spec.visualizations[i];
                let base = data_layer::base_query(&graph.spec.database.table, spec);
                Some(VisInfo { node, spec, base })
            }
            _ => None,
        })
        .collect()
}

/// A "view goal": the base query of a visualization, optionally narrowed by
/// a pinnable filter the user must navigate to.
fn view_goal(
    kind: GoalTemplateKind,
    dash: &Dashboard,
    salt: u64,
    require_cat_dim: bool,
    min_measures: usize,
) -> Result<Goal, CoreError> {
    let infos = vis_infos(dash);
    let cat_dim_of = |v: &VisualizationSpec| -> Option<String> {
        v.dimensions
            .iter()
            .find(|d| {
                dash.graph()
                    .spec
                    .database
                    .field(&d.field)
                    .is_some_and(|f| f.role == FieldRole::Categorical)
            })
            .map(|d| d.field.clone())
    };
    // Deterministically rotate the starting visualization with the salt.
    let n = infos.len();
    let candidate = (0..n)
        .map(|i| &infos[(i + salt as usize) % n])
        .find(|info| {
            (!require_cat_dim || cat_dim_of(info.spec).is_some())
                && info.spec.measures.len() >= min_measures
        })
        .ok_or_else(|| {
            CoreError::GoalInstantiation(format!(
                "{}: no visualization with the required structure",
                kind.name()
            ))
        })?;

    let mut query = candidate.base.clone();
    // Narrow by a pinnable field outside the view's own dimensions, when one
    // exists — the user has to reach that widget state.
    let pin = pinnable_fields(dash, candidate.node).into_iter().find(|f| {
        !candidate
            .spec
            .dimensions
            .iter()
            .any(|d| d.field.eq_ignore_ascii_case(f))
    });
    let mut pin_text = String::new();
    if let Some(field) = pin {
        let cats = dash.domains().categories(&field);
        let value = &cats[salt as usize % cats.len()];
        query.add_filter(Expr::binary(
            Expr::col(field.clone()),
            BinOp::Eq,
            Expr::str(value.clone()),
        ));
        pin_text = format!(" when {field} is '{value}'");
    }

    let dim_names: Vec<&str> = candidate
        .spec
        .dimensions
        .iter()
        .map(|d| d.field.as_str())
        .collect();
    let question = match kind {
        GoalTemplateKind::AnalyzingSpread => format!(
            "Which member of {} has the largest spread of {}{}?",
            dim_names.first().copied().unwrap_or("the view"),
            candidate.spec.title,
            pin_text
        ),
        GoalTemplateKind::MeasuringDifferences => format!(
            "Are there differences in {} between the members of {}{}?",
            candidate.spec.title,
            dim_names.join(", "),
            pin_text
        ),
        GoalTemplateKind::Identification => format!(
            "Which {} consumes the max or min of {}{}?",
            dim_names.first().copied().unwrap_or("member"),
            candidate.spec.title,
            pin_text
        ),
        _ => format!("{}{}", kind.generalization(), pin_text),
    };
    Ok(Goal::from_sql(kind, question, query))
}

/// The temporal-overview goal: a visualization presenting time on an axis,
/// exactly as the dashboard renders it (Shneiderman's "overview first").
fn temporal_overview(dash: &Dashboard) -> Result<Goal, CoreError> {
    let infos = vis_infos(dash);
    let is_temporal_dim = |v: &VisualizationSpec| -> bool {
        v.dimensions.iter().any(|d| {
            // Date-part transforms and temporal fields are time axes; a
            // BIN transform on a quantitative field is not.
            !matches!(
                d.transform,
                None | Some(crate::spec::FieldTransform::Bin { .. })
            ) || dash
                .graph()
                .spec
                .database
                .field(&d.field)
                .is_some_and(|f| f.role == FieldRole::Temporal)
        })
    };
    let candidate = infos
        .iter()
        .find(|i| is_temporal_dim(i.spec))
        // Fall back to any dimensional view (e.g. MyRide's route axis acts
        // as its temporal progression).
        .or_else(|| infos.iter().find(|i| !i.spec.dimensions.is_empty()))
        .ok_or_else(|| {
            CoreError::GoalInstantiation(
                "Observing Temporal Patterns: no visualization with a navigable axis".into(),
            )
        })?;
    let question = format!(
        "How does change along {} affect patterns in {}, if at all?",
        candidate
            .spec
            .dimensions
            .first()
            .map(|d| d.field.as_str())
            .unwrap_or("time"),
        candidate.spec.title
    );
    Ok(Goal::from_sql(
        GoalTemplateKind::ObservingTemporalPatterns,
        question,
        candidate.base.clone(),
    ))
}

/// The Figure 3 "Filtering" goal: group a stat visualization's measure by a
/// pinnable categorical field, with a HAVING threshold. Falls back to a
/// single-categorical-dimension view with HAVING.
fn filtering(dash: &Dashboard, salt: u64) -> Result<Goal, CoreError> {
    let infos = vis_infos(dash);
    let threshold = 1 + (salt as i64 % 3);

    // Preferred: stat visualization (no dimensions) + pinnable field → the
    // goal is only achievable as a union of per-value fragments.
    for info in &infos {
        if !info.spec.dimensions.is_empty() || info.spec.measures.is_empty() {
            continue;
        }
        if let Some(field) = pinnable_fields(dash, info.node).into_iter().next() {
            let measure = info.base.projections[0].expr.clone();
            let mut query = Select::new(
                info.base.from.clone(),
                vec![
                    SelectItem::bare(Expr::col(field.clone())),
                    SelectItem::bare(measure.clone()),
                ],
            );
            query.group_by = vec![Expr::col(field.clone())];
            query.having = Some(Expr::binary(
                measure.clone(),
                BinOp::Gt,
                Expr::int(threshold),
            ));
            let question = format!(
                "Which {field} have {} greater than {threshold} at any point in time?",
                simba_sql::printer::print_expr(&measure)
            );
            return Ok(Goal::from_sql(GoalTemplateKind::Filtering, question, query));
        }
    }

    // Fallback: a categorical view with a HAVING threshold.
    let candidate = infos
        .iter()
        .find(|i| i.spec.dimensions.len() == 1 && !i.spec.measures.is_empty())
        .or_else(|| {
            infos
                .iter()
                .find(|i| !i.spec.dimensions.is_empty() && !i.spec.measures.is_empty())
        })
        .ok_or_else(|| {
            CoreError::GoalInstantiation("Filtering: no aggregating visualization".into())
        })?;
    let mut query = candidate.base.clone();
    let measure = query
        .projections
        .iter()
        .find(|p| p.expr.contains_aggregate())
        .map(|p| p.expr.clone())
        .expect("measure exists");
    query.having = Some(Expr::binary(measure.clone(), BinOp::Gt, Expr::int(0)));
    let question = format!(
        "Which {} have {} above zero?",
        candidate.spec.dimensions[0].field,
        simba_sql::printer::print_expr(&measure)
    );
    Ok(Goal::from_sql(GoalTemplateKind::Filtering, question, query))
}

/// The correlations goal (Example 2.3): two measures over *distinct*
/// quantitative fields, modulated by the visualization's own dimensions or —
/// for stat visualizations — by a pinnable categorical field (a Figure 3
/// style fragment goal).
fn correlations(dash: &Dashboard, salt: u64) -> Result<Goal, CoreError> {
    let infos = vis_infos(dash);
    let quantitative = |f: &Option<String>| -> Option<String> {
        f.as_ref()
            .filter(|name| {
                dash.graph()
                    .spec
                    .database
                    .field(name)
                    .is_some_and(|fs| fs.role == FieldRole::Quantitative)
            })
            .cloned()
    };

    for info in &infos {
        // Need two measures over two distinct quantitative fields.
        let mut fields_seen: Vec<String> = Vec::new();
        let mut measure_exprs: Vec<Expr> = Vec::new();
        for (i, m) in info.spec.measures.iter().enumerate() {
            if let Some(f) = quantitative(&m.field) {
                if !fields_seen.iter().any(|x| x.eq_ignore_ascii_case(&f)) {
                    fields_seen.push(f);
                    let proj_idx = info.spec.dimensions.len() + i;
                    measure_exprs.push(info.base.projections[proj_idx].expr.clone());
                }
            }
        }
        if fields_seen.len() < 2 {
            continue;
        }
        measure_exprs.truncate(2);

        if !info.spec.dimensions.is_empty() {
            // Modulated by the view's own axes: project dims + two measures.
            let mut query = info.base.clone();
            query.projections = query
                .projections
                .iter()
                .take(info.spec.dimensions.len())
                .cloned()
                .chain(measure_exprs.iter().cloned().map(SelectItem::bare))
                .collect();
            let question = format!(
                "Is there a strong correlation between {} and {}?",
                fields_seen[0], fields_seen[1]
            );
            return Ok(Goal::from_sql(
                GoalTemplateKind::FindingCorrelations,
                question,
                query,
            ));
        }
        // Stat visualization: modulate by a pinnable categorical field.
        if let Some(field) = pinnable_fields(dash, info.node).into_iter().next() {
            let mut query = Select::new(
                info.base.from.clone(),
                std::iter::once(SelectItem::bare(Expr::col(field.clone())))
                    .chain(measure_exprs.iter().cloned().map(SelectItem::bare))
                    .collect(),
            );
            query.group_by = vec![Expr::col(field.clone())];
            let question = format!(
                "Is there a strong correlation between {} and {} across {field}?",
                fields_seen[0], fields_seen[1]
            );
            return Ok(Goal::from_sql(
                GoalTemplateKind::FindingCorrelations,
                question,
                query,
            ));
        }
    }
    let _ = salt;
    Err(CoreError::GoalInstantiation(
        "Finding Correlations: no visualization exposes two distinct quantitative measures".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::builtin::builtin;
    use simba_data::DashboardDataset;

    fn dash(ds: DashboardDataset) -> Dashboard {
        let table = ds.generate_rows(1_000, 5);
        Dashboard::new(builtin(ds), &table).unwrap()
    }

    #[test]
    fn filtering_on_customer_service_is_a_fragment_goal() {
        let d = dash(DashboardDataset::CustomerService);
        let goal = synthesize(GoalTemplateKind::Filtering, &d, 0).unwrap();
        let text = goal.query.to_string();
        assert!(text.contains("GROUP BY queue"), "{text}");
        assert!(text.contains("HAVING"), "{text}");
        assert!(
            text.contains("COUNT(lost_calls)") || text.contains("SUM(abandoned)"),
            "{text}"
        );
    }

    #[test]
    fn correlations_on_customer_service_uses_stat_measures() {
        let d = dash(DashboardDataset::CustomerService);
        let goal = synthesize(GoalTemplateKind::FindingCorrelations, &d, 0).unwrap();
        let text = goal.query.to_string();
        assert!(text.contains("SUM(abandoned)"), "{text}");
        assert!(text.contains("COUNT(calls)"), "{text}");
    }

    #[test]
    fn correlations_rejects_my_ride() {
        let d = dash(DashboardDataset::MyRide);
        assert!(synthesize(GoalTemplateKind::FindingCorrelations, &d, 0).is_err());
    }

    #[test]
    fn temporal_overview_matches_a_visualization_query() {
        let d = dash(DashboardDataset::ItMonitor);
        let goal = synthesize(GoalTemplateKind::ObservingTemporalPatterns, &d, 0).unwrap();
        assert!(goal.query.to_string().contains("HOUR(event_ts)"));
    }

    #[test]
    fn temporal_overview_falls_back_for_my_ride() {
        let d = dash(DashboardDataset::MyRide);
        let goal = synthesize(GoalTemplateKind::ObservingTemporalPatterns, &d, 0).unwrap();
        assert!(goal.query.to_string().contains("route_segment"));
    }

    #[test]
    fn every_template_synthesizes_for_customer_service() {
        let d = dash(DashboardDataset::CustomerService);
        for kind in GoalTemplateKind::ALL {
            let goal = synthesize(kind, &d, 0);
            assert!(goal.is_ok(), "{}: {:?}", kind.name(), goal.err());
        }
    }

    #[test]
    fn salt_varies_pin_values() {
        let d = dash(DashboardDataset::CustomerService);
        let a = synthesize(GoalTemplateKind::MeasuringDifferences, &d, 0).unwrap();
        let b = synthesize(GoalTemplateKind::MeasuringDifferences, &d, 1).unwrap();
        assert_ne!(a.query.to_string(), b.query.to_string());
    }

    #[test]
    fn pinnable_fields_found_through_graph() {
        let d = dash(DashboardDataset::CustomerService);
        let lost = d.graph().node("lost_calls").unwrap();
        let fields = pinnable_fields(&d, lost);
        assert!(fields.iter().any(|f| f == "queue"), "{fields:?}");
    }
}
