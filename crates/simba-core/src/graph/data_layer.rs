//! The Data Layer: rendering visualization nodes as SQL queries (§3.0.3).
//!
//! Each visualization node's query is assembled from its encoding channels
//! (SELECT / GROUP BY) plus the filter predicates contributed by every
//! ancestor component in the interaction graph — the steady-state
//! equivalent of the paper's recursive filter propagation (Example 3.1).

use super::{DashboardState, InteractionGraph, NodeId, NodeKind, NodeState, WidgetState};
use crate::spec::{AggOp, ControlSpec, FieldRole, FieldTransform, VisualizationSpec};
use simba_sql::{Expr, Func, Literal, Select, SelectItem};

/// Build the SQL query for a visualization node under the given state.
///
/// # Panics
/// Panics if `node` is not a visualization (caller bug).
pub fn vis_query(graph: &InteractionGraph, state: &DashboardState, node: NodeId) -> Select {
    let NodeKind::Visualization(vis_idx) = graph.kind(node) else {
        panic!("vis_query called on widget `{}`", graph.id(node));
    };
    let vis = &graph.spec.visualizations[vis_idx];

    let mut select = base_query(&graph.spec.database.table, vis);

    // Gather filter predicates from every ancestor, in node order so the
    // generated SQL is deterministic.
    for anc in graph.ancestors(node) {
        if let Some(pred) = node_predicate(graph, state, anc) {
            select.add_filter(pred);
        }
    }
    select
}

/// The filter predicate a node currently contributes, if any.
pub fn node_predicate(
    graph: &InteractionGraph,
    state: &DashboardState,
    node: NodeId,
) -> Option<Expr> {
    match (graph.kind(node), state.node(node)) {
        (NodeKind::Widget(widx), NodeState::Widget(ws)) => {
            let control = &graph.spec.widgets[widx].control;
            widget_predicate(control, ws, &graph.spec.database)
        }
        (NodeKind::Visualization(vidx), NodeState::VisSelection(selected)) => {
            if selected.is_empty() {
                return None;
            }
            let vis = &graph.spec.visualizations[vidx];
            let field = vis.dimensions.first()?.field.clone();
            Some(Expr::in_strs(&field, selected.iter().cloned()))
        }
        _ => None,
    }
}

fn widget_predicate(
    control: &ControlSpec,
    ws: &WidgetState,
    database: &crate::spec::DatabaseSpec,
) -> Option<Expr> {
    let field = control.field();
    match ws {
        WidgetState::Checkbox { selected } => {
            if selected.is_empty() {
                None
            } else {
                Some(Expr::in_strs(field, selected.iter().cloned()))
            }
        }
        WidgetState::Single { selected } => selected
            .as_ref()
            .map(|v| Expr::binary(Expr::col(field), simba_sql::BinOp::Eq, Expr::str(v.clone()))),
        WidgetState::Range { bounds } => bounds.map(|(lo, hi)| {
            // Integer-typed fields (temporal epochs, int measures) get
            // integer literals so the SQL reads naturally.
            let is_temporal = database
                .field(field)
                .is_some_and(|f| f.role == FieldRole::Temporal);
            let (low, high) = if is_temporal || (lo.fract() == 0.0 && hi.fract() == 0.0) {
                (Literal::Int(lo as i64), Literal::Int(hi as i64))
            } else {
                (Literal::Float(lo), Literal::Float(hi))
            };
            Expr::Between {
                expr: Box::new(Expr::col(field)),
                low: Box::new(Expr::Literal(low)),
                high: Box::new(Expr::Literal(high)),
                negated: false,
            }
        }),
    }
}

/// The visualization's base query (no interactive filters).
pub fn base_query(table: &str, vis: &VisualizationSpec) -> Select {
    let mut projections: Vec<SelectItem> = Vec::new();
    let mut group_by: Vec<Expr> = Vec::new();

    for dim in &vis.dimensions {
        let e = channel_expr(&dim.field, dim.transform);
        projections.push(SelectItem::bare(e.clone()));
        group_by.push(e);
    }
    for m in &vis.measures {
        projections.push(SelectItem::bare(measure_expr(m)));
    }
    for f in &vis.raw_fields {
        projections.push(SelectItem::bare(Expr::col(f.clone())));
    }

    let mut select = Select::new(table, projections);
    if !vis.measures.is_empty() {
        select.group_by = group_by;
    }
    select
}

fn channel_expr(field: &str, transform: Option<FieldTransform>) -> Expr {
    let col = Expr::col(field);
    match transform {
        None => col,
        Some(FieldTransform::Hour) => func1(Func::Hour, col),
        Some(FieldTransform::Day) => func1(Func::Day, col),
        Some(FieldTransform::Month) => func1(Func::Month, col),
        Some(FieldTransform::Year) => func1(Func::Year, col),
        Some(FieldTransform::DayOfWeek) => func1(Func::DayOfWeek, col),
        Some(FieldTransform::Bin { width }) => Expr::Function {
            func: Func::Bin,
            args: vec![col, Expr::int(width)],
            distinct: false,
        },
    }
}

fn func1(f: Func, arg: Expr) -> Expr {
    Expr::Function {
        func: f,
        args: vec![arg],
        distinct: false,
    }
}

fn measure_expr(m: &crate::spec::AggregateChannel) -> Expr {
    let arg = match &m.field {
        Some(f) => Expr::col(f.clone()),
        None => Expr::Wildcard,
    };
    match m.func {
        AggOp::Count => Expr::Function {
            func: Func::Count,
            args: vec![arg],
            distinct: false,
        },
        AggOp::CountDistinct => Expr::Function {
            func: Func::Count,
            args: vec![arg],
            distinct: true,
        },
        AggOp::Sum => Expr::agg(Func::Sum, arg),
        AggOp::Avg => Expr::agg(Func::Avg, arg),
        AggOp::Min => Expr::agg(Func::Min, arg),
        AggOp::Max => Expr::agg(Func::Max, arg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::builtin::builtin;
    use simba_data::DashboardDataset;
    use simba_sql::printer::print_select;
    use std::collections::BTreeSet;

    fn graph() -> InteractionGraph {
        InteractionGraph::from_spec(builtin(DashboardDataset::CustomerService)).unwrap()
    }

    #[test]
    fn lost_calls_base_query_matches_paper() {
        // §3.0.3: "SELECT COUNT(lostCalls) FROM customerService".
        let g = graph();
        let s = g.initial_state();
        let q = vis_query(&g, &s, g.node("lost_calls").unwrap());
        assert_eq!(
            print_select(&q),
            "SELECT COUNT(lost_calls) FROM customer_service"
        );
    }

    #[test]
    fn checkbox_filter_propagates_to_lost_calls() {
        // Example 3.1: checking "queue A" adds `queue IN ('A')` to every
        // downstream query.
        let g = graph();
        let mut s = g.initial_state();
        let checkbox = g.node("queue_checkbox").unwrap();
        if let NodeState::Widget(WidgetState::Checkbox { selected }) = s.node_mut(checkbox) {
            selected.insert("A".into());
        }
        let q = vis_query(&g, &s, g.node("lost_calls").unwrap());
        assert_eq!(
            print_select(&q),
            "SELECT COUNT(lost_calls) FROM customer_service WHERE queue IN ('A')"
        );
    }

    #[test]
    fn grouped_vis_query_shape_matches_figure_2() {
        let g = graph();
        let s = g.initial_state();
        let q = vis_query(&g, &s, g.node("calls_by_queue").unwrap());
        assert_eq!(
            print_select(&q),
            "SELECT queue, hour, call_direction, COUNT(calls) FROM customer_service \
             GROUP BY queue, hour, call_direction"
        );
    }

    #[test]
    fn vis_selection_filters_descendants_not_self() {
        let g = graph();
        let mut s = g.initial_state();
        let rep_vis = g.node("calls_per_rep").unwrap();
        if let NodeState::VisSelection(sel) = s.node_mut(rep_vis) {
            sel.insert("rep_03".into());
        }
        // calls_per_rep itself is not filtered by its own selection...
        let own = vis_query(&g, &s, rep_vis);
        assert!(own.where_clause.is_none(), "{own}");
        // ...but its descendant total_calls_by_hour is.
        let downstream = vis_query(&g, &s, g.node("total_calls_by_hour").unwrap());
        let text = print_select(&downstream);
        assert!(text.contains("rep_id IN ('rep_03')"), "{text}");
    }

    #[test]
    fn range_filter_on_temporal_uses_integer_literals() {
        let g = graph();
        let mut s = g.initial_state();
        let slider = g.node("hour_slider").unwrap();
        *s.node_mut(slider) = NodeState::Widget(WidgetState::Range {
            bounds: Some((9.0, 17.0)),
        });
        let q = vis_query(&g, &s, g.node("abandon_rate").unwrap());
        let text = print_select(&q);
        assert!(text.contains("hour BETWEEN 9 AND 17"), "{text}");
    }

    #[test]
    fn multiple_filters_conjoin() {
        let g = graph();
        let mut s = g.initial_state();
        let checkbox = g.node("queue_checkbox").unwrap();
        let slider = g.node("hour_slider").unwrap();
        if let NodeState::Widget(WidgetState::Checkbox { selected }) = s.node_mut(checkbox) {
            selected.extend(["A".to_string(), "B".to_string()]);
        }
        *s.node_mut(slider) = NodeState::Widget(WidgetState::Range {
            bounds: Some((8.0, 12.0)),
        });
        let q = vis_query(&g, &s, g.node("total_calls_by_hour").unwrap());
        assert_eq!(q.filters().len(), 2, "{q}");
    }

    #[test]
    fn scatter_uses_raw_fields_without_grouping() {
        let g = InteractionGraph::from_spec(builtin(DashboardDataset::SupplyChain)).unwrap();
        let s = g.initial_state();
        let q = vis_query(&g, &s, g.node("discount_vs_revenue").unwrap());
        assert!(q.group_by.is_empty());
        assert!(print_select(&q).starts_with("SELECT discount, total_revenue, unit_price"));
    }

    #[test]
    fn empty_checkbox_contributes_no_filter() {
        let g = graph();
        let s = g.initial_state();
        let pred = node_predicate(&g, &s, g.node("queue_checkbox").unwrap());
        assert!(pred.is_none());
    }

    #[test]
    fn selection_state_produces_in_predicate() {
        let g = graph();
        let mut s = g.initial_state();
        let vis = g.node("calls_by_queue").unwrap();
        *s.node_mut(vis) = NodeState::VisSelection(BTreeSet::from(["A".to_string()]));
        let pred = node_predicate(&g, &s, vis).unwrap();
        assert_eq!(pred.to_string(), "queue IN ('A')");
    }
}
