//! The interaction graph: the paper's joint representation of dashboard
//! state (§3.0.2).
//!
//! Nodes are visualizations and interaction widgets; a directed edge runs
//! from a source component to every component it updates. The **Interaction
//! Layer** is the graph plus per-node interaction state
//! ([`DashboardState`]); the **Data Layer** ([`data_layer`]) renders each
//! visualization node's state as a SQL query.

pub mod data_layer;

use crate::error::CoreError;
use crate::spec::{validate::validate, DashboardSpec};
use std::collections::{BTreeSet, HashMap};

/// Index of a node in the interaction graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Index into `spec.visualizations`.
    Visualization(usize),
    /// Index into `spec.widgets`.
    Widget(usize),
}

/// The interaction layer graph built from a dashboard specification.
#[derive(Debug, Clone)]
pub struct InteractionGraph {
    pub spec: DashboardSpec,
    kinds: Vec<NodeKind>,
    ids: Vec<String>,
    out_edges: Vec<Vec<usize>>,
    in_edges: Vec<Vec<usize>>,
    by_id: HashMap<String, usize>,
}

impl InteractionGraph {
    /// Build (and validate) the graph from a specification.
    pub fn from_spec(spec: DashboardSpec) -> Result<Self, CoreError> {
        validate(&spec)?;
        let n = spec.visualizations.len() + spec.widgets.len();
        let mut kinds = Vec::with_capacity(n);
        let mut ids = Vec::with_capacity(n);
        let mut by_id = HashMap::with_capacity(n);
        for (i, v) in spec.visualizations.iter().enumerate() {
            by_id.insert(v.id.to_ascii_lowercase(), kinds.len());
            kinds.push(NodeKind::Visualization(i));
            ids.push(v.id.clone());
        }
        for (i, w) in spec.widgets.iter().enumerate() {
            by_id.insert(w.id.to_ascii_lowercase(), kinds.len());
            kinds.push(NodeKind::Widget(i));
            ids.push(w.id.clone());
        }
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        for l in &spec.links {
            let s = by_id[&l.source.to_ascii_lowercase()];
            let t = by_id[&l.target.to_ascii_lowercase()];
            if !out_edges[s].contains(&t) {
                out_edges[s].push(t);
                in_edges[t].push(s);
            }
        }
        Ok(Self {
            spec,
            kinds,
            ids,
            out_edges,
            in_edges,
            by_id,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    /// Kind of a node.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.0]
    }

    /// String id of a node.
    pub fn id(&self, node: NodeId) -> &str {
        &self.ids[node.0]
    }

    /// Look up a node by its string id (case-insensitive).
    pub fn node(&self, id: &str) -> Option<NodeId> {
        self.by_id
            .get(&id.to_ascii_lowercase())
            .copied()
            .map(NodeId)
    }

    /// All visualization nodes.
    pub fn visualization_nodes(&self) -> Vec<NodeId> {
        (0..self.kinds.len())
            .filter(|&i| matches!(self.kinds[i], NodeKind::Visualization(_)))
            .map(NodeId)
            .collect()
    }

    /// All widget nodes.
    pub fn widget_nodes(&self) -> Vec<NodeId> {
        (0..self.kinds.len())
            .filter(|&i| matches!(self.kinds[i], NodeKind::Widget(_)))
            .map(NodeId)
            .collect()
    }

    /// Nodes reachable from `node` by following outbound edges (excluding
    /// the node itself) — the components an interaction must refresh
    /// (§3.0.3's recursive filter propagation).
    pub fn descendants(&self, node: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.kinds.len()];
        let mut stack = self.out_edges[node.0].clone();
        let mut out = Vec::new();
        while let Some(i) = stack.pop() {
            if seen[i] {
                continue;
            }
            seen[i] = true;
            out.push(NodeId(i));
            stack.extend(&self.out_edges[i]);
        }
        out.sort();
        out
    }

    /// Nodes with a directed path *to* `node` — the components whose state
    /// filters this node's query.
    pub fn ancestors(&self, node: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.kinds.len()];
        let mut stack = self.in_edges[node.0].clone();
        let mut out = Vec::new();
        while let Some(i) = stack.pop() {
            if seen[i] {
                continue;
            }
            seen[i] = true;
            out.push(NodeId(i));
            stack.extend(&self.in_edges[i]);
        }
        out.sort();
        out
    }

    /// Direct out-degree of a node.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_edges[node.0].len()
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.out_edges.iter().map(Vec::len).sum()
    }

    /// The fresh (no interactions yet) dashboard state.
    pub fn initial_state(&self) -> DashboardState {
        let states = self
            .kinds
            .iter()
            .map(|k| match k {
                NodeKind::Visualization(_) => NodeState::VisSelection(BTreeSet::new()),
                NodeKind::Widget(i) => {
                    NodeState::Widget(WidgetState::empty(&self.spec.widgets[*i].control))
                }
            })
            .collect();
        DashboardState { states }
    }
}

/// Interaction state of one widget.
#[derive(Debug, Clone, PartialEq)]
pub enum WidgetState {
    /// Checkbox: set of checked categories (empty = no filter).
    Checkbox { selected: BTreeSet<String> },
    /// Radio/dropdown: at most one selected category.
    Single { selected: Option<String> },
    /// Range slider / date range: active bounds (inclusive), or none.
    Range { bounds: Option<(f64, f64)> },
}

impl WidgetState {
    /// The empty (unfiltered) state for a control.
    pub fn empty(control: &crate::spec::ControlSpec) -> WidgetState {
        use crate::spec::ControlSpec::*;
        match control {
            Checkbox { .. } => WidgetState::Checkbox {
                selected: BTreeSet::new(),
            },
            Radio { .. } | Dropdown { .. } => WidgetState::Single { selected: None },
            RangeSlider { .. } | DateRange { .. } => WidgetState::Range { bounds: None },
        }
    }

    /// Does the widget currently impose a filter?
    pub fn is_active(&self) -> bool {
        match self {
            WidgetState::Checkbox { selected } => !selected.is_empty(),
            WidgetState::Single { selected } => selected.is_some(),
            WidgetState::Range { bounds } => bounds.is_some(),
        }
    }
}

impl std::hash::Hash for WidgetState {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            WidgetState::Checkbox { selected } => {
                0u8.hash(state);
                for s in selected {
                    s.hash(state);
                }
            }
            WidgetState::Single { selected } => {
                1u8.hash(state);
                selected.hash(state);
            }
            WidgetState::Range { bounds } => {
                2u8.hash(state);
                if let Some((lo, hi)) = bounds {
                    lo.to_bits().hash(state);
                    hi.to_bits().hash(state);
                }
            }
        }
    }
}

impl Eq for WidgetState {}

/// Interaction state of one node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeState {
    Widget(WidgetState),
    /// Mark selection on a visualization's primary dimension.
    VisSelection(BTreeSet<String>),
}

/// The complete interaction-layer state: one entry per graph node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DashboardState {
    states: Vec<NodeState>,
}

impl DashboardState {
    /// State of one node.
    pub fn node(&self, node: NodeId) -> &NodeState {
        &self.states[node.0]
    }

    /// Mutable state of one node.
    pub fn node_mut(&mut self, node: NodeId) -> &mut NodeState {
        &mut self.states[node.0]
    }

    /// Number of active (filtering) components.
    pub fn active_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| match s {
                NodeState::Widget(w) => w.is_active(),
                NodeState::VisSelection(sel) => !sel.is_empty(),
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::builtin::{all_builtin, builtin};
    use simba_data::DashboardDataset;

    fn cs_graph() -> InteractionGraph {
        InteractionGraph::from_spec(builtin(DashboardDataset::CustomerService)).unwrap()
    }

    #[test]
    fn builds_all_builtin_graphs() {
        for spec in all_builtin() {
            let name = spec.name.clone();
            let g = InteractionGraph::from_spec(spec).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(g.node_count() > 0);
            assert!(g.edge_count() > 0);
        }
    }

    #[test]
    fn checkbox_reaches_all_five_visualizations() {
        let g = cs_graph();
        let checkbox = g.node("queue_checkbox").unwrap();
        let desc = g.descendants(checkbox);
        let vis_count = desc
            .iter()
            .filter(|n| matches!(g.kind(**n), NodeKind::Visualization(_)))
            .count();
        assert_eq!(
            vis_count, 5,
            "Figure 2A: checkbox updates all five visualizations"
        );
    }

    #[test]
    fn ancestors_include_transitive_sources() {
        let g = cs_graph();
        // total_calls_by_hour <- calls_per_rep <- {queue_checkbox, ...}
        let total = g.node("total_calls_by_hour").unwrap();
        let anc = g.ancestors(total);
        assert!(anc.contains(&g.node("calls_per_rep").unwrap()));
        assert!(anc.contains(&g.node("queue_checkbox").unwrap()));
    }

    #[test]
    fn node_lookup_case_insensitive() {
        let g = cs_graph();
        assert_eq!(g.node("QUEUE_CHECKBOX"), g.node("queue_checkbox"));
        assert!(g.node("nope").is_none());
    }

    #[test]
    fn initial_state_has_no_active_filters() {
        let g = cs_graph();
        let s = g.initial_state();
        assert_eq!(s.active_count(), 0);
    }

    #[test]
    fn state_hash_distinguishes_checkbox_selections() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let g = cs_graph();
        let checkbox = g.node("queue_checkbox").unwrap();
        let mut s1 = g.initial_state();
        let s0 = s1.clone();
        if let NodeState::Widget(WidgetState::Checkbox { selected }) = s1.node_mut(checkbox) {
            selected.insert("A".into());
        }
        let h = |s: &DashboardState| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_ne!(h(&s0), h(&s1));
        assert_ne!(s0, s1);
    }

    #[test]
    fn descendants_are_deduplicated_and_sorted() {
        let g = cs_graph();
        let checkbox = g.node("queue_checkbox").unwrap();
        let desc = g.descendants(checkbox);
        let mut sorted = desc.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(desc, sorted);
    }
}
