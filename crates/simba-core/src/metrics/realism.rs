//! The realism probe: quantifying what the paper's user-study experts keyed
//! on (§6.4).
//!
//! Experts identified SIMBA logs by "repeatedly emitted SQL queries
//! returning zero results" — an artifact of the Markov phase; human analysts
//! "would rarely repeat this error in the same session". This module
//! computes those statistics from session logs, plus the binomial test the
//! paper applies to the experts' 6/12 guesses.

use crate::session::{ModelChoice, SessionLog};

/// Zero-result statistics of one session log.
#[derive(Debug, Clone, PartialEq)]
pub struct EmptyResultStats {
    pub total_queries: usize,
    pub empty_queries: usize,
    /// Longest run of consecutive zero-result queries.
    pub longest_empty_run: usize,
    /// Number of interactions *all of whose* queries returned zero rows —
    /// the "interaction produced an empty visualization" events the experts
    /// counted.
    pub empty_interactions: usize,
    /// Empty interactions produced by the Markov model specifically.
    pub markov_empty_interactions: usize,
    /// Empty interactions produced by the Oracle.
    pub oracle_empty_interactions: usize,
}

impl EmptyResultStats {
    /// Fraction of queries returning zero rows.
    pub fn empty_fraction(&self) -> f64 {
        if self.total_queries == 0 {
            0.0
        } else {
            self.empty_queries as f64 / self.total_queries as f64
        }
    }

    /// The expert heuristic: does the log look machine-generated? Humans
    /// occasionally hit an empty view but rarely *repeat* it, so a run of
    /// 2+ consecutive empty-result interactions is the tell.
    pub fn looks_simulated(&self) -> bool {
        self.longest_empty_run >= 3 || self.empty_interactions >= 3
    }
}

/// Compute zero-result statistics for a session log.
pub fn empty_result_stats(log: &SessionLog) -> EmptyResultStats {
    let mut total = 0usize;
    let mut empty = 0usize;
    let mut longest_run = 0usize;
    let mut current_run = 0usize;
    let mut empty_interactions = 0usize;
    let mut markov_empty = 0usize;
    let mut oracle_empty = 0usize;

    for entry in &log.entries {
        for q in &entry.queries {
            total += 1;
            if q.is_empty() {
                empty += 1;
                current_run += 1;
                longest_run = longest_run.max(current_run);
            } else {
                current_run = 0;
            }
        }
        if !entry.queries.is_empty() && entry.queries.iter().all(|q| q.is_empty()) {
            empty_interactions += 1;
            match entry.model {
                ModelChoice::Markov => markov_empty += 1,
                ModelChoice::Oracle => oracle_empty += 1,
                ModelChoice::InitialRender => {}
            }
        }
    }

    EmptyResultStats {
        total_queries: total,
        empty_queries: empty,
        longest_empty_run: longest_run,
        empty_interactions,
        markov_empty_interactions: markov_empty,
        oracle_empty_interactions: oracle_empty,
    }
}

/// Exact binomial tail probability `P(X ≥ k)` for `X ~ Binomial(n, p)` —
/// the test the paper uses on expert guesses ("the probability of 7 or more
/// successes is 38.7%").
pub fn binomial_tail(n: u64, k: u64, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    let mut tail = 0.0;
    for i in k..=n {
        tail += binomial_pmf(n, i, p);
    }
    tail.min(1.0)
}

fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    // ln C(n, k) via lgamma-free accumulation (n is small in our use).
    let mut ln_c = 0.0f64;
    for i in 0..k {
        ln_c += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    (ln_c + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{LogEntry, QueryRecord, SessionLog};
    use std::time::Duration;

    fn record(rows: usize) -> QueryRecord {
        QueryRecord {
            vis: "v".into(),
            sql: "SELECT 1 FROM t".into(),
            duration: Duration::from_millis(1),
            rows,
        }
    }

    fn entry(step: usize, model: ModelChoice, rows: &[usize]) -> LogEntry {
        LogEntry {
            step,
            model,
            action: "a".into(),
            action_kind: None,
            queries: rows.iter().map(|r| record(*r)).collect(),
        }
    }

    fn log(entries: Vec<LogEntry>) -> SessionLog {
        SessionLog {
            dashboard: "d".into(),
            engine: "e".into(),
            seed: 0,
            entries,
            goals: vec![],
        }
    }

    #[test]
    fn counts_empty_queries_and_runs() {
        let l = log(vec![
            entry(0, ModelChoice::InitialRender, &[5, 3]),
            entry(1, ModelChoice::Markov, &[0, 0]),
            entry(2, ModelChoice::Markov, &[0]),
            entry(3, ModelChoice::Oracle, &[7]),
        ]);
        let s = empty_result_stats(&l);
        assert_eq!(s.total_queries, 6);
        assert_eq!(s.empty_queries, 3);
        assert_eq!(s.longest_empty_run, 3);
        assert_eq!(s.empty_interactions, 2);
        assert_eq!(s.markov_empty_interactions, 2);
        assert_eq!(s.oracle_empty_interactions, 0);
        assert!(s.looks_simulated());
    }

    #[test]
    fn human_like_log_does_not_look_simulated() {
        let l = log(vec![
            entry(0, ModelChoice::InitialRender, &[5]),
            entry(1, ModelChoice::Markov, &[0]),
            entry(2, ModelChoice::Oracle, &[4]),
            entry(3, ModelChoice::Oracle, &[2]),
        ]);
        let s = empty_result_stats(&l);
        assert_eq!(s.empty_interactions, 1);
        assert!(!s.looks_simulated());
    }

    #[test]
    fn binomial_matches_paper_number() {
        // §6.4: "the probability of 7 or more successes [out of 12 at
        // p=0.5] is 38.7%".
        let p = binomial_tail(12, 7, 0.5);
        assert!((p - 0.387).abs() < 0.005, "got {p}");
    }

    #[test]
    fn binomial_edge_cases() {
        assert!((binomial_tail(10, 0, 0.5) - 1.0).abs() < 1e-12);
        assert_eq!(binomial_tail(10, 11, 0.5), 0.0);
        assert!((binomial_tail(1, 1, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_fraction_handles_zero_queries() {
        let s = empty_result_stats(&log(vec![]));
        assert_eq!(s.empty_fraction(), 0.0);
    }
}
