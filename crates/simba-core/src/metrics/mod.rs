//! Evaluation metrics (§6.2.5 and §6.3–6.4 of the paper).
//!
//! * [`DurationSummary`] — the query-duration statistics behind Figures 7
//!   and 8.
//! * [`QueryShape`] / [`WorkloadStats`] — the per-query workload-shape
//!   counters of Table 4 (data columns, aggregated columns, filters).
//! * [`realism`] — the §6.4 probe: zero-result query analysis and the
//!   binomial test applied to expert guesses.

pub mod realism;

use simba_sql::Select;
use std::time::Duration;

/// Summary statistics over a set of query durations.
#[derive(Debug, Clone, PartialEq)]
pub struct DurationSummary {
    pub count: usize,
    pub mean_ms: f64,
    pub std_ms: f64,
    pub min_ms: f64,
    pub p25_ms: f64,
    pub p50_ms: f64,
    pub p75_ms: f64,
    pub p95_ms: f64,
    pub max_ms: f64,
}

impl DurationSummary {
    /// Compute the summary; `None` for an empty input.
    pub fn from_durations(durations: &[Duration]) -> Option<DurationSummary> {
        if durations.is_empty() {
            return None;
        }
        let mut ms: Vec<f64> = durations.iter().map(|d| d.as_secs_f64() * 1e3).collect();
        ms.sort_by(f64::total_cmp);
        let count = ms.len();
        let mean = ms.iter().sum::<f64>() / count as f64;
        let var = ms.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        Some(DurationSummary {
            count,
            mean_ms: mean,
            std_ms: var.sqrt(),
            min_ms: ms[0],
            p25_ms: percentile(&ms, 0.25),
            p50_ms: percentile(&ms, 0.50),
            p75_ms: percentile(&ms, 0.75),
            p95_ms: percentile(&ms, 0.95),
            max_ms: ms[count - 1],
        })
    }

    /// Inter-quartile range (the box height in Figure 7).
    pub fn iqr_ms(&self) -> f64 {
        self.p75_ms - self.p25_ms
    }
}

/// Linear-interpolated percentile of a sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Table 4's per-query shape counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryShape {
    /// Categorical and quantitative data columns retrieved un-aggregated
    /// (projection + grouping columns).
    pub data_columns: usize,
    /// Aggregated output columns.
    pub aggregated_columns: usize,
    /// WHERE-clause filter conjuncts.
    pub filters: usize,
}

/// Compute a query's shape counters.
pub fn query_shape(q: &Select) -> QueryShape {
    let mut data_cols = std::collections::HashSet::new();
    let mut aggregated = 0usize;
    for item in &q.projections {
        if item.expr.contains_aggregate() {
            aggregated += 1;
        } else {
            for c in item.expr.referenced_columns() {
                data_cols.insert(c.to_ascii_lowercase());
            }
        }
    }
    for g in &q.group_by {
        for c in g.referenced_columns() {
            data_cols.insert(c.to_ascii_lowercase());
        }
    }
    QueryShape {
        data_columns: data_cols.len(),
        aggregated_columns: aggregated,
        filters: q.filters().len(),
    }
}

/// Mean-and-deviation aggregate of query shapes (one Table 4 row).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    pub queries: usize,
    pub data_columns_avg: f64,
    pub data_columns_std: f64,
    pub aggregated_avg: f64,
    pub aggregated_std: f64,
    pub filters_avg: f64,
    pub filters_std: f64,
}

impl WorkloadStats {
    /// Aggregate shapes into Table 4-style statistics; `None` when empty.
    pub fn from_shapes(shapes: &[QueryShape]) -> Option<WorkloadStats> {
        if shapes.is_empty() {
            return None;
        }
        let n = shapes.len() as f64;
        let stats = |extract: fn(&QueryShape) -> usize| -> (f64, f64) {
            let mean = shapes.iter().map(|s| extract(s) as f64).sum::<f64>() / n;
            let var = shapes
                .iter()
                .map(|s| (extract(s) as f64 - mean).powi(2))
                .sum::<f64>()
                / n;
            (mean, var.sqrt())
        };
        let (dc_avg, dc_std) = stats(|s| s.data_columns);
        let (ag_avg, ag_std) = stats(|s| s.aggregated_columns);
        let (f_avg, f_std) = stats(|s| s.filters);
        Some(WorkloadStats {
            queries: shapes.len(),
            data_columns_avg: dc_avg,
            data_columns_std: dc_std,
            aggregated_avg: ag_avg,
            aggregated_std: ag_std,
            filters_avg: f_avg,
            filters_std: f_std,
        })
    }

    /// Shapes of every query in a session log.
    pub fn from_log(log: &crate::session::SessionLog) -> Option<WorkloadStats> {
        let shapes: Vec<QueryShape> = log
            .queries()
            .filter_map(|q| simba_sql::parse_select(&q.sql).ok())
            .map(|q| query_shape(&q))
            .collect();
        Self::from_shapes(&shapes)
    }
}

/// Response-rate metric (§6.2.5's alternative metric): the fraction of
/// queries answered within an interactivity threshold. The paper notes
/// thresholds "must be tailored to the specific requirements of the target
/// dashboard(s)", so the threshold is a parameter.
pub fn response_rate(durations: &[Duration], threshold: Duration) -> f64 {
    if durations.is_empty() {
        return 1.0;
    }
    durations.iter().filter(|d| **d <= threshold).count() as f64 / durations.len() as f64
}

/// The 100 ms interactivity bar used throughout the latency literature the
/// paper cites (Liu & Heer's "effects of interactive latency").
pub const INTERACTIVE_THRESHOLD: Duration = Duration::from_millis(100);

#[cfg(test)]
mod tests {
    use super::*;
    use simba_sql::parse_select;

    #[test]
    fn response_rate_counts_threshold() {
        let ds = [
            Duration::from_millis(10),
            Duration::from_millis(90),
            Duration::from_millis(150),
            Duration::from_millis(400),
        ];
        assert!((response_rate(&ds, INTERACTIVE_THRESHOLD) - 0.5).abs() < 1e-12);
        assert_eq!(response_rate(&[], INTERACTIVE_THRESHOLD), 1.0);
        assert_eq!(response_rate(&ds, Duration::from_secs(1)), 1.0);
    }

    fn shape(sql: &str) -> QueryShape {
        query_shape(&parse_select(sql).unwrap())
    }

    #[test]
    fn shape_counts_figure_2_query() {
        // SELECT queue, hour, callDirection, COUNT(calls) ... WHERE queue IN ('A')
        let s = shape(
            "SELECT queue, hour, callDirection, COUNT(calls) FROM cs \
             WHERE queue IN ('A') GROUP BY queue, hour, callDirection",
        );
        assert_eq!(s.data_columns, 3);
        assert_eq!(s.aggregated_columns, 1);
        assert_eq!(s.filters, 1);
    }

    #[test]
    fn shape_counts_multi_filter() {
        let s = shape("SELECT COUNT(*) FROM t WHERE a = 1 AND b > 2 AND c IN ('x')");
        assert_eq!(s.data_columns, 0);
        assert_eq!(s.aggregated_columns, 1);
        assert_eq!(s.filters, 3);
    }

    #[test]
    fn shape_deduplicates_projection_and_group_columns() {
        let s = shape("SELECT q, SUM(x) FROM t GROUP BY q");
        assert_eq!(s.data_columns, 1);
    }

    #[test]
    fn duration_summary_basic() {
        let ds: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let s = DurationSummary::from_durations(&ds).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        assert!((s.p50_ms - 50.5).abs() < 1.0);
        assert_eq!(s.min_ms, 1.0);
        assert_eq!(s.max_ms, 100.0);
        assert!(s.iqr_ms() > 0.0);
    }

    #[test]
    fn duration_summary_empty_is_none() {
        assert!(DurationSummary::from_durations(&[]).is_none());
    }

    #[test]
    fn duration_summary_single_value() {
        let s = DurationSummary::from_durations(&[Duration::from_millis(5)]).unwrap();
        assert_eq!(s.p50_ms, 5.0);
        assert_eq!(s.std_ms, 0.0);
    }

    #[test]
    fn workload_stats_mean_and_std() {
        let shapes = vec![
            QueryShape {
                data_columns: 1,
                aggregated_columns: 1,
                filters: 1,
            },
            QueryShape {
                data_columns: 3,
                aggregated_columns: 1,
                filters: 3,
            },
        ];
        let w = WorkloadStats::from_shapes(&shapes).unwrap();
        assert_eq!(w.queries, 2);
        assert!((w.data_columns_avg - 2.0).abs() < 1e-9);
        assert!((w.data_columns_std - 1.0).abs() < 1e-9);
        assert!((w.aggregated_std - 0.0).abs() < 1e-9);
        assert!((w.filters_avg - 2.0).abs() < 1e-9);
    }

    #[test]
    fn workload_stats_empty_is_none() {
        assert!(WorkloadStats::from_shapes(&[]).is_none());
    }
}
