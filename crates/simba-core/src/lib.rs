//! # SIMBA: a SImulation-BAsed benchmark for interactive data exploration
//!
//! Reproduction of "An Adaptive Benchmark for Modeling User Exploration of
//! Large Datasets" (SIGMOD 2025). SIMBA simulates how an analyst explores a
//! *developer-specified dashboard* in pursuit of *analysis goals*, and
//! measures DBMS performance on the SQL workload those interactions emit.
//!
//! The crate mirrors the paper's architecture:
//!
//! * [`algebra`] — the goal algebra (§2), its six reusable templates
//!   (Table 2), and translation to SQL goal queries.
//! * [`spec`] — the JSON dashboard specification language (§3.0.1) and the
//!   six built-in dashboards from the evaluation (Figure 6).
//! * [`graph`] — the interaction graph joining the Interaction Layer and
//!   Data Layer (§3.0.2–3.0.3).
//! * [`actions`] — allowable data manipulations and their enumeration.
//! * [`equivalence`] — syntactic / semantic / result equivalence between
//!   emitted queries and goal queries (§4.1.2).
//! * [`oracle`] — the goal-directed LookAhead planner (§4.1, Algorithm 1).
//! * [`markov`] — the stochastic open-ended exploration model (§4.2).
//! * [`session`] — interleaving of the two models with exponential decay
//!   (§4.3), workflows, and the session runner producing logs.
//! * [`metrics`] — query-duration summaries, workload-shape statistics
//!   (Table 4), and the realism probe (§6.4).

pub mod actions;
pub mod algebra;
pub mod dashboard;
pub mod equivalence;
pub mod error;
pub mod graph;
pub mod interface;
pub mod markov;
pub mod metrics;
pub mod oracle;
pub mod session;
pub mod spec;

pub use actions::{Action, ActionKind, FieldDomains};
pub use algebra::templates::{FieldChoice, Goal, GoalTemplateKind};
pub use algebra::{parse::parse_goal, GoalExpr};
pub use dashboard::Dashboard;
pub use error::CoreError;
pub use graph::{DashboardState, InteractionGraph, NodeId};
pub use interface::InterfaceAction;
pub use spec::DashboardSpec;
