//! The open-ended exploration model: a Markov chain over interaction types
//! (§4.2 of the paper), extending IDEBench's stochastic simulation.
//!
//! The chain picks the *kind* of the next interaction given the previous
//! one; the concrete widget and its parameters are then filled in with
//! uniform probabilities ("users can only perform one click at a time", so
//! parameters are manipulated serially). A library of preset transition
//! matrices is provided, including the IDEBench defaults.

use crate::actions::{Action, ActionKind};
use crate::dashboard::Dashboard;
use crate::graph::DashboardState;
use rand::seq::SliceRandom;
use rand::Rng;

const N: usize = ActionKind::ALL.len();

/// A first-order Markov model over [`ActionKind`]s.
#[derive(Debug, Clone)]
pub struct MarkovModel {
    /// Preset name, for logs.
    pub name: &'static str,
    /// Initial distribution over kinds.
    initial: [f64; N],
    /// Row-stochastic transition matrix: `matrix[from][to]`.
    matrix: [[f64; N]; N],
}

impl MarkovModel {
    /// Build a model from raw weights (rows are normalized on use; rows that
    /// sum to zero fall back to the initial distribution).
    pub fn new(name: &'static str, initial: [f64; N], matrix: [[f64; N]; N]) -> Self {
        Self {
            name,
            initial,
            matrix,
        }
    }

    /// The IDEBench default mix: filter-widget heavy, occasional highlight,
    /// rare resets (Eichmann et al.'s default action probabilities adapted
    /// to our widget taxonomy).
    pub fn idebench_default() -> Self {
        // Kind order: Checkbox, Radio, Dropdown, Range, MarkSelect, Clear, Reset.
        let initial = [0.30, 0.12, 0.14, 0.22, 0.16, 0.04, 0.02];
        let matrix = [
            // From Checkbox: often keep refining the same control family.
            [0.42, 0.08, 0.10, 0.16, 0.16, 0.06, 0.02],
            // From Radio.
            [0.18, 0.26, 0.12, 0.16, 0.18, 0.08, 0.02],
            // From Dropdown.
            [0.16, 0.10, 0.30, 0.16, 0.18, 0.08, 0.02],
            // From Range: brushing tends to continue.
            [0.12, 0.06, 0.08, 0.48, 0.16, 0.08, 0.02],
            // From MarkSelect: follow a highlight with filters.
            [0.22, 0.10, 0.12, 0.18, 0.28, 0.08, 0.02],
            // From Clear: start something new.
            [0.26, 0.12, 0.16, 0.22, 0.18, 0.02, 0.04],
            // From Reset.
            [0.30, 0.12, 0.14, 0.22, 0.16, 0.04, 0.02],
        ];
        Self::new("idebench-default", initial, matrix)
    }

    /// Uniform over kinds (maximum-entropy baseline).
    pub fn uniform() -> Self {
        let u = 1.0 / N as f64;
        Self::new("uniform", [u; N], [[u; N]; N])
    }

    /// Brushing-and-linking heavy (crossfilter-style sessions).
    pub fn brush_heavy() -> Self {
        let initial = [0.10, 0.05, 0.05, 0.55, 0.20, 0.04, 0.01];
        let mut matrix = [[0.0; N]; N];
        matrix.fill([0.08, 0.04, 0.04, 0.58, 0.18, 0.06, 0.02]);
        Self::new("brush-heavy", initial, matrix)
    }

    /// Drill-down heavy: mark selections and single-select filters.
    pub fn drilldown() -> Self {
        let initial = [0.12, 0.18, 0.18, 0.08, 0.38, 0.05, 0.01];
        let mut matrix = [[0.0; N]; N];
        matrix.fill([0.10, 0.16, 0.16, 0.08, 0.40, 0.08, 0.02]);
        Self::new("drilldown", initial, matrix)
    }

    /// All presets (the paper's "library of pre-set transition
    /// probabilities").
    pub fn presets() -> Vec<MarkovModel> {
        vec![
            Self::idebench_default(),
            Self::uniform(),
            Self::brush_heavy(),
            Self::drilldown(),
        ]
    }

    /// Look up a preset by its stable name (`"idebench-default"`,
    /// `"uniform"`, `"brush-heavy"`, `"drilldown"`), for declarative
    /// workload specs that reference models as data.
    pub fn preset(name: &str) -> Option<MarkovModel> {
        Self::presets()
            .into_iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
    }

    /// Sample the next interaction kind given the previous one.
    pub fn next_kind(&self, prev: Option<ActionKind>, rng: &mut impl Rng) -> ActionKind {
        let row = match prev {
            None => &self.initial,
            Some(k) => {
                let idx = ActionKind::ALL
                    .iter()
                    .position(|a| *a == k)
                    .expect("known kind");
                let row = &self.matrix[idx];
                if row.iter().sum::<f64>() <= 0.0 {
                    &self.initial
                } else {
                    row
                }
            }
        };
        let total: f64 = row.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            // The initial distribution itself (the documented fallback for
            // zero-sum rows) can be all-zero; `gen_range(0.0..0.0)` panics,
            // so degrade to uniform instead.
            return ActionKind::ALL[rng.gen_range(0..N)];
        }
        let mut x = rng.gen_range(0.0..total);
        for (i, w) in row.iter().enumerate() {
            if x < *w {
                return ActionKind::ALL[i];
            }
            x -= w;
        }
        ActionKind::ALL[N - 1]
    }

    /// Pick the next concrete action: sample a kind, then choose uniformly
    /// among the applicable actions of that kind (falling back to any
    /// applicable action when the sampled kind has none — e.g. `Clear` in a
    /// pristine dashboard).
    pub fn pick_action(
        &self,
        dashboard: &Dashboard,
        state: &DashboardState,
        prev: Option<ActionKind>,
        rng: &mut impl Rng,
    ) -> Option<Action> {
        let actions = dashboard.applicable_actions(state);
        if actions.is_empty() {
            return None;
        }
        let graph = dashboard.graph();
        // A few attempts to honor the sampled kind before falling back.
        for _ in 0..4 {
            let kind = self.next_kind(prev, rng);
            let of_kind: Vec<&Action> = actions.iter().filter(|a| a.kind(graph) == kind).collect();
            if let Some(action) = of_kind.choose(rng) {
                return Some((*action).clone());
            }
        }
        actions.choose(rng).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::builtin::builtin;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use simba_data::DashboardDataset;

    fn dashboard() -> Dashboard {
        let ds = DashboardDataset::CustomerService;
        let table = ds.generate_rows(500, 4);
        Dashboard::new(builtin(ds), &table).unwrap()
    }

    #[test]
    fn presets_rows_are_distributions() {
        for model in MarkovModel::presets() {
            let total: f64 = model.initial.iter().sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{} initial sums to {total}",
                model.name
            );
            for (i, row) in model.matrix.iter().enumerate() {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "{} row {i} sums to {s}", model.name);
            }
        }
    }

    #[test]
    fn next_kind_follows_transition_weights() {
        let model = MarkovModel::brush_heavy();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut range_count = 0;
        for _ in 0..2_000 {
            if model.next_kind(Some(ActionKind::Checkbox), &mut rng) == ActionKind::Range {
                range_count += 1;
            }
        }
        // brush_heavy sends ~58% of transitions to Range.
        assert!((1000..1400).contains(&range_count), "{range_count}");
    }

    #[test]
    fn zero_sum_model_falls_back_to_uniform_instead_of_panicking() {
        // Every row — including the initial distribution — is all-zero, so
        // the documented fallback row is itself unsampleable.
        let model = MarkovModel::new("all-zero", [0.0; N], [[0.0; N]; N]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            seen.insert(model.next_kind(None, &mut rng));
            seen.insert(model.next_kind(Some(ActionKind::Range), &mut rng));
        }
        // Uniform fallback reaches every kind.
        assert_eq!(seen.len(), N, "uniform fallback should cover all kinds");
    }

    #[test]
    fn zero_sum_row_with_valid_initial_uses_initial() {
        // One dead row, but a usable initial distribution: the fallback must
        // sample from `initial`, never panic.
        let mut matrix = [[0.0; N]; N];
        matrix[0] = [0.0; N]; // "from Checkbox" row is all-zero
        let initial = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let model = MarkovModel::new("dead-row", initial, matrix);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(
                model.next_kind(Some(ActionKind::Checkbox), &mut rng),
                ActionKind::Checkbox,
                "initial distribution pins everything on Checkbox"
            );
        }
    }

    #[test]
    fn pick_action_returns_applicable_actions() {
        let d = dashboard();
        let state = d.initial_state();
        let model = MarkovModel::idebench_default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..50 {
            let action = model.pick_action(&d, &state, None, &mut rng).unwrap();
            // Every returned action must be in the applicable set.
            assert!(d.applicable_actions(&state).contains(&action));
        }
    }

    #[test]
    fn pick_action_is_deterministic_under_seed() {
        let d = dashboard();
        let state = d.initial_state();
        let model = MarkovModel::idebench_default();
        let a1 = model.pick_action(&d, &state, None, &mut ChaCha8Rng::seed_from_u64(9));
        let a2 = model.pick_action(&d, &state, None, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a1, a2);
    }

    #[test]
    fn simulated_walk_changes_state() {
        let d = dashboard();
        let mut state = d.initial_state();
        let model = MarkovModel::idebench_default();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut prev = None;
        for _ in 0..10 {
            let action = model.pick_action(&d, &state, prev, &mut rng).unwrap();
            prev = Some(action.kind(d.graph()));
            action.apply(d.graph(), &mut state);
        }
        assert!(
            state.active_count() > 0,
            "ten random actions should leave filters active"
        );
    }
}
