//! The concurrent workload scheduler.
//!
//! Runs exploration sessions against one shared engine from a pool of
//! worker threads. *What* the sessions are comes from a
//! [`SessionSource`] — one trait covering every session mode:
//!
//! * **Scripted** ([`ScriptedSource`]) — replays pre-synthesized
//!   [`SessionScript`]s: every interaction was fixed before the first query
//!   ran, so the workload is engine-independent but can never react to
//!   results.
//! * **Adaptive** ([`AdaptiveSource`])
//!   — each worker runs a *live* Markov walk per user and steers on what
//!   comes back: a filter that empties a chart gets undone, a dominant
//!   category gets drilled into. This is the paper's adaptivity argument
//!   made executable under load — the next interaction depends on the data
//!   the user just saw.
//! * **IDEBench** ([`IdebenchSource`](simba_idebench::IdebenchSource)) —
//!   stochastic filter storms over per-user implicit dashboards, for
//!   baseline comparisons under the same pacing and reporting.
//!
//! Orthogonally, two arrival disciplines pace the sessions:
//!
//! * **Closed loop** — each worker picks the next unstarted session as soon
//!   as it finishes its current one (think-time paced). Models a fixed
//!   population of concurrent users; total concurrency = worker count.
//! * **Open loop** — sessions arrive on a Poisson schedule at a configured
//!   rate regardless of service speed, which is what exposes saturation:
//!   when the engine can't keep up, the measured queue delay grows without
//!   bound (Eichmann et al.'s argument for think-time/arrival-paced
//!   interactive benchmarks).
//!
//! Prefer describing a run declaratively with a
//! [`ScenarioSpec`](crate::workload::ScenarioSpec) and
//! [`Driver::execute`](crate::workload); [`Driver::run`] and
//! [`Driver::run_adaptive`] remain as thin shims over the same loop.

use crate::cache::{CacheConfig, CachedResult, ShardedResultCache};
use crate::histogram::LatencyHistogram;
use crate::report::{
    CacheReport, ExecReport, LatencySummary, ResilienceReport, RunReport, SteeringReport,
    ADHOC_SCENARIO,
};
use crate::resilience::{jitter_key, CircuitBreaker, ResiliencePolicy};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simba_core::dashboard::Dashboard;
use simba_core::markov::MarkovModel;
use simba_core::session::adaptive::{AdaptivePolicy, SteeringKind};
use simba_core::session::batch::{splitmix, SessionScript};
use simba_core::session::source::{
    AdaptiveSource, AdaptiveWalkConfig, QueryFeedback, ScriptedSource, SessionSource, SourceStep,
};
use simba_engine::{Dbms, EngineError, QueryCtx, QueryOutput, SessionDelta};
use simba_sql::Select;
use simba_store::ResultSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// Canonical home: `crate::fingerprint`. Re-exported here because these two
// lived in this module first and callers import them from both paths.
pub use crate::fingerprint::{fingerprint, ERROR_FINGERPRINT};

/// Pause inserted between a session's consecutive interactions.
#[derive(Debug, Clone)]
pub enum ThinkTime {
    /// No pacing: steps run back-to-back (throughput stress mode).
    None,
    Fixed(Duration),
    /// Exponentially distributed with the given mean.
    Exponential {
        mean: Duration,
    },
}

impl ThinkTime {
    fn sample(&self, rng: &mut ChaCha8Rng) -> Duration {
        match self {
            ThinkTime::None => Duration::ZERO,
            ThinkTime::Fixed(d) => *d,
            ThinkTime::Exponential { mean } => {
                let u: f64 = rng.gen_range(0.0..1.0);
                mean.mul_f64(-(1.0 - u).ln())
            }
        }
    }
}

/// When sessions become eligible to start.
#[derive(Debug, Clone)]
pub enum Arrival {
    /// Start whenever a worker frees up.
    Closed,
    /// Poisson arrivals at this rate (sessions per second).
    Open { rate_per_sec: f64 },
}

/// Driver configuration.
///
/// When running a scenario, this is derived from the
/// [`ScenarioSpec`](crate::workload::ScenarioSpec) (the single source of
/// truth for pacing, seed, and cache settings) via `From`.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Worker threads; `0` = `min(sessions, available_parallelism)`.
    pub workers: usize,
    pub think_time: ThinkTime,
    pub arrival: Arrival,
    /// Seed for think-time and arrival randomness.
    pub seed: u64,
    /// `Some` enables the shared result cache.
    pub cache: Option<CacheConfig>,
    /// Record a per-query result fingerprint (used by equivalence tests).
    pub collect_fingerprints: bool,
    /// Enable session-delta execution: each session carries a
    /// [`SessionDelta`] store and queries run through
    /// [`Dbms::execute_delta`], letting engines that opt in seed scans from
    /// the previous step's surviving rows. Results are byte-identical to
    /// delta-off runs (the differential suite enforces it). Ignored on the
    /// resilient path: retries/timeouts abandon attempts mid-flight, and an
    /// abandoned attempt must not poison a store shared with its retry.
    pub delta: bool,
    /// Enable the global metrics registry for the duration of the run and
    /// attach a run-scoped [`MetricsSnapshot`](simba_obs::MetricsSnapshot)
    /// (plus the derived phase breakdown) to the report.
    pub collect_metrics: bool,
    /// Deadline, retry/backoff, and circuit-breaker policy applied around
    /// every query. Inert by default — the driver then takes the exact
    /// legacy execution path.
    pub resilience: ResiliencePolicy,
    /// Force the fault-tolerant execution path (per-attempt [`QueryCtx`],
    /// panic recovery) even when `resilience` is inert. The workload layer
    /// sets this whenever the engine is wrapped in a
    /// [`FaultInjectingDbms`](simba_engine::FaultInjectingDbms): injected
    /// panics must be caught, and injected faults key their determinism on
    /// the ctx.
    pub chaos: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            workers: 0,
            think_time: ThinkTime::None,
            arrival: Arrival::Closed,
            seed: 0,
            cache: None,
            collect_fingerprints: false,
            delta: false,
            collect_metrics: false,
            resilience: ResiliencePolicy::default(),
            chaos: false,
        }
    }
}

/// Configuration of one adaptive (live, result-steered) run.
///
/// Legacy shape kept for one release: the walk fields now live in
/// [`AdaptiveWalkConfig`] (`simba-core`), which this converts `Into`; new
/// code should build an `AdaptiveSource` or a
/// [`ScenarioSpec`](crate::workload::ScenarioSpec) instead.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Base seed; user `u` walks with `base_seed ^ splitmix(u + 1)` —
    /// the same derivation as [`simba_core::session::batch::BatchConfig`],
    /// so scripted and adaptive runs of one seed explore comparably.
    pub base_seed: u64,
    /// Interaction budget per session after the initial render (steering
    /// steps count: reacting *is* interacting).
    pub steps_per_session: usize,
    /// Model mix; user `u` draws `mix[u % mix.len()]`.
    pub mix: Vec<MarkovModel>,
    /// Result-steering rules applied after every non-steered step.
    pub policy: AdaptivePolicy,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        let walk = AdaptiveWalkConfig::default();
        AdaptiveConfig {
            base_seed: walk.base_seed,
            steps_per_session: walk.steps_per_session,
            mix: walk.mix,
            policy: walk.policy,
        }
    }
}

impl From<&AdaptiveConfig> for AdaptiveWalkConfig {
    fn from(c: &AdaptiveConfig) -> AdaptiveWalkConfig {
        AdaptiveWalkConfig {
            base_seed: c.base_seed,
            steps_per_session: c.steps_per_session,
            mix: c.mix.clone(),
            policy: c.policy.clone(),
        }
    }
}

/// Result of a driver run ([`Driver::execute`](crate::workload),
/// [`Driver::run`], [`Driver::run_adaptive`]).
#[derive(Debug)]
pub struct DriverOutcome {
    pub report: RunReport,
    /// Per session (outer, in session order): one fingerprint per query (in
    /// step/query order; [`ERROR_FINGERPRINT`] marks errored queries).
    /// Empty unless `collect_fingerprints` was set.
    pub fingerprints: Vec<Vec<u64>>,
    /// Per session, the human-readable description of every step taken
    /// (initial render included) — the determinism proof surface. Empty
    /// unless `collect_fingerprints` was set.
    pub actions: Vec<Vec<String>>,
    /// Per session (session-index order): did any of its queries end in a
    /// final failure — exhausted retries, a permanent error, or a breaker
    /// shed? All `false` on the legacy (non-resilient) path.
    pub degraded: Vec<bool>,
}

/// Replays or live-drives sessions concurrently against one engine.
pub struct Driver {
    config: DriverConfig,
}

#[derive(Debug, Default, Clone)]
struct SteeringCounters {
    backtracks: u64,
    drills: u64,
    empty_results: u64,
}

impl SteeringCounters {
    fn merge(&mut self, other: &SteeringCounters) {
        self.backtracks += other.backtracks;
        self.drills += other.drills;
        self.empty_results += other.empty_results;
    }
}

/// Totals of engine-reported [`ExecStats`](simba_engine::ExecStats),
/// accumulated over fresh executions only — a cache hit or coalesced wait
/// must not re-count the work its leader already did.
#[derive(Debug, Default, Clone)]
struct ExecCounters {
    rows_scanned: u64,
    rows_matched: u64,
    groups: u64,
    morsels_pruned: u64,
    delta_hits: u64,
    delta_group_hits: u64,
    delta_rows_saved: u64,
}

impl ExecCounters {
    fn add(&mut self, stats: &simba_engine::ExecStats) {
        self.rows_scanned += stats.rows_scanned as u64;
        self.rows_matched += stats.rows_matched as u64;
        self.groups += stats.groups as u64;
        self.morsels_pruned += stats.morsels_pruned as u64;
        self.delta_hits += stats.delta_hits as u64;
        self.delta_group_hits += stats.delta_group_hits as u64;
        self.delta_rows_saved += stats.delta_rows_saved as u64;
    }

    fn merge(&mut self, other: &ExecCounters) {
        self.rows_scanned += other.rows_scanned;
        self.rows_matched += other.rows_matched;
        self.groups += other.groups;
        self.morsels_pruned += other.morsels_pruned;
        self.delta_hits += other.delta_hits;
        self.delta_group_hits += other.delta_group_hits;
        self.delta_rows_saved += other.delta_rows_saved;
    }
}

/// Store-side session-delta event totals, merged across sessions/workers.
#[derive(Debug, Default, Clone)]
struct DeltaCounters {
    misses: u64,
    invalidations: u64,
    resets: u64,
}

impl DeltaCounters {
    fn add(&mut self, stats: &simba_engine::DeltaStoreStats) {
        self.misses += stats.misses;
        self.invalidations += stats.invalidations;
        self.resets += stats.resets;
    }

    fn merge(&mut self, other: &DeltaCounters) {
        self.misses += other.misses;
        self.invalidations += other.invalidations;
        self.resets += other.resets;
    }
}

/// Per-attempt error taxonomy and recovery counters of the resilient
/// execution path, merged across workers into the
/// [`ResilienceReport`].
#[derive(Debug, Default, Clone)]
struct ResilienceCounters {
    timeouts: u64,
    transient_errors: u64,
    permanent_errors: u64,
    shed: u64,
    panics_recovered: u64,
    retries: u64,
    retries_succeeded: u64,
}

impl ResilienceCounters {
    fn merge(&mut self, other: &ResilienceCounters) {
        self.timeouts += other.timeouts;
        self.transient_errors += other.transient_errors;
        self.permanent_errors += other.permanent_errors;
        self.shed += other.shed;
        self.panics_recovered += other.panics_recovered;
        self.retries += other.retries;
        self.retries_succeeded += other.retries_succeeded;
    }
}

struct WorkerOutcome {
    latency: LatencyHistogram,
    queue_delay: LatencyHistogram,
    /// Open-loop only: service latency plus, for a session's first query,
    /// the delay past the session's scheduled arrival (the
    /// coordinated-omission-corrected view of what a user would wait).
    response: LatencyHistogram,
    interactions: u64,
    queries: u64,
    errors: u64,
    exec: ExecCounters,
    delta: DeltaCounters,
    fingerprints: Vec<(usize, Vec<u64>)>,
    actions: Vec<(usize, Vec<String>)>,
    steering: SteeringCounters,
    resilience: ResilienceCounters,
    /// Resilient path only: `(session, any-final-failure)` per completed
    /// session.
    degraded: Vec<(usize, bool)>,
}

impl WorkerOutcome {
    fn new() -> Self {
        WorkerOutcome {
            latency: LatencyHistogram::new(),
            queue_delay: LatencyHistogram::new(),
            response: LatencyHistogram::new(),
            interactions: 0,
            queries: 0,
            errors: 0,
            exec: ExecCounters::default(),
            delta: DeltaCounters::default(),
            fingerprints: Vec::new(),
            actions: Vec::new(),
            steering: SteeringCounters::default(),
            resilience: ResilienceCounters::default(),
            degraded: Vec::new(),
        }
    }
}

/// How one execution attempt failed, before retry classification.
enum AttemptError {
    /// The per-query deadline elapsed; the in-flight call was abandoned.
    Timeout,
    /// The engine panicked; the unwind was caught.
    Panic,
    /// The engine returned an error.
    Engine(EngineError),
}

/// Position of a step inside the run, for [`QueryCtx`] and backoff-jitter
/// derivation on the resilient path.
#[derive(Clone, Copy)]
struct StepPos {
    user: u64,
    step: u64,
    session_seed: u64,
}

/// What one executed query left behind for the feedback hooks.
enum Observed {
    Cached(Arc<CachedResult>),
    Owned(ResultSet),
    Errored,
}

impl Observed {
    fn result(&self) -> Option<&ResultSet> {
        match self {
            Observed::Cached(value) => Some(&value.result),
            Observed::Owned(result) => Some(result),
            Observed::Errored => None,
        }
    }
}

impl Driver {
    pub fn new(config: DriverConfig) -> Driver {
        Driver { config }
    }

    /// Replay pre-synthesized scripts to completion. Thin shim over
    /// [`run_source`](Self::run_source) with a [`ScriptedSource`].
    pub fn run(&self, engine: Arc<dyn Dbms>, scripts: &[SessionScript]) -> DriverOutcome {
        self.run_source(engine, &ScriptedSource::borrowed(scripts))
    }

    /// Run `sessions` live adaptive sessions to completion: each worker
    /// holds a dashboard walk per user, executes its queries through the
    /// (optionally cached) engine, and lets the configured
    /// [`AdaptivePolicy`] steer on results. Identical seed + policy yield
    /// byte-identical action sequences and fingerprints on every engine —
    /// results (not latencies) are all a policy may inspect. Thin shim over
    /// [`run_source`](Self::run_source) with an `AdaptiveSource`.
    pub fn run_adaptive(
        &self,
        engine: Arc<dyn Dbms>,
        dashboard: &Dashboard,
        adaptive: &AdaptiveConfig,
        sessions: usize,
    ) -> DriverOutcome {
        let source = AdaptiveSource::new(dashboard, adaptive.into(), sessions);
        self.run_source(engine, &source)
    }

    /// Run every session a [`SessionSource`] yields to completion and
    /// aggregate a [`RunReport`] — the one concurrent execution loop behind
    /// every session mode.
    pub fn run_source(&self, engine: Arc<dyn Dbms>, source: &dyn SessionSource) -> DriverOutcome {
        let sessions = source.sessions();
        let workers = self.resolve_workers(sessions);
        let cache = self.build_cache();
        let breaker = self
            .config
            .resilience
            .breaker_enabled()
            .then(|| CircuitBreaker::new(&self.config.resilience));
        let arrivals = self.arrival_offsets(sessions);
        // Metric recording is scoped to the run: a capture at the start
        // lets the report carry only what this run itself recorded.
        let metrics_scope = self
            .config
            .collect_metrics
            .then(simba_obs::metrics::MetricsScope::enter);
        let metrics_before = self
            .config
            .collect_metrics
            .then(simba_obs::metrics::capture);
        let next = AtomicUsize::new(0);
        let start = Instant::now();
        let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let engine = &engine;
                    let cache = cache.as_deref();
                    let breaker = breaker.as_ref();
                    let next = &next;
                    let arrivals = &arrivals;
                    scope.spawn(move || {
                        self.worker_loop(engine, cache, breaker, source, arrivals, next, start)
                    })
                })
                .collect();
            handles
                .into_iter()
                // Re-raising a worker panic on the coordinating thread is
                // deliberate: worker_loop already converts every per-query
                // failure (engine errors, timeouts, panicking engines) into
                // degraded-session outcomes, so a panic escaping it is a
                // driver bug whose report would be garbage anyway.
                // simba: allow(panic-hygiene): join only fails if worker_loop itself panicked; propagating that bug beats fabricating a report from partial outcomes
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let wall = start.elapsed();
        simba_obs::counter!("driver.sessions").add(sessions as u64);
        if let Some(c) = cache.as_ref() {
            promote_cache_stats(c);
        }
        let metrics = metrics_before.map(|before| simba_obs::metrics::snapshot_since(&before));
        drop(metrics_scope);
        self.finish(
            engine.as_ref(),
            source,
            workers,
            wall,
            outcomes,
            cache,
            breaker.as_ref(),
            metrics,
        )
    }

    /// Is the fault-tolerant execution path in effect? Off ⇒ queries run
    /// through the exact legacy path (no ctx, no unwind guard, no extra
    /// branches), keeping fault-free runs byte-identical to pre-resilience
    /// builds.
    fn resilient(&self) -> bool {
        self.config.chaos || self.config.resilience.is_active()
    }

    fn resolve_workers(&self, sessions: usize) -> usize {
        if self.config.workers == 0 {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(4)
        } else {
            self.config.workers
        }
        .min(sessions)
        .max(1)
    }

    fn build_cache(&self) -> Option<Arc<ShardedResultCache>> {
        self.config
            .cache
            .clone()
            .map(|c| Arc::new(ShardedResultCache::new(c)))
    }

    /// Open-loop: absolute arrival offsets from run start (Poisson).
    fn arrival_offsets(&self, sessions: usize) -> Vec<Duration> {
        match self.config.arrival {
            Arrival::Closed => vec![Duration::ZERO; sessions],
            Arrival::Open { rate_per_sec } => {
                assert!(
                    rate_per_sec > 0.0,
                    "open-loop arrival rate must be positive"
                );
                let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0x0A22_17A1);
                let mut at = 0.0f64;
                (0..sessions)
                    .map(|_| {
                        let u: f64 = rng.gen_range(0.0..1.0);
                        at += -(1.0 - u).ln() / rate_per_sec;
                        Duration::from_secs_f64(at)
                    })
                    .collect()
            }
        }
    }

    /// Open loop: honor the arrival schedule, then measure how late the
    /// session actually started — the queue delay a saturated system
    /// silently absorbs. Returns the delay so the session's first query can
    /// be timed from its *intended* start (the coordinated-omission fix).
    /// (Closed loop has no arrival times, so a delay sample would be
    /// meaningless — returns zero.)
    fn pace_arrival(
        &self,
        out: &mut WorkerOutcome,
        scheduled: Duration,
        run_start: Instant,
    ) -> Duration {
        if matches!(self.config.arrival, Arrival::Open { .. }) {
            let now = run_start.elapsed();
            if now < scheduled {
                std::thread::sleep(scheduled - now);
            }
            let late = run_start.elapsed().saturating_sub(scheduled);
            out.queue_delay.record(late);
            simba_obs::histogram!("driver.phase.queue_delay").record(late);
            late
        } else {
            Duration::ZERO
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        engine: &dyn Dbms,
        source: &dyn SessionSource,
        workers: usize,
        wall: Duration,
        outcomes: Vec<WorkerOutcome>,
        cache: Option<Arc<ShardedResultCache>>,
        breaker: Option<&CircuitBreaker>,
        metrics: Option<simba_obs::MetricsSnapshot>,
    ) -> DriverOutcome {
        let sessions = source.sessions();
        let mut latency = LatencyHistogram::new();
        let mut queue_delay = LatencyHistogram::new();
        let mut response = LatencyHistogram::new();
        let (mut interactions, mut queries, mut errors) = (0u64, 0u64, 0u64);
        let mut exec = ExecCounters::default();
        let mut delta = DeltaCounters::default();
        let mut steering = SteeringCounters::default();
        let mut resilience = ResilienceCounters::default();
        let mut fingerprints: Vec<Vec<u64>> = vec![Vec::new(); sessions];
        let mut actions: Vec<Vec<String>> = vec![Vec::new(); sessions];
        let mut degraded: Vec<bool> = vec![false; sessions];
        for w in outcomes {
            latency.merge(&w.latency);
            queue_delay.merge(&w.queue_delay);
            response.merge(&w.response);
            interactions += w.interactions;
            queries += w.queries;
            errors += w.errors;
            exec.merge(&w.exec);
            delta.merge(&w.delta);
            steering.merge(&w.steering);
            resilience.merge(&w.resilience);
            // `get_mut`, not indexing: worker outcomes are keyed by the
            // session ids the dispatch loop handed out, which are in range
            // by construction — but a bookkeeping bug here should drop one
            // session's rows, not panic the whole report assembly.
            for (session, fps) in w.fingerprints {
                if let Some(slot) = fingerprints.get_mut(session) {
                    *slot = fps;
                }
            }
            for (session, acts) in w.actions {
                if let Some(slot) = actions.get_mut(session) {
                    *slot = acts;
                }
            }
            for (session, d) in w.degraded {
                if let Some(slot) = degraded.get_mut(session) {
                    *slot = d;
                }
            }
        }

        let report = RunReport {
            schema_version: RunReport::SCHEMA_VERSION,
            scenario_name: ADHOC_SCENARIO.to_string(),
            engine: engine.name().to_string(),
            mode: match self.config.arrival {
                Arrival::Closed => "closed".to_string(),
                Arrival::Open { .. } => "open".to_string(),
            },
            session_mode: source.mode().to_string(),
            sessions,
            workers,
            scan_threads: engine.scan_threads(),
            wall_clock_ms: wall.as_secs_f64() * 1_000.0,
            interactions,
            queries,
            errors,
            throughput_qps: if wall.is_zero() {
                0.0
            } else {
                queries as f64 / wall.as_secs_f64()
            },
            latency: LatencySummary::from_histogram(&latency),
            queue_delay: match self.config.arrival {
                Arrival::Closed => None,
                Arrival::Open { .. } => Some(LatencySummary::from_histogram(&queue_delay)),
            },
            steering: source.steering_policy().map(|policy| {
                let ok_queries = queries.saturating_sub(errors);
                SteeringReport {
                    policy,
                    backtracks: steering.backtracks,
                    drills: steering.drills,
                    empty_results: steering.empty_results,
                    backtrack_rate: rate(steering.backtracks, interactions),
                    empty_result_rate: rate(steering.empty_results, ok_queries),
                }
            }),
            cache: cache
                .as_ref()
                .map(|c| CacheReport::new(&c.stats(), c.len())),
            exec: ExecReport {
                rows_scanned: exec.rows_scanned,
                rows_matched: exec.rows_matched,
                groups: exec.groups,
                morsels_pruned: exec.morsels_pruned,
            },
            delta: self.config.delta.then_some(crate::report::DeltaReport {
                hits: exec.delta_hits,
                group_hits: exec.delta_group_hits,
                misses: delta.misses,
                invalidations: delta.invalidations,
                resets: delta.resets,
                rows_saved: exec.delta_rows_saved,
            }),
            fingerprint_digest: self
                .config
                .collect_fingerprints
                .then(|| crate::fingerprint::digest(&fingerprints)),
            response: match self.config.arrival {
                Arrival::Closed => None,
                Arrival::Open { .. } => Some(LatencySummary::from_histogram(&response)),
            },
            // The workload layer fills `fault` from the wrapper's injection
            // stats; the driver only sees a `Dbms`.
            fault: None,
            resilience: self.resilient().then(|| {
                let breaker_stats = breaker.map(|b| b.stats()).unwrap_or_default();
                ResilienceReport {
                    policy: self.config.resilience.describe(),
                    timeouts: resilience.timeouts,
                    transient_errors: resilience.transient_errors,
                    permanent_errors: resilience.permanent_errors,
                    shed: resilience.shed,
                    panics_recovered: resilience.panics_recovered,
                    retries: resilience.retries,
                    retries_succeeded: resilience.retries_succeeded,
                    breaker_opens: breaker_stats.opens,
                    breaker_half_opens: breaker_stats.half_opens,
                    breaker_closes: breaker_stats.closes,
                    degraded_sessions: degraded.iter().filter(|d| **d).count() as u64,
                    degraded: degraded.clone(),
                }
            }),
            phase_breakdown: metrics.as_ref().map(crate::report::phase_breakdown),
            metrics,
        };
        DriverOutcome {
            report,
            fingerprints,
            actions,
            degraded,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn worker_loop(
        &self,
        engine: &Arc<dyn Dbms>,
        cache: Option<&ShardedResultCache>,
        breaker: Option<&CircuitBreaker>,
        source: &dyn SessionSource,
        arrivals: &[Duration],
        next: &AtomicUsize,
        run_start: Instant,
    ) -> WorkerOutcome {
        let mut out = WorkerOutcome::new();
        let sessions = source.sessions();
        loop {
            let user = next.fetch_add(1, Ordering::Relaxed);
            if user >= sessions {
                break;
            }
            // `user < sessions` was just checked, and `arrivals` has one
            // slot per session — but a worker must never panic on a
            // schedule-shape bug, so missing slots fall back to "no delay".
            let arrival = arrivals.get(user).copied().unwrap_or(Duration::ZERO);
            let lateness = self.pace_arrival(&mut out, arrival, run_start);
            // Root span: the trace sampler decides per session, so a
            // sampled session carries all of its steps, cache lookups, and
            // engine phases while an unsampled one records nothing.
            let _session = simba_obs::trace::span("driver.session", "driver");
            self.run_session(engine, cache, breaker, source, user, lateness, &mut out);
        }
        out
    }

    /// One session: pull steps from the stream, execute their queries, and
    /// feed the results back for the next step.
    #[allow(clippy::too_many_arguments)]
    fn run_session(
        &self,
        engine: &Arc<dyn Dbms>,
        cache: Option<&ShardedResultCache>,
        breaker: Option<&CircuitBreaker>,
        source: &dyn SessionSource,
        user: usize,
        lateness: Duration,
        out: &mut WorkerOutcome,
    ) {
        let mut stream = source.open(user);
        // Queue delay still owed to the session's first query when timing
        // it from its intended start; consumed by the first recording.
        let mut lateness = lateness;
        // Pacing noise is kept off any walk rng inside the stream:
        // think-time draws must not perturb action choice (cache hits
        // change timings, never walks). The asymmetric splitmix also stops
        // a shared driver/source seed from cancelling to zero under XOR.
        let mut pace_rng =
            ChaCha8Rng::seed_from_u64(splitmix(self.config.seed) ^ stream.session_seed());
        let collect = self.config.collect_fingerprints;
        let session_seed = stream.session_seed();
        let errors_before = out.errors;
        // Session-delta store: one per session, never shared — a session's
        // refinement chain is its own. Disabled on the resilient path (see
        // `DriverConfig::delta`).
        let mut delta: Option<SessionDelta> =
            (self.config.delta && !self.resilient()).then(SessionDelta::default);
        let mut fps = Vec::new();
        let mut actions = Vec::new();
        let mut observed: Vec<Observed> = Vec::new();
        let mut first = true;
        let mut step_index: u64 = 0;

        loop {
            let step = {
                // The steering decision: feedback assembly plus the walk's
                // choice of next interaction.
                let _steer = simba_obs::phase!("driver.steer", "driver", "driver.phase.steer");
                let feedback: Vec<QueryFeedback<'_>> = observed
                    .iter()
                    .map(|o| match o.result() {
                        Some(r) => QueryFeedback::Ok(r),
                        None => QueryFeedback::Errored,
                    })
                    .collect();
                match stream.next_step(&feedback) {
                    Some(step) => step,
                    None => break,
                }
            };
            if !first {
                out.interactions += 1;
                let pause = self.config.think_time.sample(&mut pace_rng);
                if !pause.is_zero() {
                    let _think = simba_obs::trace::span("driver.think", "driver");
                    simba_obs::histogram!("driver.phase.think").record(pause);
                    std::thread::sleep(pause);
                }
            }
            first = false;
            let _step_span = simba_obs::phase!("driver.step", "driver", "driver.phase.step");
            match step.steering {
                Some(SteeringKind::BacktrackOnEmpty) => out.steering.backtracks += 1,
                Some(SteeringKind::DrillTopGroup) => out.steering.drills += 1,
                None => {}
            }
            if collect {
                actions.push(step.description.clone());
            }
            let pos = StepPos {
                user: user as u64,
                step: step_index,
                session_seed,
            };
            observed = self.execute_step(
                engine,
                cache,
                breaker,
                &step,
                pos,
                &mut lateness,
                &mut delta,
                out,
                &mut fps,
            );
            step_index += 1;
        }

        if let Some(d) = delta.as_ref() {
            out.delta.add(&d.stats());
        }
        if collect {
            out.fingerprints.push((user, fps));
            out.actions.push((user, actions));
        }
        if self.resilient() {
            out.degraded.push((user, out.errors > errors_before));
        }
    }

    /// Execute one step's queries, recording latency, errors, fingerprints,
    /// and empty-result counts; returns per-query observations for the
    /// stream's feedback.
    ///
    /// Two execution paths, chosen once per run: the legacy path (exact
    /// pre-resilience behavior, byte-identical runs) and the fault-tolerant
    /// path (per-attempt [`QueryCtx`], deadline, retries, breaker, panic
    /// recovery).
    #[allow(clippy::too_many_arguments)]
    fn execute_step(
        &self,
        engine: &Arc<dyn Dbms>,
        cache: Option<&ShardedResultCache>,
        breaker: Option<&CircuitBreaker>,
        step: &SourceStep,
        pos: StepPos,
        lateness: &mut Duration,
        delta: &mut Option<SessionDelta>,
        out: &mut WorkerOutcome,
        fps: &mut Vec<u64>,
    ) -> Vec<Observed> {
        let resilient = self.resilient();
        let mut observed = Vec::with_capacity(step.queries.len());
        for (query_index, (_vis, query)) in step.queries.iter().enumerate() {
            out.queries += 1;
            let executed = if resilient {
                self.execute_query_resilient(engine, cache, breaker, query, query_index, pos, out)
            } else if let Some(d) = delta.as_mut() {
                self.execute_query_delta(engine.as_ref(), cache, query, d, out)
            } else {
                self.execute_query_legacy(engine.as_ref(), cache, query, out)
            };
            if executed.is_err() {
                if let Some(d) = delta.as_mut() {
                    // An errored step makes the session's trajectory
                    // observer-dependent (steering sees ERROR and may
                    // backtrack anywhere); retained work from before the
                    // error no longer describes a refinement chain.
                    d.reset();
                }
            }
            self.record_query_outcome(executed, lateness, out, fps, &mut observed);
        }
        observed
    }

    /// The pre-resilience execution path, kept verbatim: no ctx, no unwind
    /// guard, no extra branches — fault-free runs stay byte-identical.
    fn execute_query_legacy(
        &self,
        engine: &dyn Dbms,
        cache: Option<&ShardedResultCache>,
        query: &Select,
        out: &mut WorkerOutcome,
    ) -> Result<(Observed, Duration), EngineError> {
        match cache {
            Some(cache) => cache
                .execute_cached(engine, query)
                .map(|(value, elapsed, hit)| {
                    if !hit {
                        out.exec.add(&value.stats);
                    }
                    (Observed::Cached(value), elapsed)
                }),
            None => engine.execute(query).map(|o| {
                out.exec.add(&o.stats);
                (Observed::Owned(o.result), o.elapsed)
            }),
        }
    }

    /// The session-delta execution path: the legacy path with
    /// [`Dbms::execute_delta`] in place of `execute`, so engines that opt in
    /// reuse the session's retained selections/group states. Under caching
    /// the delta runner executes *inside* the single-flight leader: a cache
    /// hit returns the leader's result untouched and leaves the store
    /// exactly as it was — only fresh executions consult or grow it.
    fn execute_query_delta(
        &self,
        engine: &dyn Dbms,
        cache: Option<&ShardedResultCache>,
        query: &Select,
        delta: &mut SessionDelta,
        out: &mut WorkerOutcome,
    ) -> Result<(Observed, Duration), EngineError> {
        match cache {
            Some(cache) => {
                let mut runner = |engine: &dyn Dbms, q: &Select| engine.execute_delta(q, delta);
                cache.execute_cached_with(engine, query, &mut runner).map(
                    |(value, elapsed, hit)| {
                        if !hit {
                            out.exec.add(&value.stats);
                        }
                        (Observed::Cached(value), elapsed)
                    },
                )
            }
            None => engine.execute_delta(query, delta).map(|o| {
                out.exec.add(&o.stats);
                (Observed::Owned(o.result), o.elapsed)
            }),
        }
    }

    /// The fault-tolerant execution path: breaker admission, then the
    /// deadline/retry attempt loop — run *inside* the single-flight cache
    /// leader when caching, so followers coalesced onto a flaky key observe
    /// the leader's post-retry outcome, never its raw first failure.
    #[allow(clippy::too_many_arguments)]
    fn execute_query_resilient(
        &self,
        engine: &Arc<dyn Dbms>,
        cache: Option<&ShardedResultCache>,
        breaker: Option<&CircuitBreaker>,
        query: &Select,
        query_index: usize,
        pos: StepPos,
        out: &mut WorkerOutcome,
    ) -> Result<(Observed, Duration), EngineError> {
        // Admission: an open breaker sheds the query before any cache or
        // engine work — failing fast is the point.
        if let Some(br) = breaker {
            if !br.try_acquire() {
                let _shed = simba_obs::trace::span("driver.breaker", "driver");
                out.resilience.shed += 1;
                return Err(EngineError::Transient(
                    "shed by open circuit breaker".to_string(),
                ));
            }
        }
        let base = QueryCtx {
            session: pos.user,
            step: pos.step,
            query: query_index as u64,
            attempt: 0,
        };
        let jkey = jitter_key(
            self.config.seed,
            pos.session_seed,
            pos.step,
            query_index as u64,
        );
        let mut counters = ResilienceCounters::default();
        let mut runner = |_engine: &dyn Dbms, q: &Select| {
            // The cache hands back the same engine we passed it; the
            // attempt loop needs the owning `Arc` (to detach a thread per
            // deadline-bounded attempt), so it uses the captured one.
            self.attempt_loop(engine, q, base, jkey, &mut counters)
        };
        let executed = match cache {
            Some(cache) => cache
                .execute_cached_with(engine.as_ref(), query, &mut runner)
                .map(|(value, elapsed, hit)| {
                    if !hit {
                        out.exec.add(&value.stats);
                    }
                    (Observed::Cached(value), elapsed)
                }),
            None => runner(engine.as_ref(), query).map(|o| {
                out.exec.add(&o.stats);
                (Observed::Owned(o.result), o.elapsed)
            }),
        };
        if executed.is_ok() && counters.retries > 0 {
            counters.retries_succeeded += 1;
            simba_obs::counter!("resilience.retries_succeeded").add(1);
        }
        out.resilience.merge(&counters);
        if let Some(br) = breaker {
            // The breaker judges *final* outcomes: a query that recovered
            // on retry is a success, not evidence against the engine.
            match &executed {
                Ok(_) => br.on_success(),
                Err(_) => br.on_failure(),
            }
        }
        executed
    }

    /// Record one query's final outcome into histograms, fingerprints, and
    /// feedback observations — shared by both execution paths.
    fn record_query_outcome(
        &self,
        executed: Result<(Observed, Duration), EngineError>,
        lateness: &mut Duration,
        out: &mut WorkerOutcome,
        fps: &mut Vec<u64>,
        observed: &mut Vec<Observed>,
    ) {
        let collect = self.config.collect_fingerprints;
        let open_loop = matches!(self.config.arrival, Arrival::Open { .. });
        match executed {
            Ok((obs, elapsed)) => {
                out.latency.record(elapsed);
                if open_loop {
                    // Response time from the *intended* start: the
                    // session's remaining queue delay lands on its
                    // first query, later queries owe nothing.
                    out.response.record(elapsed + std::mem::take(lateness));
                }
                if let Some(result) = obs.result() {
                    // Fingerprinting clones and sorts the whole result
                    // set; keep it off the measured path unless asked.
                    if collect {
                        fps.push(fingerprint(result));
                    }
                    if result.is_empty() {
                        out.steering.empty_results += 1;
                    }
                }
                observed.push(obs);
            }
            Err(_) => {
                out.errors += 1;
                // Keep fingerprint vectors position-aligned.
                if collect {
                    fps.push(ERROR_FINGERPRINT);
                }
                observed.push(Observed::Errored);
            }
        }
    }

    /// Run one query to a final outcome under the resilience policy:
    /// deadline-bounded attempts, transient failures (including timeouts
    /// and recovered panics) retried with seeded exponential backoff up to
    /// the budget, permanent errors failing immediately. Backoff sleeps are
    /// recorded as `driver.phase.backoff` (think-time, not service time).
    fn attempt_loop(
        &self,
        engine: &Arc<dyn Dbms>,
        query: &Select,
        base: QueryCtx,
        jkey: u64,
        counters: &mut ResilienceCounters,
    ) -> Result<QueryOutput, EngineError> {
        let policy = &self.config.resilience;
        let mut attempt: u32 = 0;
        loop {
            let ctx = QueryCtx { attempt, ..base };
            let failure = match run_attempt(engine, query, &ctx, policy.deadline) {
                Ok(output) => return Ok(output),
                Err(failure) => failure,
            };
            let (retryable, error) = match failure {
                AttemptError::Timeout => {
                    counters.timeouts += 1;
                    simba_obs::counter!("resilience.timeouts").add(1);
                    (
                        true,
                        EngineError::Transient(format!(
                            "deadline of {:?} exceeded; attempt abandoned",
                            policy.deadline.unwrap_or_default()
                        )),
                    )
                }
                AttemptError::Panic => {
                    counters.panics_recovered += 1;
                    simba_obs::counter!("resilience.panics_recovered").add(1);
                    (
                        true,
                        EngineError::Transient("engine panicked (unwind recovered)".to_string()),
                    )
                }
                AttemptError::Engine(e) if e.is_transient() => {
                    counters.transient_errors += 1;
                    simba_obs::counter!("resilience.transient_errors").add(1);
                    (true, e)
                }
                AttemptError::Engine(e) => {
                    counters.permanent_errors += 1;
                    simba_obs::counter!("resilience.permanent_errors").add(1);
                    (false, e)
                }
            };
            if !retryable || attempt >= policy.max_retries {
                return Err(error);
            }
            attempt += 1;
            counters.retries += 1;
            simba_obs::counter!("resilience.retries").add(1);
            let _retry = simba_obs::trace::span("driver.retry", "driver");
            let pause = policy.backoff_delay(jkey, attempt);
            if !pause.is_zero() {
                simba_obs::histogram!("driver.phase.backoff").record(pause);
                std::thread::sleep(pause);
            }
        }
    }
}

/// One deadline-bounded execution attempt. Without a deadline the attempt
/// runs inline under an unwind guard. With one, it runs on a freshly
/// spawned thread and the caller waits at most `deadline`: an attempt that
/// blows the budget is **abandoned** — the engine call finishes (and is
/// discarded) on the detached thread, the session moves on. Abandonment,
/// not cancellation: the `Dbms` trait has no cancel hook, and a wedged
/// session is worse than a stray background scan.
fn run_attempt(
    engine: &Arc<dyn Dbms>,
    query: &Select,
    ctx: &QueryCtx,
    deadline: Option<Duration>,
) -> Result<QueryOutput, AttemptError> {
    let Some(deadline) = deadline else {
        return match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.execute_at(query, ctx)
        })) {
            Ok(Ok(output)) => Ok(output),
            Ok(Err(e)) => Err(AttemptError::Engine(e)),
            Err(_) => Err(AttemptError::Panic),
        };
    };
    let (tx, rx) = std::sync::mpsc::channel();
    let engine = Arc::clone(engine);
    let query = query.clone();
    let ctx = *ctx;
    std::thread::spawn(move || {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.execute_at(&query, &ctx)
        }));
        // A send error just means the caller timed out and went away.
        let _ = tx.send(outcome);
    });
    match rx.recv_timeout(deadline) {
        Ok(Ok(Ok(output))) => Ok(output),
        Ok(Ok(Err(e))) => Err(AttemptError::Engine(e)),
        Ok(Err(_panic)) => Err(AttemptError::Panic),
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Err(AttemptError::Timeout),
        // Disconnected is not a timeout: the executor thread died without
        // sending (its catch_unwind should make this unreachable). Calling
        // it a timeout would send it through timeout-retry accounting;
        // surface it as the infrastructure fault it is.
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Err(AttemptError::Engine(
            EngineError::Internal("deadline executor thread disconnected without a result".into()),
        )),
    }
}

/// Promote the cache's end-of-run counters into the metrics registry (a
/// no-op unless a metrics scope is active).
fn promote_cache_stats(cache: &ShardedResultCache) {
    let stats = cache.stats();
    simba_obs::counter!("cache.hits").add(stats.hits);
    simba_obs::counter!("cache.misses").add(stats.misses);
    simba_obs::counter!("cache.insertions").add(stats.insertions);
    simba_obs::counter!("cache.evictions").add(stats.evictions);
    simba_obs::counter!("cache.coalesced").add(stats.coalesced);
    simba_obs::counter!("cache.invalidations").add(stats.invalidations);
    simba_obs::counter!("cache.error_passthrough").add(stats.error_passthrough);
    simba_obs::gauge!("cache.entries").set(cache.len() as u64);
}

fn rate(n: u64, denom: u64) -> f64 {
    if denom == 0 {
        0.0
    } else {
        n as f64 / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn think_time_samples_match_discipline() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(ThinkTime::None.sample(&mut rng), Duration::ZERO);
        assert_eq!(
            ThinkTime::Fixed(Duration::from_millis(3)).sample(&mut rng),
            Duration::from_millis(3)
        );
        let mean = Duration::from_millis(10);
        let n = 2_000;
        let total: Duration = (0..n)
            .map(|_| ThinkTime::Exponential { mean }.sample(&mut rng))
            .sum();
        let avg_ms = total.as_secs_f64() * 1_000.0 / n as f64;
        assert!((avg_ms - 10.0).abs() < 1.0, "mean {avg_ms}ms");
    }

    #[test]
    fn adaptive_config_converts_to_walk_config() {
        let legacy = AdaptiveConfig {
            base_seed: 9,
            steps_per_session: 3,
            mix: vec![MarkovModel::uniform()],
            policy: AdaptivePolicy::disabled(),
        };
        let walk: AdaptiveWalkConfig = (&legacy).into();
        assert_eq!(walk.base_seed, 9);
        assert_eq!(walk.steps_per_session, 3);
        assert_eq!(walk.mix.len(), 1);
        assert!(!walk.policy.is_enabled());
    }
}
