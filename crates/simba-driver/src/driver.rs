//! The concurrent workload scheduler.
//!
//! Runs exploration sessions against one shared engine from a pool of
//! worker threads, in two *session modes*:
//!
//! * **Scripted** — replays pre-synthesized [`SessionScript`]s: every
//!   interaction was fixed before the first query ran, so the workload is
//!   engine-independent but can never react to results.
//! * **Adaptive** — each worker runs a *live* Markov walk per user
//!   ([`SessionPlanner`]) and steers on what comes back
//!   ([`AdaptivePolicy`]): a filter that empties a chart gets undone, a
//!   dominant category gets drilled into. This is the paper's adaptivity
//!   argument made executable under load — the next interaction depends on
//!   the data the user just saw.
//!
//! Orthogonally, two arrival disciplines pace the sessions:
//!
//! * **Closed loop** — each worker picks the next unstarted session as soon
//!   as it finishes its current one (think-time paced). Models a fixed
//!   population of concurrent users; total concurrency = worker count.
//! * **Open loop** — sessions arrive on a Poisson schedule at a configured
//!   rate regardless of service speed, which is what exposes saturation:
//!   when the engine can't keep up, the measured queue delay grows without
//!   bound (Eichmann et al.'s argument for think-time/arrival-paced
//!   interactive benchmarks).

use crate::cache::{CacheConfig, CachedResult, ShardedResultCache};
use crate::histogram::LatencyHistogram;
use crate::report::{CacheReport, DriverReport, LatencySummary, SteeringReport};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simba_core::dashboard::Dashboard;
use simba_core::markov::MarkovModel;
use simba_core::session::adaptive::{AdaptivePolicy, SteeringKind, StepObservation};
use simba_core::session::batch::{splitmix, SessionScript};
use simba_core::session::planner::{PlannedStep, SessionPlanner};
use simba_engine::Dbms;
use simba_store::ResultSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sentinel fingerprint recorded for a query that returned an engine error.
///
/// Fingerprint vectors are compared position-for-position across engines
/// and cache configurations; silently *skipping* an errored query would
/// shift every later fingerprint in the session and turn one error into a
/// wall of false mismatches. (FNV-1a of any real result never yields
/// `u64::MAX` from our offset basis in practice; collisions would only
/// mask an error against a result, never misalign positions.)
pub const ERROR_FINGERPRINT: u64 = u64::MAX;

/// Pause inserted between a session's consecutive interactions.
#[derive(Debug, Clone)]
pub enum ThinkTime {
    /// No pacing: steps run back-to-back (throughput stress mode).
    None,
    Fixed(Duration),
    /// Exponentially distributed with the given mean.
    Exponential {
        mean: Duration,
    },
}

impl ThinkTime {
    fn sample(&self, rng: &mut ChaCha8Rng) -> Duration {
        match self {
            ThinkTime::None => Duration::ZERO,
            ThinkTime::Fixed(d) => *d,
            ThinkTime::Exponential { mean } => {
                let u: f64 = rng.gen_range(0.0..1.0);
                mean.mul_f64(-(1.0 - u).ln())
            }
        }
    }
}

/// When sessions become eligible to start.
#[derive(Debug, Clone)]
pub enum Arrival {
    /// Start whenever a worker frees up.
    Closed,
    /// Poisson arrivals at this rate (sessions per second).
    Open { rate_per_sec: f64 },
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Worker threads; `0` = `min(sessions, available_parallelism)`.
    pub workers: usize,
    pub think_time: ThinkTime,
    pub arrival: Arrival,
    /// Seed for think-time and arrival randomness.
    pub seed: u64,
    /// `Some` enables the shared result cache.
    pub cache: Option<CacheConfig>,
    /// Record a per-query result fingerprint (used by equivalence tests).
    pub collect_fingerprints: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            workers: 0,
            think_time: ThinkTime::None,
            arrival: Arrival::Closed,
            seed: 0,
            cache: None,
            collect_fingerprints: false,
        }
    }
}

/// Configuration of one adaptive (live, result-steered) run.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Base seed; user `u` walks with `base_seed ^ splitmix(u + 1)` —
    /// the same derivation as [`simba_core::session::batch::BatchConfig`],
    /// so scripted and adaptive runs of one seed explore comparably.
    pub base_seed: u64,
    /// Interaction budget per session after the initial render (steering
    /// steps count: reacting *is* interacting).
    pub steps_per_session: usize,
    /// Model mix; user `u` draws `mix[u % mix.len()]`.
    pub mix: Vec<MarkovModel>,
    /// Result-steering rules applied after every non-steered step.
    pub policy: AdaptivePolicy,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            base_seed: 0,
            steps_per_session: 8,
            mix: vec![
                MarkovModel::idebench_default(),
                MarkovModel::uniform(),
                MarkovModel::brush_heavy(),
                MarkovModel::drilldown(),
            ],
            policy: AdaptivePolicy::default(),
        }
    }
}

/// Result of [`Driver::run`] / [`Driver::run_adaptive`].
#[derive(Debug)]
pub struct DriverOutcome {
    pub report: DriverReport,
    /// Per session (outer, in session order): one fingerprint per query (in
    /// step/query order; [`ERROR_FINGERPRINT`] marks errored queries).
    /// Empty unless `collect_fingerprints` was set.
    pub fingerprints: Vec<Vec<u64>>,
    /// Adaptive mode only: per session, the human-readable description of
    /// every step taken (initial render included) — the determinism proof
    /// surface. Empty in scripted mode (the scripts *are* the actions) and
    /// unless `collect_fingerprints` was set.
    pub actions: Vec<Vec<String>>,
}

/// Replays or live-drives sessions concurrently against one engine.
pub struct Driver {
    config: DriverConfig,
}

#[derive(Debug, Default, Clone)]
struct SteeringCounters {
    backtracks: u64,
    drills: u64,
    empty_results: u64,
}

impl SteeringCounters {
    fn merge(&mut self, other: &SteeringCounters) {
        self.backtracks += other.backtracks;
        self.drills += other.drills;
        self.empty_results += other.empty_results;
    }
}

struct WorkerOutcome {
    latency: LatencyHistogram,
    queue_delay: LatencyHistogram,
    interactions: u64,
    queries: u64,
    errors: u64,
    fingerprints: Vec<(usize, Vec<u64>)>,
    actions: Vec<(usize, Vec<String>)>,
    steering: SteeringCounters,
}

impl WorkerOutcome {
    fn new() -> Self {
        WorkerOutcome {
            latency: LatencyHistogram::new(),
            queue_delay: LatencyHistogram::new(),
            interactions: 0,
            queries: 0,
            errors: 0,
            fingerprints: Vec::new(),
            actions: Vec::new(),
            steering: SteeringCounters::default(),
        }
    }
}

/// What one executed query left behind for the steering hooks.
enum Observed {
    Cached(Arc<CachedResult>),
    Owned(ResultSet),
    Errored,
}

impl Observed {
    fn result(&self) -> Option<&ResultSet> {
        match self {
            Observed::Cached(value) => Some(&value.result),
            Observed::Owned(result) => Some(result),
            Observed::Errored => None,
        }
    }
}

impl Driver {
    pub fn new(config: DriverConfig) -> Driver {
        Driver { config }
    }

    /// Run every script to completion and aggregate a [`DriverReport`].
    pub fn run(&self, engine: Arc<dyn Dbms>, scripts: &[SessionScript]) -> DriverOutcome {
        let workers = self.resolve_workers(scripts.len());
        let cache = self.build_cache();
        let arrivals = self.arrival_offsets(scripts.len());
        let next = AtomicUsize::new(0);
        let start = Instant::now();
        let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let engine = engine.as_ref();
                    let cache = cache.as_deref();
                    let next = &next;
                    let arrivals = &arrivals;
                    scope.spawn(move || {
                        self.scripted_worker_loop(engine, cache, scripts, arrivals, next, start)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let wall = start.elapsed();
        self.finish(
            engine.as_ref(),
            "scripted",
            None,
            scripts.len(),
            workers,
            wall,
            outcomes,
            cache,
        )
    }

    /// Run `sessions` live adaptive sessions to completion: each worker
    /// holds a dashboard walk per user, executes its queries through the
    /// (optionally cached) engine, and lets the configured
    /// [`AdaptivePolicy`] steer on results. Identical seed + policy yield
    /// byte-identical action sequences and fingerprints on every engine —
    /// results (not latencies) are all a policy may inspect.
    pub fn run_adaptive(
        &self,
        engine: Arc<dyn Dbms>,
        dashboard: &Dashboard,
        adaptive: &AdaptiveConfig,
        sessions: usize,
    ) -> DriverOutcome {
        assert!(
            !adaptive.mix.is_empty(),
            "adaptive config needs at least one Markov model"
        );
        let workers = self.resolve_workers(sessions);
        let cache = self.build_cache();
        let arrivals = self.arrival_offsets(sessions);
        let next = AtomicUsize::new(0);
        let start = Instant::now();
        let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let engine = engine.as_ref();
                    let cache = cache.as_deref();
                    let next = &next;
                    let arrivals = &arrivals;
                    scope.spawn(move || {
                        self.adaptive_worker_loop(
                            engine, cache, dashboard, adaptive, sessions, arrivals, next, start,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let wall = start.elapsed();
        self.finish(
            engine.as_ref(),
            "adaptive",
            Some(adaptive),
            sessions,
            workers,
            wall,
            outcomes,
            cache,
        )
    }

    fn resolve_workers(&self, sessions: usize) -> usize {
        if self.config.workers == 0 {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(4)
        } else {
            self.config.workers
        }
        .min(sessions)
        .max(1)
    }

    fn build_cache(&self) -> Option<Arc<ShardedResultCache>> {
        self.config
            .cache
            .clone()
            .map(|c| Arc::new(ShardedResultCache::new(c)))
    }

    /// Open-loop: absolute arrival offsets from run start (Poisson).
    fn arrival_offsets(&self, sessions: usize) -> Vec<Duration> {
        match self.config.arrival {
            Arrival::Closed => vec![Duration::ZERO; sessions],
            Arrival::Open { rate_per_sec } => {
                assert!(
                    rate_per_sec > 0.0,
                    "open-loop arrival rate must be positive"
                );
                let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0x0A22_17A1);
                let mut at = 0.0f64;
                (0..sessions)
                    .map(|_| {
                        let u: f64 = rng.gen_range(0.0..1.0);
                        at += -(1.0 - u).ln() / rate_per_sec;
                        Duration::from_secs_f64(at)
                    })
                    .collect()
            }
        }
    }

    /// Open loop: honor the arrival schedule, then measure how late the
    /// session actually started. (Closed loop has no arrival times, so a
    /// delay sample would be meaningless — skip it.)
    fn pace_arrival(&self, out: &mut WorkerOutcome, scheduled: Duration, run_start: Instant) {
        if matches!(self.config.arrival, Arrival::Open { .. }) {
            let now = run_start.elapsed();
            if now < scheduled {
                std::thread::sleep(scheduled - now);
            }
            out.queue_delay
                .record(run_start.elapsed().saturating_sub(scheduled));
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        engine: &dyn Dbms,
        session_mode: &str,
        adaptive: Option<&AdaptiveConfig>,
        sessions: usize,
        workers: usize,
        wall: Duration,
        outcomes: Vec<WorkerOutcome>,
        cache: Option<Arc<ShardedResultCache>>,
    ) -> DriverOutcome {
        let mut latency = LatencyHistogram::new();
        let mut queue_delay = LatencyHistogram::new();
        let (mut interactions, mut queries, mut errors) = (0u64, 0u64, 0u64);
        let mut steering = SteeringCounters::default();
        let mut fingerprints: Vec<Vec<u64>> = vec![Vec::new(); sessions];
        let mut actions: Vec<Vec<String>> = vec![Vec::new(); sessions];
        for w in outcomes {
            latency.merge(&w.latency);
            queue_delay.merge(&w.queue_delay);
            interactions += w.interactions;
            queries += w.queries;
            errors += w.errors;
            steering.merge(&w.steering);
            for (session, fps) in w.fingerprints {
                fingerprints[session] = fps;
            }
            for (session, acts) in w.actions {
                actions[session] = acts;
            }
        }

        let report = DriverReport {
            engine: engine.name().to_string(),
            mode: match self.config.arrival {
                Arrival::Closed => "closed".to_string(),
                Arrival::Open { .. } => "open".to_string(),
            },
            session_mode: session_mode.to_string(),
            sessions,
            workers,
            scan_threads: engine.scan_threads(),
            wall_clock_ms: wall.as_secs_f64() * 1_000.0,
            interactions,
            queries,
            errors,
            throughput_qps: if wall.is_zero() {
                0.0
            } else {
                queries as f64 / wall.as_secs_f64()
            },
            latency: LatencySummary::from_histogram(&latency),
            queue_delay: match self.config.arrival {
                Arrival::Closed => None,
                Arrival::Open { .. } => Some(LatencySummary::from_histogram(&queue_delay)),
            },
            steering: adaptive.map(|a| {
                let ok_queries = queries.saturating_sub(errors);
                SteeringReport {
                    policy: a.policy.describe(),
                    backtracks: steering.backtracks,
                    drills: steering.drills,
                    empty_results: steering.empty_results,
                    backtrack_rate: rate(steering.backtracks, interactions),
                    empty_result_rate: rate(steering.empty_results, ok_queries),
                }
            }),
            cache: cache
                .as_ref()
                .map(|c| CacheReport::new(&c.stats(), c.len())),
        };
        DriverOutcome {
            report,
            fingerprints,
            actions,
        }
    }

    fn scripted_worker_loop(
        &self,
        engine: &dyn Dbms,
        cache: Option<&ShardedResultCache>,
        scripts: &[SessionScript],
        arrivals: &[Duration],
        next: &AtomicUsize,
        run_start: Instant,
    ) -> WorkerOutcome {
        let mut out = WorkerOutcome::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(script) = scripts.get(i) else { break };
            self.pace_arrival(&mut out, arrivals[i], run_start);

            // Asymmetric mix: a plain XOR would cancel the base seed when
            // driver and batch share it (script.seed already XORs it in).
            let mut rng = ChaCha8Rng::seed_from_u64(splitmix(self.config.seed) ^ script.seed);
            let mut fps = Vec::new();
            for (step_idx, step) in script.steps.iter().enumerate() {
                if step_idx > 0 {
                    out.interactions += 1;
                    let pause = self.config.think_time.sample(&mut rng);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                for sq in &step.queries {
                    out.queries += 1;
                    // Fingerprinting clones and sorts the whole result set;
                    // keep it out of the measured path unless asked for.
                    let want_fp = self.config.collect_fingerprints;
                    let executed =
                        match cache {
                            Some(cache) => cache.execute_cached(engine, &sq.query).map(
                                |(value, elapsed, _hit)| {
                                    (want_fp.then(|| fingerprint(&value.result)), elapsed)
                                },
                            ),
                            None => engine
                                .execute(&sq.query)
                                .map(|o| (want_fp.then(|| fingerprint(&o.result)), o.elapsed)),
                        };
                    match executed {
                        Ok((fp, elapsed)) => {
                            out.latency.record(elapsed);
                            fps.extend(fp);
                        }
                        Err(_) => {
                            out.errors += 1;
                            // Keep fingerprint vectors position-aligned.
                            if want_fp {
                                fps.push(ERROR_FINGERPRINT);
                            }
                        }
                    }
                }
            }
            if self.config.collect_fingerprints {
                out.fingerprints.push((i, fps));
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn adaptive_worker_loop(
        &self,
        engine: &dyn Dbms,
        cache: Option<&ShardedResultCache>,
        dashboard: &Dashboard,
        adaptive: &AdaptiveConfig,
        sessions: usize,
        arrivals: &[Duration],
        next: &AtomicUsize,
        run_start: Instant,
    ) -> WorkerOutcome {
        let mut out = WorkerOutcome::new();
        loop {
            let user = next.fetch_add(1, Ordering::Relaxed);
            if user >= sessions {
                break;
            }
            self.pace_arrival(&mut out, arrivals[user], run_start);
            self.run_adaptive_session(engine, cache, dashboard, adaptive, user, &mut out);
        }
        out
    }

    /// One live session: walk, execute, inspect, steer.
    fn run_adaptive_session(
        &self,
        engine: &dyn Dbms,
        cache: Option<&ShardedResultCache>,
        dashboard: &Dashboard,
        adaptive: &AdaptiveConfig,
        user: usize,
        out: &mut WorkerOutcome,
    ) {
        // Same per-user seed derivation as batch synthesis, so a scripted
        // and an adaptive run of one base seed start from the same walks.
        let seed = adaptive.base_seed ^ splitmix(user as u64 + 1);
        let model = adaptive.mix[user % adaptive.mix.len()].clone();
        let mut walk_rng = ChaCha8Rng::seed_from_u64(seed);
        // Pacing noise is kept off the walk stream: think-time draws must
        // not perturb action choice (cache hits change timings, never
        // walks).
        let mut pace_rng = ChaCha8Rng::seed_from_u64(splitmix(self.config.seed) ^ seed);
        let mut planner = SessionPlanner::new(dashboard, model);
        let collect = self.config.collect_fingerprints;
        let mut fps = Vec::new();
        let mut actions = Vec::new();

        let step = planner.initial_render();
        if collect {
            actions.push(step.description.clone());
        }
        let observed = self.execute_planned(engine, cache, &step, out, &mut fps);
        let mut pending = steer(&adaptive.policy, &planner, &step, &observed);

        for _ in 0..adaptive.steps_per_session {
            let (steered, step) = match pending.take() {
                Some((kind, action)) => {
                    match kind {
                        SteeringKind::BacktrackOnEmpty => out.steering.backtracks += 1,
                        SteeringKind::DrillTopGroup => out.steering.drills += 1,
                    }
                    (true, planner.apply(action))
                }
                None => match planner.plan_next(&mut walk_rng) {
                    Some(planned) => (false, planned),
                    None => break,
                },
            };
            out.interactions += 1;
            let pause = self.config.think_time.sample(&mut pace_rng);
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
            if collect {
                actions.push(step.description.clone());
            }
            let observed = self.execute_planned(engine, cache, &step, out, &mut fps);
            // Never steer twice in a row: a correction is given one normal
            // step to play out, which both bounds policy feedback loops and
            // keeps sessions from degenerating into pure reaction.
            pending = if steered {
                None
            } else {
                steer(&adaptive.policy, &planner, &step, &observed)
            };
        }

        if collect {
            out.fingerprints.push((user, fps));
            out.actions.push((user, actions));
        }
    }

    /// Execute one planned step's queries, recording latency, errors,
    /// fingerprints, and empty-result counts; returns per-query
    /// observations for the steering policy.
    fn execute_planned(
        &self,
        engine: &dyn Dbms,
        cache: Option<&ShardedResultCache>,
        step: &PlannedStep,
        out: &mut WorkerOutcome,
        fps: &mut Vec<u64>,
    ) -> Vec<(simba_core::graph::NodeId, Observed)> {
        let collect = self.config.collect_fingerprints;
        let mut observed = Vec::with_capacity(step.queries.len());
        for (node, query) in &step.queries {
            out.queries += 1;
            let executed = match cache {
                Some(cache) => cache
                    .execute_cached(engine, query)
                    .map(|(value, elapsed, _hit)| (Observed::Cached(value), elapsed)),
                None => engine
                    .execute(query)
                    .map(|o| (Observed::Owned(o.result), o.elapsed)),
            };
            match executed {
                Ok((obs, elapsed)) => {
                    out.latency.record(elapsed);
                    if let Some(result) = obs.result() {
                        if collect {
                            fps.push(fingerprint(result));
                        }
                        if result.is_empty() {
                            out.steering.empty_results += 1;
                        }
                    }
                    observed.push((*node, obs));
                }
                Err(_) => {
                    out.errors += 1;
                    if collect {
                        fps.push(ERROR_FINGERPRINT);
                    }
                    observed.push((*node, Observed::Errored));
                }
            }
        }
        observed
    }
}

/// Ask the policy for a steering action over the step's observations.
fn steer(
    policy: &AdaptivePolicy,
    planner: &SessionPlanner<'_>,
    step: &PlannedStep,
    observed: &[(simba_core::graph::NodeId, Observed)],
) -> Option<(SteeringKind, simba_core::actions::Action)> {
    if !policy.is_enabled() {
        return None;
    }
    let views: Vec<StepObservation<'_>> = observed
        .iter()
        .map(|(node, obs)| StepObservation {
            vis: *node,
            result: obs.result(),
        })
        .collect();
    policy.steer(
        planner.dashboard(),
        planner.state(),
        step.action.as_ref(),
        &views,
    )
}

fn rate(n: u64, denom: u64) -> f64 {
    if denom == 0 {
        0.0
    } else {
        n as f64 / denom as f64
    }
}

/// Order-insensitive content hash of a result set (FNV-1a over the
/// canonically sorted rows). Two results get equal fingerprints iff their
/// row multisets are byte-identical.
pub fn fingerprint(result: &ResultSet) -> u64 {
    let mut h = crate::hash::Fnv1a::new();
    for row in result.sorted_rows() {
        h.write(format!("{row:?}").as_bytes());
        h.write(&[0xFF]);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_store::Value;

    #[test]
    fn fingerprint_is_row_order_insensitive() {
        let a = ResultSet::new(
            vec!["x".to_string()],
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        );
        let b = ResultSet::new(
            vec!["x".to_string()],
            vec![vec![Value::Int(2)], vec![Value::Int(1)]],
        );
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = ResultSet::new(vec!["x".to_string()], vec![vec![Value::Int(3)]]);
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn think_time_samples_match_discipline() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(ThinkTime::None.sample(&mut rng), Duration::ZERO);
        assert_eq!(
            ThinkTime::Fixed(Duration::from_millis(3)).sample(&mut rng),
            Duration::from_millis(3)
        );
        let mean = Duration::from_millis(10);
        let n = 2_000;
        let total: Duration = (0..n)
            .map(|_| ThinkTime::Exponential { mean }.sample(&mut rng))
            .sum();
        let avg_ms = total.as_secs_f64() * 1_000.0 / n as f64;
        assert!((avg_ms - 10.0).abs() < 1.0, "mean {avg_ms}ms");
    }
}
