//! The concurrent workload scheduler.
//!
//! Replays pre-synthesized [`SessionScript`]s against one shared engine
//! from a pool of worker threads. Two arrival disciplines:
//!
//! * **Closed loop** — each worker picks the next unstarted session as soon
//!   as it finishes its current one (think-time paced). Models a fixed
//!   population of concurrent users; total concurrency = worker count.
//! * **Open loop** — sessions arrive on a Poisson schedule at a configured
//!   rate regardless of service speed, which is what exposes saturation:
//!   when the engine can't keep up, the measured queue delay grows without
//!   bound (Eichmann et al.'s argument for think-time/arrival-paced
//!   interactive benchmarks).

use crate::cache::{CacheConfig, ShardedResultCache};
use crate::histogram::LatencyHistogram;
use crate::report::{CacheReport, DriverReport, LatencySummary};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simba_core::session::batch::{splitmix, SessionScript};
use simba_engine::Dbms;
use simba_store::ResultSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pause inserted between a session's consecutive interactions.
#[derive(Debug, Clone)]
pub enum ThinkTime {
    /// No pacing: steps run back-to-back (throughput stress mode).
    None,
    Fixed(Duration),
    /// Exponentially distributed with the given mean.
    Exponential {
        mean: Duration,
    },
}

impl ThinkTime {
    fn sample(&self, rng: &mut ChaCha8Rng) -> Duration {
        match self {
            ThinkTime::None => Duration::ZERO,
            ThinkTime::Fixed(d) => *d,
            ThinkTime::Exponential { mean } => {
                let u: f64 = rng.gen_range(0.0..1.0);
                mean.mul_f64(-(1.0 - u).ln())
            }
        }
    }
}

/// When sessions become eligible to start.
#[derive(Debug, Clone)]
pub enum Arrival {
    /// Start whenever a worker frees up.
    Closed,
    /// Poisson arrivals at this rate (sessions per second).
    Open { rate_per_sec: f64 },
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Worker threads; `0` = `min(sessions, available_parallelism)`.
    pub workers: usize,
    pub think_time: ThinkTime,
    pub arrival: Arrival,
    /// Seed for think-time and arrival randomness.
    pub seed: u64,
    /// `Some` enables the shared result cache.
    pub cache: Option<CacheConfig>,
    /// Record a per-query result fingerprint (used by equivalence tests).
    pub collect_fingerprints: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            workers: 0,
            think_time: ThinkTime::None,
            arrival: Arrival::Closed,
            seed: 0,
            cache: None,
            collect_fingerprints: false,
        }
    }
}

/// Result of [`Driver::run`].
#[derive(Debug)]
pub struct DriverOutcome {
    pub report: DriverReport,
    /// Per session (outer, in script order): one fingerprint per query (in
    /// step/query order). Empty unless `collect_fingerprints` was set.
    pub fingerprints: Vec<Vec<u64>>,
}

/// Replays session scripts concurrently against one engine.
pub struct Driver {
    config: DriverConfig,
}

struct WorkerOutcome {
    latency: LatencyHistogram,
    queue_delay: LatencyHistogram,
    interactions: u64,
    queries: u64,
    errors: u64,
    fingerprints: Vec<(usize, Vec<u64>)>,
}

impl Driver {
    pub fn new(config: DriverConfig) -> Driver {
        Driver { config }
    }

    /// Run every script to completion and aggregate a [`DriverReport`].
    pub fn run(&self, engine: Arc<dyn Dbms>, scripts: &[SessionScript]) -> DriverOutcome {
        let workers = if self.config.workers == 0 {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(4)
        } else {
            self.config.workers
        }
        .min(scripts.len())
        .max(1);

        let cache = self
            .config
            .cache
            .clone()
            .map(|c| Arc::new(ShardedResultCache::new(c)));

        // Open-loop: absolute arrival offsets from run start (Poisson).
        let arrivals: Vec<Duration> = match self.config.arrival {
            Arrival::Closed => vec![Duration::ZERO; scripts.len()],
            Arrival::Open { rate_per_sec } => {
                assert!(
                    rate_per_sec > 0.0,
                    "open-loop arrival rate must be positive"
                );
                let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0x0A22_17A1);
                let mut at = 0.0f64;
                scripts
                    .iter()
                    .map(|_| {
                        let u: f64 = rng.gen_range(0.0..1.0);
                        at += -(1.0 - u).ln() / rate_per_sec;
                        Duration::from_secs_f64(at)
                    })
                    .collect()
            }
        };

        let next = AtomicUsize::new(0);
        let start = Instant::now();
        let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let engine = engine.as_ref();
                    let cache = cache.as_deref();
                    let next = &next;
                    let arrivals = &arrivals;
                    scope.spawn(move || {
                        self.worker_loop(engine, cache, scripts, arrivals, next, start)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let wall = start.elapsed();

        let mut latency = LatencyHistogram::new();
        let mut queue_delay = LatencyHistogram::new();
        let (mut interactions, mut queries, mut errors) = (0u64, 0u64, 0u64);
        let mut fingerprints: Vec<Vec<u64>> = vec![Vec::new(); scripts.len()];
        for w in outcomes {
            latency.merge(&w.latency);
            queue_delay.merge(&w.queue_delay);
            interactions += w.interactions;
            queries += w.queries;
            errors += w.errors;
            for (session, fps) in w.fingerprints {
                fingerprints[session] = fps;
            }
        }

        let report = DriverReport {
            engine: engine.name().to_string(),
            mode: match self.config.arrival {
                Arrival::Closed => "closed".to_string(),
                Arrival::Open { .. } => "open".to_string(),
            },
            sessions: scripts.len(),
            workers,
            scan_threads: engine.scan_threads(),
            wall_clock_ms: wall.as_secs_f64() * 1_000.0,
            interactions,
            queries,
            errors,
            throughput_qps: if wall.is_zero() {
                0.0
            } else {
                queries as f64 / wall.as_secs_f64()
            },
            latency: LatencySummary::from_histogram(&latency),
            queue_delay: match self.config.arrival {
                Arrival::Closed => None,
                Arrival::Open { .. } => Some(LatencySummary::from_histogram(&queue_delay)),
            },
            cache: cache
                .as_ref()
                .map(|c| CacheReport::new(&c.stats(), c.len())),
        };
        DriverOutcome {
            report,
            fingerprints,
        }
    }

    fn worker_loop(
        &self,
        engine: &dyn Dbms,
        cache: Option<&ShardedResultCache>,
        scripts: &[SessionScript],
        arrivals: &[Duration],
        next: &AtomicUsize,
        run_start: Instant,
    ) -> WorkerOutcome {
        let mut out = WorkerOutcome {
            latency: LatencyHistogram::new(),
            queue_delay: LatencyHistogram::new(),
            interactions: 0,
            queries: 0,
            errors: 0,
            fingerprints: Vec::new(),
        };
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(script) = scripts.get(i) else { break };

            // Open loop: honor the arrival schedule, then measure how late
            // the session actually started. (Closed loop has no arrival
            // times, so a delay sample would be meaningless — skip it.)
            if matches!(self.config.arrival, Arrival::Open { .. }) {
                let scheduled = arrivals[i];
                let now = run_start.elapsed();
                if now < scheduled {
                    std::thread::sleep(scheduled - now);
                }
                out.queue_delay
                    .record(run_start.elapsed().saturating_sub(scheduled));
            }

            // Asymmetric mix: a plain XOR would cancel the base seed when
            // driver and batch share it (script.seed already XORs it in).
            let mut rng = ChaCha8Rng::seed_from_u64(splitmix(self.config.seed) ^ script.seed);
            let mut fps = Vec::new();
            for (step_idx, step) in script.steps.iter().enumerate() {
                if step_idx > 0 {
                    out.interactions += 1;
                    let pause = self.config.think_time.sample(&mut rng);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                for sq in &step.queries {
                    out.queries += 1;
                    // Fingerprinting clones and sorts the whole result set;
                    // keep it out of the measured path unless asked for.
                    let want_fp = self.config.collect_fingerprints;
                    let executed =
                        match cache {
                            Some(cache) => cache.execute_cached(engine, &sq.query).map(
                                |(value, elapsed, _hit)| {
                                    (want_fp.then(|| fingerprint(&value.result)), elapsed)
                                },
                            ),
                            None => engine
                                .execute(&sq.query)
                                .map(|o| (want_fp.then(|| fingerprint(&o.result)), o.elapsed)),
                        };
                    match executed {
                        Ok((fp, elapsed)) => {
                            out.latency.record(elapsed);
                            fps.extend(fp);
                        }
                        Err(_) => out.errors += 1,
                    }
                }
            }
            if self.config.collect_fingerprints {
                out.fingerprints.push((i, fps));
            }
        }
        out
    }
}

/// Order-insensitive content hash of a result set (FNV-1a over the
/// canonically sorted rows). Two results get equal fingerprints iff their
/// row multisets are byte-identical.
pub fn fingerprint(result: &ResultSet) -> u64 {
    let mut h = crate::hash::Fnv1a::new();
    for row in result.sorted_rows() {
        h.write(format!("{row:?}").as_bytes());
        h.write(&[0xFF]);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_store::Value;

    #[test]
    fn fingerprint_is_row_order_insensitive() {
        let a = ResultSet::new(
            vec!["x".to_string()],
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        );
        let b = ResultSet::new(
            vec!["x".to_string()],
            vec![vec![Value::Int(2)], vec![Value::Int(1)]],
        );
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = ResultSet::new(vec!["x".to_string()], vec![vec![Value::Int(3)]]);
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn think_time_samples_match_discipline() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(ThinkTime::None.sample(&mut rng), Duration::ZERO);
        assert_eq!(
            ThinkTime::Fixed(Duration::from_millis(3)).sample(&mut rng),
            Duration::from_millis(3)
        );
        let mean = Duration::from_millis(10);
        let n = 2_000;
        let total: Duration = (0..n)
            .map(|_| ThinkTime::Exponential { mean }.sample(&mut rng))
            .sum();
        let avg_ms = total.as_secs_f64() * 1_000.0 / n as f64;
        assert!((avg_ms - 10.0).abs() < 1.0, "mean {avg_ms}ms");
    }
}
