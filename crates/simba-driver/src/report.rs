//! Driver run reports: throughput, tail latency, cache effectiveness.
//!
//! One report type — [`RunReport`] — covers every session mode (scripted,
//! adaptive, idebench) and carries an explicit [`RunReport::SCHEMA_VERSION`]
//! so downstream parsers can detect format drift. Reports serialize to JSON
//! and deserialize back losslessly (see the round-trip test).

use crate::cache::CacheStats;
use crate::histogram::LatencyHistogram;
use serde::{Deserialize, Serialize};

/// Latency quantiles in microseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    pub count: u64,
    pub mean_us: f64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
    pub max_us: f64,
}

impl LatencySummary {
    pub fn from_histogram(h: &LatencyHistogram) -> LatencySummary {
        let us = |ns: u64| ns as f64 / 1_000.0;
        LatencySummary {
            count: h.count(),
            mean_us: h.mean_ns() / 1_000.0,
            p50_us: us(h.quantile_ns(0.50)),
            p95_us: us(h.quantile_ns(0.95)),
            p99_us: us(h.quantile_ns(0.99)),
            max_us: us(h.max_ns()),
        }
    }
}

/// Cache counters plus the derived hit rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheReport {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    /// Misses served by another caller's in-flight execution
    /// (single-flight coalescing).
    pub coalesced: u64,
    /// Full invalidations (`register` of a replacement table).
    pub invalidations: u64,
    pub hit_rate: f64,
    pub entries: usize,
}

impl CacheReport {
    pub fn new(stats: &CacheStats, entries: usize) -> CacheReport {
        CacheReport {
            hits: stats.hits,
            misses: stats.misses,
            insertions: stats.insertions,
            evictions: stats.evictions,
            coalesced: stats.coalesced,
            invalidations: stats.invalidations,
            hit_rate: stats.hit_rate(),
            entries,
        }
    }
}

/// Steering activity of one adaptive run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteeringReport {
    /// Enabled rules, e.g. `"backtrack_on_empty+drill_top_group"`.
    pub policy: String,
    /// Filters undone because they emptied a chart.
    pub backtracks: u64,
    /// Dominant categories pinned by mark click.
    pub drills: u64,
    /// Successful queries that returned zero rows.
    pub empty_results: u64,
    /// `backtracks / interactions`.
    pub backtrack_rate: f64,
    /// `empty_results / (queries - errors)`.
    pub empty_result_rate: f64,
}

/// The aggregate outcome of one driver run, in any session mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Report format version ([`RunReport::SCHEMA_VERSION`]); bump on any
    /// field addition, removal, or meaning change.
    pub schema_version: u32,
    /// Name of the scenario that produced this report (`"adhoc"` for
    /// direct `Driver::run` / `run_adaptive` calls outside a scenario).
    pub scenario_name: String,
    /// Engine under test.
    pub engine: String,
    /// `"closed"` or `"open"` (arrival pacing).
    pub mode: String,
    /// Session source: `"scripted"` (replayed pre-synthesized scripts),
    /// `"adaptive"` (live result-steered walks), or `"idebench"`
    /// (stochastic filter storms).
    pub session_mode: String,
    pub sessions: usize,
    pub workers: usize,
    /// Intra-query scan parallelism the engine under test was configured
    /// with (morsel-parallel worker threads; `1` = sequential scans).
    pub scan_threads: usize,
    pub wall_clock_ms: f64,
    /// Interactions replayed (excludes the initial renders).
    pub interactions: u64,
    /// Queries executed (cache hits included).
    pub queries: u64,
    /// Queries that returned an engine error.
    pub errors: u64,
    /// Queries per second of wall-clock time.
    pub throughput_qps: f64,
    /// Per-query service latency (cache-hit lookups count as service time).
    pub latency: LatencySummary,
    /// Open-loop only: how long sessions waited past their scheduled
    /// arrival before a worker picked them up.
    pub queue_delay: Option<LatencySummary>,
    /// Steering-capable sources only: steering counters and rates.
    pub steering: Option<SteeringReport>,
    pub cache: Option<CacheReport>,
}

/// Pre-scenario name for `Driver::run` / `run_adaptive` calls made outside
/// `Driver::execute`.
pub const ADHOC_SCENARIO: &str = "adhoc";

impl RunReport {
    /// Version of the JSON report format. History:
    /// * 1 — implicit (pre-versioning `DriverReport`), scripted/adaptive.
    /// * 2 — added `schema_version` + `scenario_name`; idebench mode.
    pub const SCHEMA_VERSION: u32 = 2;

    /// Pretty JSON, for harness output files.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parse a report back from JSON, as downstream tooling would.
    ///
    /// Rejects payloads whose `schema_version` differs from
    /// [`Self::SCHEMA_VERSION`] — a field-compatible report from a newer
    /// (or corrupted) writer must fail loudly, not parse into something
    /// whose fields may have changed meaning.
    pub fn from_json(json: &str) -> Result<RunReport, String> {
        let report: RunReport = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if report.schema_version != Self::SCHEMA_VERSION {
            return Err(format!(
                "unsupported report schema_version {} (this reader supports {})",
                report.schema_version,
                Self::SCHEMA_VERSION
            ));
        }
        Ok(report)
    }
}

/// Former name of [`RunReport`], kept for one release while downstream
/// callers migrate.
pub type DriverReport = RunReport;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut h = LatencyHistogram::new();
        h.record_ns(5_000);
        RunReport {
            schema_version: RunReport::SCHEMA_VERSION,
            scenario_name: "adaptive-shootout".to_string(),
            engine: "duckdb-like".to_string(),
            mode: "closed".to_string(),
            session_mode: "adaptive".to_string(),
            sessions: 4,
            workers: 2,
            scan_threads: 1,
            wall_clock_ms: 12.5,
            interactions: 20,
            queries: 44,
            errors: 0,
            throughput_qps: 3520.0,
            latency: LatencySummary::from_histogram(&h),
            queue_delay: None,
            steering: Some(SteeringReport {
                policy: "backtrack_on_empty+drill_top_group".to_string(),
                backtracks: 3,
                drills: 2,
                empty_results: 5,
                backtrack_rate: 0.15,
                empty_result_rate: 0.11,
            }),
            cache: Some(CacheReport::new(
                &CacheStats {
                    hits: 30,
                    misses: 14,
                    insertions: 14,
                    evictions: 0,
                    coalesced: 2,
                    invalidations: 0,
                },
                14,
            )),
        }
    }

    #[test]
    fn summary_reflects_histogram() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record_ns(i * 10_000); // 10µs .. 1ms
        }
        let s = LatencySummary::from_histogram(&h);
        assert_eq!(s.count, 100);
        assert!(s.p50_us > 400.0 && s.p50_us < 600.0, "{}", s.p50_us);
        assert!(s.p99_us <= s.max_us);
        assert!(s.mean_us > 0.0);
    }

    #[test]
    fn report_serializes_to_json() {
        let report = sample();
        let json = report.to_json();
        assert!(json.contains("\"schema_version\": 2"), "{json}");
        assert!(
            json.contains("\"scenario_name\": \"adaptive-shootout\""),
            "{json}"
        );
        assert!(json.contains("\"engine\": \"duckdb-like\""), "{json}");
        assert!(json.contains("\"hit_rate\""), "{json}");
        assert!(json.contains("\"queue_delay\": null"), "{json}");
        assert!(json.contains("\"scan_threads\": 1"), "{json}");
        assert!(json.contains("\"session_mode\": \"adaptive\""), "{json}");
        assert!(json.contains("\"backtrack_rate\""), "{json}");
        assert!(json.contains("\"coalesced\""), "{json}");
    }

    /// The format-drift tripwire: serialize → deserialize → compare. Any
    /// field whose name, type, or optionality changes without a
    /// `SCHEMA_VERSION` bump breaks this test first.
    #[test]
    fn report_round_trips_through_json() {
        let report = sample();
        let parsed = RunReport::from_json(&report.to_json()).expect("report parses back");
        assert_eq!(parsed, report);

        // Optional sections round-trip as absent too.
        let mut bare = sample();
        bare.steering = None;
        bare.cache = None;
        bare.queue_delay = Some(bare.latency.clone());
        let parsed = RunReport::from_json(&bare.to_json()).expect("bare report parses back");
        assert_eq!(parsed, bare);
    }

    #[test]
    fn schema_version_gates_unversioned_payloads() {
        // A v1 payload (no schema_version / scenario_name) must fail loudly
        // rather than parse into a half-filled report.
        let legacy = r#"{ "engine": "duckdb-like", "mode": "closed" }"#;
        assert!(RunReport::from_json(legacy).is_err());
    }

    #[test]
    fn schema_version_gates_future_payloads() {
        // A structurally identical report stamped with a different version
        // must be rejected, not silently reinterpreted.
        let future = sample()
            .to_json()
            .replace("\"schema_version\": 2", "\"schema_version\": 3");
        let err = RunReport::from_json(&future).unwrap_err();
        assert!(err.contains("schema_version 3"), "{err}");
    }
}
