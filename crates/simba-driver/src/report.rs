//! Driver run reports: throughput, tail latency, cache effectiveness.
//!
//! One report type — [`RunReport`] — covers every session mode (scripted,
//! adaptive, idebench) and carries an explicit [`RunReport::SCHEMA_VERSION`]
//! so downstream parsers can detect format drift. Reports serialize to JSON
//! and deserialize back losslessly (see the round-trip test).

use crate::cache::CacheStats;
use crate::histogram::LatencyHistogram;
use serde::{Deserialize, Serialize};
use simba_obs::MetricsSnapshot;

/// Latency quantiles in microseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    pub count: u64,
    pub mean_us: f64,
    pub p50_us: f64,
    pub p95_us: f64,
    pub p99_us: f64,
    pub max_us: f64,
}

impl LatencySummary {
    pub fn from_histogram(h: &LatencyHistogram) -> LatencySummary {
        let us = |ns: u64| ns as f64 / 1_000.0;
        LatencySummary {
            count: h.count(),
            mean_us: h.mean_ns() / 1_000.0,
            p50_us: us(h.quantile_ns(0.50)),
            p95_us: us(h.quantile_ns(0.95)),
            p99_us: us(h.quantile_ns(0.99)),
            max_us: us(h.max_ns()),
        }
    }
}

/// Cache counters plus the derived hit rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheReport {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    /// Misses served by another caller's in-flight execution
    /// (single-flight coalescing).
    pub coalesced: u64,
    /// Full invalidations (`register` of a replacement table).
    pub invalidations: u64,
    /// Leader executions that errored: passed to that flight's followers
    /// but never cached, so later callers re-execute.
    pub error_passthrough: u64,
    pub hit_rate: f64,
    pub entries: usize,
}

impl CacheReport {
    pub fn new(stats: &CacheStats, entries: usize) -> CacheReport {
        CacheReport {
            hits: stats.hits,
            misses: stats.misses,
            insertions: stats.insertions,
            evictions: stats.evictions,
            coalesced: stats.coalesced,
            invalidations: stats.invalidations,
            error_passthrough: stats.error_passthrough,
            hit_rate: stats.hit_rate(),
            entries,
        }
    }
}

/// What the chaos wrapper *injected* during a faulted run (the supply
/// side). The demand side — what sessions actually observed after caching,
/// coalescing, and retries — is [`ResilienceReport`]. With a shared cache
/// the two legitimately differ: a cache hit never reaches the wrapper.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Injected latency-spike sleeps.
    pub latency_spikes: u64,
    /// Injected transient (retryable) errors.
    pub transient: u64,
    /// Injected permanent errors.
    pub permanent: u64,
    /// Injected panics.
    pub panics: u64,
}

/// Error taxonomy and recovery counters of a resilience-enabled run: what
/// the driver observed per attempt, what it did about it, and what was
/// left degraded at the end.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Stable description of the active policy
    /// ([`ResiliencePolicy::describe`](crate::resilience::ResiliencePolicy::describe)).
    pub policy: String,
    /// Attempts abandoned at the per-query deadline.
    pub timeouts: u64,
    /// Attempts that failed with a transient (retryable) error.
    pub transient_errors: u64,
    /// Attempts that failed with a permanent error.
    pub permanent_errors: u64,
    /// Queries shed without execution by an open circuit breaker.
    pub shed: u64,
    /// Attempts that panicked and were caught (treated as transient).
    pub panics_recovered: u64,
    /// Retry attempts issued (attempts beyond each query's first).
    pub retries: u64,
    /// Queries whose final outcome was success after ≥ 1 retry.
    pub retries_succeeded: u64,
    /// Breaker transitions to open.
    pub breaker_opens: u64,
    /// Breaker transitions to half-open.
    pub breaker_half_opens: u64,
    /// Breaker transitions back to closed.
    pub breaker_closes: u64,
    /// Per-session degraded flags, session-index order. A session is
    /// degraded when any of its queries ended in a final failure: exhausted
    /// retries, a permanent error, or a breaker shed.
    pub degraded: Vec<bool>,
    /// `degraded.iter().filter(|d| **d).count()`, precomputed for
    /// threshold checks and dashboards.
    pub degraded_sessions: u64,
}

/// Totals of engine-reported execution statistics, aggregated over the
/// run's *fresh* executions — a cache hit or coalesced single-flight wait
/// does not re-count the work its leader already did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecReport {
    /// Rows actually read from storage (rows inside zone-pruned morsels
    /// are never read and never counted).
    pub rows_scanned: u64,
    /// Rows that survived all filter predicates.
    pub rows_matched: u64,
    /// Groups materialized by aggregation.
    pub groups: u64,
    /// Morsels skipped whole via zone-map pruning.
    pub morsels_pruned: u64,
}

/// Session-delta execution totals: how often retained selections / group
/// states were reused across a session's consecutive steps, and what the
/// reuse saved. Hits, group hits, and rows saved are aggregated from
/// per-query [`ExecStats`](simba_engine::ExecStats) over fresh executions;
/// misses, invalidations, and resets come from the per-session stores.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaReport {
    /// Queries whose scan was seeded from a retained selection (exact
    /// requery or provable refinement).
    pub hits: u64,
    /// Queries answered from retained group states without touching the
    /// table at all (same aggregation shape, new ORDER BY / LIMIT).
    pub group_hits: u64,
    /// Queries that consulted a session store and found nothing reusable.
    pub misses: u64,
    /// Retained entries dropped because the catalog moved underneath them
    /// (table re-registered or appended to since capture).
    pub invalidations: u64,
    /// Session chains reset after an errored step.
    pub resets: u64,
    /// Rows the seeded/state-reusing scans did not have to examine,
    /// relative to fresh full scans of the same queries.
    pub rows_saved: u64,
}

/// One execution phase's share of attributed time, derived from the
/// `*.phase.*` histograms of a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Phase span name, e.g. `"engine.scan"`.
    pub phase: String,
    /// Times the phase ran.
    pub count: u64,
    /// Total time attributed to the phase, in milliseconds.
    pub total_ms: f64,
    /// Mean duration in microseconds.
    pub mean_us: f64,
    /// Median duration in microseconds.
    pub p50_us: u64,
    /// 99th-percentile duration in microseconds.
    pub p99_us: u64,
    /// `total_ms` over the summed `total_ms` of all listed phases. Phases
    /// nest (`driver.step` contains `engine.scan`), so shares describe
    /// relative weight, not a partition of wall-clock time.
    pub share: f64,
}

/// Derive the per-phase time breakdown from a snapshot's `*.phase.*`
/// histograms, heaviest phase first.
pub fn phase_breakdown(metrics: &MetricsSnapshot) -> Vec<PhaseBreakdown> {
    let phases: Vec<_> = metrics
        .histograms
        .iter()
        .filter(|h| h.name.contains(".phase."))
        .collect();
    let total: f64 = phases.iter().map(|h| h.total_ms).sum();
    let mut out: Vec<PhaseBreakdown> = phases
        .into_iter()
        .map(|h| PhaseBreakdown {
            phase: h.name.replacen(".phase.", ".", 1),
            count: h.count,
            total_ms: h.total_ms,
            mean_us: h.mean_us,
            p50_us: h.p50_us,
            p99_us: h.p99_us,
            share: if total > 0.0 { h.total_ms / total } else { 0.0 },
        })
        .collect();
    out.sort_by(|a, b| {
        b.total_ms
            .total_cmp(&a.total_ms)
            .then(a.phase.cmp(&b.phase))
    });
    out
}

/// Steering activity of one adaptive run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteeringReport {
    /// Enabled rules, e.g. `"backtrack_on_empty+drill_top_group"`.
    pub policy: String,
    /// Filters undone because they emptied a chart.
    pub backtracks: u64,
    /// Dominant categories pinned by mark click.
    pub drills: u64,
    /// Successful queries that returned zero rows.
    pub empty_results: u64,
    /// `backtracks / interactions`.
    pub backtrack_rate: f64,
    /// `empty_results / (queries - errors)`.
    pub empty_result_rate: f64,
}

/// The aggregate outcome of one driver run, in any session mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Report format version ([`RunReport::SCHEMA_VERSION`]); bump on any
    /// field addition, removal, or meaning change.
    pub schema_version: u32,
    /// Name of the scenario that produced this report (`"adhoc"` for
    /// direct `Driver::run` / `run_adaptive` calls outside a scenario).
    pub scenario_name: String,
    /// Engine under test.
    pub engine: String,
    /// `"closed"` or `"open"` (arrival pacing).
    pub mode: String,
    /// Session source: `"scripted"` (replayed pre-synthesized scripts),
    /// `"adaptive"` (live result-steered walks), or `"idebench"`
    /// (stochastic filter storms).
    pub session_mode: String,
    pub sessions: usize,
    pub workers: usize,
    /// Intra-query scan parallelism the engine under test was configured
    /// with (morsel-parallel worker threads; `1` = sequential scans).
    pub scan_threads: usize,
    pub wall_clock_ms: f64,
    /// Interactions replayed (excludes the initial renders).
    pub interactions: u64,
    /// Queries executed (cache hits included).
    pub queries: u64,
    /// Queries that returned an engine error.
    pub errors: u64,
    /// Queries per second of wall-clock time.
    pub throughput_qps: f64,
    /// Per-query service latency (cache-hit lookups count as service time).
    pub latency: LatencySummary,
    /// Open-loop only: how long sessions waited past their scheduled
    /// arrival before a worker picked them up.
    pub queue_delay: Option<LatencySummary>,
    /// Steering-capable sources only: steering counters and rates.
    pub steering: Option<SteeringReport>,
    pub cache: Option<CacheReport>,
    /// Engine execution totals (rows scanned/matched, groups, morsels
    /// pruned) over the run's fresh executions.
    pub exec: ExecReport,
    /// Session-delta reuse totals; present exactly when the run executed
    /// with session-delta enabled (all-zero counters are meaningful there:
    /// they say the workload offered no reusable refinements).
    pub delta: Option<DeltaReport>,
    /// Order-sensitive digest over the run's per-session result
    /// fingerprints ([`crate::fingerprint::digest`]); present exactly when
    /// the run collected fingerprints. Two runs of the same workload are
    /// result-identical iff their digests match — what the `delta-shootout`
    /// CI gate asserts between delta-on and delta-off runs.
    #[serde(default)]
    pub fingerprint_digest: Option<u64>,
    /// Open-loop only: the coordinated-omission-corrected view — per-query
    /// latency measured from the *intended* start, so a session's queue
    /// delay lands on its first query instead of being silently absorbed.
    pub response: Option<LatencySummary>,
    /// Injected-fault totals; present exactly when the run had an active
    /// `FaultSpec` (chaos runs).
    pub fault: Option<FaultReport>,
    /// Error taxonomy, retry/breaker counters, and per-session degraded
    /// flags; present when the run used the resilient execution path (an
    /// active `ResilienceSpec` or `FaultSpec`).
    pub resilience: Option<ResilienceReport>,
    /// Run-scoped metrics registry snapshot; present when the run was
    /// executed with metrics collection enabled.
    pub metrics: Option<MetricsSnapshot>,
    /// Per-phase attributed time derived from `metrics` (heaviest first);
    /// present exactly when `metrics` is.
    pub phase_breakdown: Option<Vec<PhaseBreakdown>>,
}

/// Pre-scenario name for `Driver::run` / `run_adaptive` calls made outside
/// `Driver::execute`.
pub const ADHOC_SCENARIO: &str = "adhoc";

impl RunReport {
    /// Version of the JSON report format. History:
    /// * 1 — implicit (pre-versioning `DriverReport`), scripted/adaptive.
    /// * 2 — added `schema_version` + `scenario_name`; idebench mode.
    /// * 3 — added `exec` totals, open-loop `response` (coordinated-
    ///   omission-corrected latency), and optional `metrics` +
    ///   `phase_breakdown` observability sections.
    /// * 4 — added the resilience surface: optional `fault` (injected-fault
    ///   totals) and `resilience` (error taxonomy, retry + breaker
    ///   counters, per-session degraded flags) sections, plus
    ///   `cache.error_passthrough`.
    /// * 5 — added the optional `delta` section (session-delta reuse
    ///   totals, present exactly when the run executed with session-delta
    ///   enabled) and `fingerprint_digest` (present exactly when the run
    ///   collected result fingerprints).
    pub const SCHEMA_VERSION: u32 = 5;

    /// Pretty JSON, for harness output files.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Parse a report back from JSON, as downstream tooling would.
    ///
    /// Rejects payloads whose `schema_version` differs from
    /// [`Self::SCHEMA_VERSION`] — a field-compatible report from a newer
    /// (or corrupted) writer must fail loudly, not parse into something
    /// whose fields may have changed meaning.
    pub fn from_json(json: &str) -> Result<RunReport, String> {
        let report: RunReport = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if report.schema_version != Self::SCHEMA_VERSION {
            return Err(format!(
                "unsupported report schema_version {} (this reader supports {})",
                report.schema_version,
                Self::SCHEMA_VERSION
            ));
        }
        Ok(report)
    }
}

/// Former name of [`RunReport`], kept for one release while downstream
/// callers migrate.
pub type DriverReport = RunReport;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut h = LatencyHistogram::new();
        h.record_ns(5_000);
        RunReport {
            schema_version: RunReport::SCHEMA_VERSION,
            scenario_name: "adaptive-shootout".to_string(),
            engine: "duckdb-like".to_string(),
            mode: "closed".to_string(),
            session_mode: "adaptive".to_string(),
            sessions: 4,
            workers: 2,
            scan_threads: 1,
            wall_clock_ms: 12.5,
            interactions: 20,
            queries: 44,
            errors: 0,
            throughput_qps: 3520.0,
            latency: LatencySummary::from_histogram(&h),
            queue_delay: None,
            steering: Some(SteeringReport {
                policy: "backtrack_on_empty+drill_top_group".to_string(),
                backtracks: 3,
                drills: 2,
                empty_results: 5,
                backtrack_rate: 0.15,
                empty_result_rate: 0.11,
            }),
            cache: Some(CacheReport::new(
                &CacheStats {
                    hits: 30,
                    misses: 14,
                    insertions: 14,
                    evictions: 0,
                    coalesced: 2,
                    invalidations: 0,
                    error_passthrough: 0,
                },
                14,
            )),
            exec: ExecReport {
                rows_scanned: 52_000,
                rows_matched: 8_400,
                groups: 120,
                morsels_pruned: 6,
            },
            delta: None,
            fingerprint_digest: None,
            response: None,
            fault: None,
            resilience: None,
            metrics: None,
            phase_breakdown: None,
        }
    }

    fn sample_metrics() -> MetricsSnapshot {
        use simba_obs::{CounterEntry, HistogramEntry};
        MetricsSnapshot {
            counters: vec![CounterEntry {
                name: "engine.rows_scanned".into(),
                value: 52_000,
            }],
            gauges: vec![],
            histograms: vec![
                HistogramEntry {
                    name: "engine.phase.plan".into(),
                    count: 44,
                    total_ms: 0.4,
                    mean_us: 9.1,
                    p50_us: 8,
                    p95_us: 14,
                    p99_us: 15,
                    max_us: 21,
                },
                HistogramEntry {
                    name: "engine.phase.scan".into(),
                    count: 44,
                    total_ms: 3.6,
                    mean_us: 81.8,
                    p50_us: 70,
                    p95_us: 160,
                    p99_us: 190,
                    max_us: 260,
                },
            ],
        }
    }

    #[test]
    fn summary_reflects_histogram() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record_ns(i * 10_000); // 10µs .. 1ms
        }
        let s = LatencySummary::from_histogram(&h);
        assert_eq!(s.count, 100);
        assert!(s.p50_us > 400.0 && s.p50_us < 600.0, "{}", s.p50_us);
        assert!(s.p99_us <= s.max_us);
        assert!(s.mean_us > 0.0);
    }

    #[test]
    fn report_serializes_to_json() {
        let report = sample();
        let json = report.to_json();
        assert!(json.contains("\"schema_version\": 5"), "{json}");
        assert!(json.contains("\"rows_scanned\": 52000"), "{json}");
        assert!(json.contains("\"morsels_pruned\": 6"), "{json}");
        assert!(json.contains("\"metrics\": null"), "{json}");
        assert!(
            json.contains("\"scenario_name\": \"adaptive-shootout\""),
            "{json}"
        );
        assert!(json.contains("\"engine\": \"duckdb-like\""), "{json}");
        assert!(json.contains("\"hit_rate\""), "{json}");
        assert!(json.contains("\"queue_delay\": null"), "{json}");
        assert!(json.contains("\"scan_threads\": 1"), "{json}");
        assert!(json.contains("\"session_mode\": \"adaptive\""), "{json}");
        assert!(json.contains("\"backtrack_rate\""), "{json}");
        assert!(json.contains("\"coalesced\""), "{json}");
    }

    /// The format-drift tripwire: serialize → deserialize → compare. Any
    /// field whose name, type, or optionality changes without a
    /// `SCHEMA_VERSION` bump breaks this test first.
    #[test]
    fn report_round_trips_through_json() {
        let report = sample();
        let parsed = RunReport::from_json(&report.to_json()).expect("report parses back");
        assert_eq!(parsed, report);

        // Optional sections round-trip as absent too.
        let mut bare = sample();
        bare.steering = None;
        bare.cache = None;
        bare.queue_delay = Some(bare.latency.clone());
        let parsed = RunReport::from_json(&bare.to_json()).expect("bare report parses back");
        assert_eq!(parsed, bare);

        // ... and the v3 observability sections round-trip when present.
        let mut full = sample();
        full.response = Some(full.latency.clone());
        full.metrics = Some(sample_metrics());
        full.phase_breakdown = Some(phase_breakdown(full.metrics.as_ref().unwrap()));
        let parsed = RunReport::from_json(&full.to_json()).expect("full report parses back");
        assert_eq!(parsed, full);

        // ... and so do the v4 resilience sections.
        let mut chaotic = sample();
        chaotic.fault = Some(FaultReport {
            latency_spikes: 4,
            transient: 9,
            permanent: 1,
            panics: 2,
        });
        chaotic.resilience = Some(ResilienceReport {
            policy: "deadline=250ms retries=3 backoff=5..80ms".to_string(),
            timeouts: 1,
            transient_errors: 9,
            permanent_errors: 1,
            shed: 0,
            panics_recovered: 2,
            retries: 12,
            retries_succeeded: 11,
            breaker_opens: 0,
            breaker_half_opens: 0,
            breaker_closes: 0,
            degraded: vec![false, true, false, false],
            degraded_sessions: 1,
        });
        let parsed = RunReport::from_json(&chaotic.to_json()).expect("chaos report parses back");
        assert_eq!(parsed, chaotic);
        let json = chaotic.to_json();
        assert!(json.contains("\"panics_recovered\": 2"), "{json}");
        assert!(json.contains("\"degraded_sessions\": 1"), "{json}");
        assert!(json.contains("\"latency_spikes\": 4"), "{json}");

        // ... and the v5 session-delta section.
        let mut deltaed = sample();
        deltaed.delta = Some(DeltaReport {
            hits: 12,
            group_hits: 3,
            misses: 8,
            invalidations: 1,
            resets: 0,
            rows_saved: 410_000,
        });
        deltaed.fingerprint_digest = Some(0x5EED_F00D);
        let parsed = RunReport::from_json(&deltaed.to_json()).expect("delta report parses back");
        assert_eq!(parsed, deltaed);
        let json = deltaed.to_json();
        assert!(json.contains("\"group_hits\": 3"), "{json}");
        assert!(json.contains("\"rows_saved\": 410000"), "{json}");
        assert!(
            json.contains(&format!("\"fingerprint_digest\": {}", 0x5EED_F00Du64)),
            "{json}"
        );
    }

    #[test]
    fn phase_breakdown_orders_by_weight_and_shares_sum_to_one() {
        let phases = phase_breakdown(&sample_metrics());
        assert_eq!(phases.len(), 2, "counters are not phases");
        assert_eq!(phases[0].phase, "engine.scan", "heaviest first");
        assert_eq!(phases[1].phase, "engine.plan");
        let total: f64 = phases.iter().map(|p| p.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to 1, got {total}");
        assert!(phases[0].share > phases[1].share);
    }

    #[test]
    fn schema_version_gates_unversioned_payloads() {
        // A v1 payload (no schema_version / scenario_name) must fail loudly
        // rather than parse into a half-filled report.
        let legacy = r#"{ "engine": "duckdb-like", "mode": "closed" }"#;
        assert!(RunReport::from_json(legacy).is_err());
    }

    #[test]
    fn schema_version_gates_future_payloads() {
        // A structurally identical report stamped with a different version
        // must be rejected, not silently reinterpreted.
        let future = sample()
            .to_json()
            .replace("\"schema_version\": 5", "\"schema_version\": 6");
        let err = RunReport::from_json(&future).unwrap_err();
        assert!(err.contains("schema_version 6"), "{err}");
    }
}
