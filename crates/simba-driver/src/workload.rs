//! The unified workload API: declarative scenarios over every session mode.
//!
//! A [`ScenarioSpec`] is a complete, serde-serializable description of one
//! driver run — dataset, scale, seed, engine (+ scan threads), session
//! source (scripted / adaptive / idebench), pacing, cache, and worker
//! count. [`Driver::execute`] resolves a spec into tables, dashboards,
//! engines, and a [`SessionSource`](crate::SessionSource), and runs it through the one concurrent
//! loop ([`Driver::run_source`]). Everything that used to require a
//! dedicated binary is now a data file:
//!
//! ```
//! use simba_driver::workload::{ScenarioSpec, SourceSpec};
//! use simba_driver::Driver;
//!
//! let mut spec = ScenarioSpec::new("doc-smoke", "customer_service");
//! spec.rows = 500;
//! spec.sessions = 2;
//! spec.steps_per_session = 3;
//! spec.source = SourceSpec::Adaptive {
//!     models: vec![],
//!     backtrack_on_empty: true,
//!     drill_into_top_group: true,
//! };
//! spec.collect_fingerprints = true;
//!
//! // Specs round-trip through JSON, so scenarios ship as data files.
//! let json = spec.to_json();
//! let parsed = ScenarioSpec::from_json(&json).unwrap();
//! let outcome = Driver::execute(&parsed).unwrap();
//! assert_eq!(outcome.report.session_mode, "adaptive");
//! assert_eq!(outcome.report.scenario_name, "doc-smoke");
//! assert!(outcome.report.queries > 0);
//! ```
//!
//! Scale can be named instead of counted: the `size` field takes a
//! [`DatasetSize`] label from the paper's grid (Table 3) and overrides
//! `rows`, so a spec file can say `"size": "10M"`:
//!
//! ```
//! use simba_driver::workload::ScenarioSpec;
//!
//! let mut spec = ScenarioSpec::new("tiered", "supply_chain");
//! spec.size = Some("10K".into());
//! assert_eq!(spec.effective_rows().unwrap(), 10_000);
//! ```
//!
//! The [`registry`] holds the built-in scenarios (`smoke`,
//! `concurrent-shootout`, `adaptive-shootout`, `idebench`, `perf-report`,
//! the fault-injection suite `chaos`, plus the [`datagen`]
//! generation-throughput sweep `datagen-sweep`) that
//! the `simba-bench` CLI exposes as `bench --scenario <name>`; adding a
//! new workload means writing a spec (or a suite-builder function) plus,
//! at most, a new [`SessionSource`](crate::SessionSource) impl — never a new binary.
//!
//! # Determinism
//!
//! `Driver::execute` derives every seed from `spec.seed` exactly as the
//! legacy `Driver::run` / `run_adaptive` entry points did from their
//! configs, so a spec-driven run is byte-identical (action sequences and
//! result fingerprints) to the hand-assembled equivalent — the
//! `scenario_determinism` integration test pins this.

use crate::cache::CacheConfig;
use crate::driver::{Arrival, Driver, DriverConfig, DriverOutcome, ThinkTime};
use crate::report::FaultReport;
use crate::resilience::ResiliencePolicy;
use serde::{Deserialize, Serialize};
use simba_core::dashboard::Dashboard;
use simba_core::markov::MarkovModel;
use simba_core::session::adaptive::AdaptivePolicy;
use simba_core::session::batch::{synthesize_scripts, BatchConfig};
use simba_core::session::source::{AdaptiveSource, AdaptiveWalkConfig, ScriptedSource};
use simba_core::spec::builtin::builtin;
use simba_data::{DashboardDataset, DatasetSize};
use simba_engine::{Dbms, EngineKind, FaultConfig, FaultInjectingDbms};
use simba_idebench::{ActionProbs, IdebenchSource};
use simba_store::Table;
use std::sync::Arc;
use std::time::Duration;

pub mod datagen;
pub mod registry;

/// Everything wrong a spec can be before a single query runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    UnknownDataset(String),
    UnknownEngine(String),
    UnknownModel(String),
    /// A remote engine address that cannot be a `host:port` (caught at
    /// validation time, not at connect time).
    InvalidAddr(String),
    /// A well-formed remote address that did not answer the dial.
    RemoteUnavailable {
        addr: String,
        reason: String,
    },
    InvalidSpec(String),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::UnknownDataset(name) => {
                write!(
                    f,
                    "unknown dataset `{name}` (expected a builtin table name)"
                )
            }
            WorkloadError::UnknownEngine(name) => write!(f, "unknown engine `{name}`"),
            WorkloadError::UnknownModel(name) => {
                write!(f, "unknown Markov model preset `{name}`")
            }
            WorkloadError::InvalidAddr(addr) => {
                write!(
                    f,
                    "invalid server address `{addr}` (expected host:port or \"loopback\")"
                )
            }
            WorkloadError::RemoteUnavailable { addr, reason } => {
                write!(f, "no simba-server answered at `{addr}`: {reason}")
            }
            WorkloadError::InvalidSpec(why) => write!(f, "invalid scenario spec: {why}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Engine selection: which of the four architectures, at what intra-query
/// scan parallelism — and *where* it runs.
///
/// `Local` executes in-process, as every scenario did before the server
/// split. `Remote` wraps a `Local` selection with a `simba-server`
/// address; the driver then speaks the wire protocol through
/// [`simba_server::RemoteDbms`] instead of calling the engine directly.
/// The special address `"loopback"` serves the same wire bytes through an
/// in-process server core, so determinism tests cover the full protocol
/// without sockets.
///
/// # Wire shape
///
/// Serialization is hand-written for backward compatibility: `Local`
/// keeps the legacy flat object (`{"kind": "duckdb-like",
/// "scan_threads": 1}`), so every existing scenario file still parses,
/// and `Remote` is `{"addr": "host:port", "engine": {...}}` — the
/// deserializer dispatches on the presence of `"addr"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineSpec {
    /// An in-process engine.
    Local {
        /// Engine name (`"duckdb-like"`, `"postgres-like"`,
        /// `"sqlite-like"`, `"monetdb-like"`).
        kind: String,
        /// Morsel-parallel scan threads; `1` = sequential, `0` = one per
        /// core. Only `duckdb-like` honors values other than 1.
        scan_threads: usize,
    },
    /// The same engine selection, served by a `simba-server` at `addr`.
    Remote {
        /// `host:port` of a live server, or `"loopback"` for the
        /// in-process transport.
        addr: String,
        /// The engine to address on that server (must be `Local`;
        /// remotes do not nest).
        engine: Box<EngineSpec>,
    },
}

impl Serialize for EngineSpec {
    fn to_content(&self) -> serde::Content {
        use serde::Content;
        match self {
            EngineSpec::Local { kind, scan_threads } => Content::Map(vec![
                ("kind".to_string(), kind.to_content()),
                ("scan_threads".to_string(), scan_threads.to_content()),
            ]),
            EngineSpec::Remote { addr, engine } => Content::Map(vec![
                ("addr".to_string(), addr.to_content()),
                ("engine".to_string(), engine.to_content()),
            ]),
        }
    }
}

impl Deserialize for EngineSpec {
    fn from_content(c: &serde::Content) -> Result<Self, String> {
        let serde::Content::Map(entries) = c else {
            return Err("expected an engine spec object".to_string());
        };
        let field = |name: &str| entries.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        if let Some(addr) = field("addr") {
            let engine = field("engine")
                .ok_or_else(|| "remote engine spec is missing `engine`".to_string())?;
            Ok(EngineSpec::Remote {
                addr: Deserialize::from_content(addr)?,
                engine: Box::new(EngineSpec::from_content(engine)?),
            })
        } else {
            let kind = field("kind").ok_or_else(|| "engine spec is missing `kind`".to_string())?;
            let scan_threads = match field("scan_threads") {
                Some(v) => Deserialize::from_content(v)?,
                None => 1,
            };
            Ok(EngineSpec::Local {
                kind: Deserialize::from_content(kind)?,
                scan_threads,
            })
        }
    }
}

impl EngineSpec {
    /// A sequential in-process engine of the given kind.
    pub fn new(kind: EngineKind) -> EngineSpec {
        EngineSpec::local(kind.name(), 1)
    }

    /// An in-process engine by name and scan parallelism.
    pub fn local(kind: impl Into<String>, scan_threads: usize) -> EngineSpec {
        EngineSpec::Local {
            kind: kind.into(),
            scan_threads,
        }
    }

    /// The given engine selection, served remotely from `addr`.
    pub fn remote(addr: impl Into<String>, engine: EngineSpec) -> EngineSpec {
        EngineSpec::Remote {
            addr: addr.into(),
            engine: Box::new(engine),
        }
    }

    /// The engine name, looking through a `Remote` wrapper.
    pub fn kind_name(&self) -> &str {
        match self {
            EngineSpec::Local { kind, .. } => kind,
            EngineSpec::Remote { engine, .. } => engine.kind_name(),
        }
    }

    /// The scan-thread setting, looking through a `Remote` wrapper.
    pub fn scan_threads(&self) -> usize {
        match self {
            EngineSpec::Local { scan_threads, .. } => *scan_threads,
            EngineSpec::Remote { engine, .. } => engine.scan_threads(),
        }
    }

    /// Does this spec cross a wire?
    pub fn is_remote(&self) -> bool {
        matches!(self, EngineSpec::Remote { .. })
    }

    /// Does this spec need an external `simba-server` process? (`false`
    /// for local engines *and* for the in-process `"loopback"` server.)
    pub fn needs_external_server(&self) -> bool {
        matches!(self, EngineSpec::Remote { addr, .. } if addr != simba_server::LOOPBACK_ADDR)
    }

    /// The server address, if remote.
    pub fn addr(&self) -> Option<&str> {
        match self {
            EngineSpec::Local { .. } => None,
            EngineSpec::Remote { addr, .. } => Some(addr),
        }
    }

    /// Everything checkable without touching the network: the engine name
    /// is known, a remote address is well-formed, and remotes don't nest.
    fn validate(&self) -> Result<(), WorkloadError> {
        match self {
            EngineSpec::Local { kind, .. } => {
                EngineKind::from_name(kind)
                    .ok_or_else(|| WorkloadError::UnknownEngine(kind.clone()))?;
                Ok(())
            }
            EngineSpec::Remote { addr, engine } => {
                validate_addr(addr)?;
                if engine.is_remote() {
                    return Err(WorkloadError::InvalidSpec(
                        "remote engine specs cannot nest".into(),
                    ));
                }
                engine.validate()
            }
        }
    }

    fn resolve(&self) -> Result<Arc<dyn simba_engine::Dbms>, WorkloadError> {
        self.validate()?;
        match self {
            EngineSpec::Local { kind, scan_threads } => {
                let kind = EngineKind::from_name(kind)
                    .ok_or_else(|| WorkloadError::UnknownEngine(kind.clone()))?;
                Ok(if *scan_threads == 1 {
                    kind.build()
                } else {
                    kind.build_with_threads(*scan_threads)
                })
            }
            EngineSpec::Remote { addr, engine } => {
                let kind = EngineKind::from_name(engine.kind_name())
                    .ok_or_else(|| WorkloadError::UnknownEngine(engine.kind_name().into()))?;
                // Dial eagerly: an unreachable server fails the run at
                // setup, not via per-query Transient errors mid-run.
                let remote = simba_server::RemoteDbms::connect(addr, kind, engine.scan_threads())
                    .map_err(|e| WorkloadError::RemoteUnavailable {
                    addr: addr.clone(),
                    reason: e.to_string(),
                })?;
                Ok(Arc::new(remote))
            }
        }
    }
}

/// Accept `"loopback"` or `host:port` with a nonempty host and a nonzero
/// port. Rejected here, at spec-validation time, so a typo in an address
/// fails `bench` before any dataset is generated or socket dialed. Public
/// so the CLI can reject `--addr`/`SIMBA_SERVER_ADDR` typos at flag-parse
/// time with the same rule.
pub fn validate_addr(addr: &str) -> Result<(), WorkloadError> {
    if addr == simba_server::LOOPBACK_ADDR {
        return Ok(());
    }
    let invalid = || WorkloadError::InvalidAddr(addr.to_string());
    let (host, port) = addr.rsplit_once(':').ok_or_else(invalid)?;
    if host.is_empty() {
        return Err(invalid());
    }
    match port.parse::<u16>() {
        Ok(p) if p != 0 => Ok(()),
        _ => Err(invalid()),
    }
}

/// Which session source drives the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceSpec {
    /// Pre-synthesized Markov scripts replayed verbatim (never reacts to
    /// results). `models` are preset names; empty = the full preset mix.
    Scripted { models: Vec<String> },
    /// Live walks steered by result inspection.
    Adaptive {
        /// Markov preset names; empty = the full preset mix.
        models: Vec<String>,
        backtrack_on_empty: bool,
        drill_into_top_group: bool,
    },
    /// IDEBench-style stochastic filter storms over per-user implicit
    /// random dashboards.
    Idebench {
        add_filter: f64,
        modify_filter: f64,
        remove_filter: f64,
    },
}

impl SourceSpec {
    /// Adaptive source with the default steering policy.
    pub fn adaptive() -> SourceSpec {
        SourceSpec::Adaptive {
            models: Vec::new(),
            backtrack_on_empty: true,
            drill_into_top_group: true,
        }
    }

    /// Scripted source with the default model mix.
    pub fn scripted() -> SourceSpec {
        SourceSpec::Scripted { models: Vec::new() }
    }

    /// IDEBench source with the paper's default action probabilities.
    pub fn idebench() -> SourceSpec {
        let probs = ActionProbs::default();
        SourceSpec::Idebench {
            add_filter: probs.add_filter,
            modify_filter: probs.modify_filter,
            remove_filter: probs.remove_filter,
        }
    }

    /// Stable mode name this source reports as.
    pub fn mode(&self) -> &'static str {
        match self {
            SourceSpec::Scripted { .. } => "scripted",
            SourceSpec::Adaptive { .. } => "adaptive",
            SourceSpec::Idebench { .. } => "idebench",
        }
    }
}

/// Think-time pacing between a session's consecutive interactions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ThinkSpec {
    /// No pacing: steps run back-to-back (throughput stress mode).
    None,
    Fixed {
        millis: u64,
    },
    Exponential {
        mean_millis: u64,
    },
}

impl From<&ThinkSpec> for ThinkTime {
    fn from(spec: &ThinkSpec) -> ThinkTime {
        match spec {
            ThinkSpec::None => ThinkTime::None,
            ThinkSpec::Fixed { millis } => ThinkTime::Fixed(Duration::from_millis(*millis)),
            ThinkSpec::Exponential { mean_millis } => ThinkTime::Exponential {
                mean: Duration::from_millis(*mean_millis),
            },
        }
    }
}

/// When sessions become eligible to start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// Start whenever a worker frees up (fixed concurrent population).
    Closed,
    /// Poisson arrivals at this rate (sessions per second).
    Open { rate_per_sec: f64 },
}

impl From<&ArrivalSpec> for Arrival {
    fn from(spec: &ArrivalSpec) -> Arrival {
        match spec {
            ArrivalSpec::Closed => Arrival::Closed,
            ArrivalSpec::Open { rate_per_sec } => Arrival::Open {
                rate_per_sec: *rate_per_sec,
            },
        }
    }
}

/// Shared result cache configuration (mirrors
/// [`CacheConfig`] in serializable form).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSpec {
    pub shards: usize,
    pub capacity_per_shard: usize,
}

impl Default for CacheSpec {
    fn default() -> Self {
        let c = CacheConfig::default();
        CacheSpec {
            shards: c.shards,
            capacity_per_shard: c.capacity_per_shard,
        }
    }
}

impl From<&CacheSpec> for CacheConfig {
    fn from(spec: &CacheSpec) -> CacheConfig {
        CacheConfig {
            shards: spec.shards,
            capacity_per_shard: spec.capacity_per_shard,
        }
    }
}

/// Deterministic fault injection (mirrors [`FaultConfig`] in serializable
/// form). All probabilities default to zero, so an explicit-but-inert
/// `fault` block is equivalent to omitting it: the engine is only wrapped
/// when [`is_active`](Self::is_active) says something can fire.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed of the per-query fault RNG, independent of the scenario seed
    /// so the same workload can be rerun under a different fault timeline.
    #[serde(default)]
    pub seed: u64,
    /// Probability a query sleeps `latency_spike_ms` before executing.
    #[serde(default)]
    pub latency_spike_prob: f64,
    /// Injected sleep per latency spike, in milliseconds.
    #[serde(default)]
    pub latency_spike_ms: u64,
    /// Probability of a retryable transient error.
    #[serde(default)]
    pub transient_error_prob: f64,
    /// Probability of a non-retryable permanent error.
    #[serde(default)]
    pub permanent_error_prob: f64,
    /// Probability the engine panics mid-query (the driver recovers via
    /// unwind-catching and treats it as transient).
    #[serde(default)]
    pub panic_prob: f64,
}

impl FaultSpec {
    /// Can this spec ever inject anything?
    pub fn is_active(&self) -> bool {
        FaultConfig::from(self).is_active()
    }
}

impl From<&FaultSpec> for FaultConfig {
    fn from(spec: &FaultSpec) -> FaultConfig {
        FaultConfig {
            seed: spec.seed,
            latency_spike_prob: spec.latency_spike_prob,
            latency_spike: Duration::from_millis(spec.latency_spike_ms),
            transient_error_prob: spec.transient_error_prob,
            permanent_error_prob: spec.permanent_error_prob,
            panic_prob: spec.panic_prob,
        }
    }
}

/// Driver-side failure handling (mirrors [`ResiliencePolicy`] in
/// serializable form). Zeros everywhere = inert, and an inert spec keeps
/// the driver on its legacy execution path.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceSpec {
    /// Per-attempt wall-clock deadline in milliseconds; 0 = no deadline.
    #[serde(default)]
    pub deadline_ms: u64,
    /// Retries after the first attempt (transient failures and timeouts
    /// only).
    #[serde(default)]
    pub max_retries: u32,
    /// Base of the exponential backoff between retries, in milliseconds.
    #[serde(default)]
    pub backoff_base_ms: u64,
    /// Cap on a single backoff wait, in milliseconds.
    #[serde(default)]
    pub backoff_cap_ms: u64,
    /// Consecutive final failures that open the circuit breaker; 0
    /// disables the breaker.
    #[serde(default)]
    pub breaker_failure_threshold: u32,
    /// How long an open breaker sheds before probing, in milliseconds.
    #[serde(default)]
    pub breaker_cooldown_ms: u64,
    /// Successful half-open probes required to close the breaker again;
    /// 0 is normalized to 1.
    #[serde(default)]
    pub breaker_half_open_probes: u32,
}

impl From<&ResilienceSpec> for ResiliencePolicy {
    fn from(spec: &ResilienceSpec) -> ResiliencePolicy {
        ResiliencePolicy {
            deadline: (spec.deadline_ms > 0).then(|| Duration::from_millis(spec.deadline_ms)),
            max_retries: spec.max_retries,
            backoff_base: Duration::from_millis(spec.backoff_base_ms),
            backoff_cap: Duration::from_millis(spec.backoff_cap_ms),
            breaker_failure_threshold: spec.breaker_failure_threshold,
            breaker_cooldown: Duration::from_millis(spec.breaker_cooldown_ms),
            breaker_half_open_probes: spec.breaker_half_open_probes.max(1),
        }
    }
}

/// One fully declarative driver run: the single source of truth for every
/// knob that used to be spread across `DriverConfig`, `AdaptiveConfig`,
/// `BatchConfig`, and per-binary environment variables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name, stamped into the report.
    pub name: String,
    /// Builtin dataset table name (e.g. `"customer_service"`).
    pub dataset: String,
    /// Rows to generate. Ignored when [`size`](Self::size) is set.
    pub rows: usize,
    /// Optional [`DatasetSize`] label (`"10K"`, `"100K"`, `"1M"`, `"10M"`)
    /// naming the paper's grid tiers; when set it overrides `rows`, so
    /// scenario files can say `"size": "10M"` instead of a raw count.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub size: Option<String>,
    /// Master seed: dataset generation, walks, and pacing all derive from
    /// this one value.
    pub seed: u64,
    /// Concurrent user sessions.
    pub sessions: usize,
    /// Interactions per session after the initial render.
    pub steps_per_session: usize,
    pub engine: EngineSpec,
    pub source: SourceSpec,
    pub think: ThinkSpec,
    pub arrival: ArrivalSpec,
    /// `Some` enables the shared result cache.
    pub cache: Option<CacheSpec>,
    /// Worker threads; `0` = `min(sessions, available_parallelism)`.
    pub workers: usize,
    /// Record per-query result fingerprints (equivalence/determinism
    /// tests; costs a clone+sort per result).
    pub collect_fingerprints: bool,
    /// Enable session-delta execution: each session carries a per-session
    /// store and engines that opt in (duckdb-like) seed scans from the
    /// previous step's surviving rows. Results stay byte-identical to a
    /// delta-off run; only latency and the report's `delta` section
    /// change. Defaults to off so existing scenario files stay valid.
    #[serde(default)]
    pub delta: bool,
    /// Collect a [`simba_obs`] metrics snapshot (counters + per-phase
    /// latency histograms) over the run and attach it to the report.
    /// Defaults to off so existing scenario files stay valid.
    #[serde(default)]
    pub collect_metrics: bool,
    /// `Some` with non-zero probabilities wraps the engine in a
    /// [`FaultInjectingDbms`]; `None` (the default) leaves the engine
    /// untouched and the run byte-identical to pre-chaos builds.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fault: Option<FaultSpec>,
    /// `Some` with any active knob (deadline, retries, breaker) switches
    /// the driver to its resilient execution path; `None` keeps the
    /// legacy path.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub resilience: Option<ResilienceSpec>,
}

impl ScenarioSpec {
    /// A small closed-loop spec over `dataset` with the duckdb-like engine
    /// and scripted sessions; override fields as needed.
    pub fn new(name: impl Into<String>, dataset: impl Into<String>) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            dataset: dataset.into(),
            rows: 10_000,
            size: None,
            seed: 0,
            sessions: 4,
            steps_per_session: 8,
            engine: EngineSpec::new(EngineKind::DuckDbLike),
            source: SourceSpec::scripted(),
            think: ThinkSpec::None,
            arrival: ArrivalSpec::Closed,
            cache: None,
            workers: 0,
            collect_fingerprints: false,
            delta: false,
            collect_metrics: false,
            fault: None,
            resilience: None,
        }
    }

    /// Pretty JSON, for scenario data files.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Parse a spec from JSON.
    pub fn from_json(json: &str) -> Result<ScenarioSpec, WorkloadError> {
        serde_json::from_str(json).map_err(|e| WorkloadError::InvalidSpec(e.to_string()))
    }

    /// Check everything that can be checked without generating data.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        self.resolve_dataset()?;
        self.engine.validate()?;
        if self.sessions == 0 {
            return Err(WorkloadError::InvalidSpec("sessions must be > 0".into()));
        }
        if self.effective_rows()? == 0 {
            return Err(WorkloadError::InvalidSpec("rows must be > 0".into()));
        }
        if let ArrivalSpec::Open { rate_per_sec } = self.arrival {
            // NaN must fail too, so compare for the good case and negate.
            let positive = rate_per_sec > 0.0;
            if !positive {
                return Err(WorkloadError::InvalidSpec(
                    "open-loop arrival rate must be positive".into(),
                ));
            }
        }
        match &self.source {
            SourceSpec::Scripted { models } | SourceSpec::Adaptive { models, .. } => {
                resolve_mix(models)?;
            }
            SourceSpec::Idebench {
                add_filter,
                modify_filter,
                remove_filter,
            } => {
                for (name, p) in [
                    ("add_filter", add_filter),
                    ("modify_filter", modify_filter),
                    ("remove_filter", remove_filter),
                ] {
                    if !(0.0..=1.0).contains(p) {
                        return Err(WorkloadError::InvalidSpec(format!(
                            "idebench probability {name} must be in [0, 1] (got {p})"
                        )));
                    }
                }
                let sum = add_filter + modify_filter + remove_filter;
                if !(0.99..=1.01).contains(&sum) {
                    return Err(WorkloadError::InvalidSpec(format!(
                        "idebench action probabilities must sum to 1 (got {sum})"
                    )));
                }
            }
        }
        if let Some(fault) = &self.fault {
            for (name, p) in [
                ("latency_spike_prob", fault.latency_spike_prob),
                ("transient_error_prob", fault.transient_error_prob),
                ("permanent_error_prob", fault.permanent_error_prob),
                ("panic_prob", fault.panic_prob),
            ] {
                if !(0.0..=1.0).contains(&p) {
                    return Err(WorkloadError::InvalidSpec(format!(
                        "fault probability {name} must be in [0, 1] (got {p})"
                    )));
                }
            }
            // The three error outcomes are drawn from one cumulative band,
            // so their mass must fit in a single unit draw.
            let error_mass =
                fault.transient_error_prob + fault.permanent_error_prob + fault.panic_prob;
            if error_mass > 1.0 {
                return Err(WorkloadError::InvalidSpec(format!(
                    "fault error probabilities must sum to at most 1 (got {error_mass})"
                )));
            }
            if fault.latency_spike_prob > 0.0 && fault.latency_spike_ms == 0 {
                return Err(WorkloadError::InvalidSpec(
                    "latency_spike_prob is set but latency_spike_ms is 0".into(),
                ));
            }
        }
        if let Some(res) = &self.resilience {
            if res.max_retries > 0 && res.backoff_cap_ms < res.backoff_base_ms {
                return Err(WorkloadError::InvalidSpec(format!(
                    "backoff_cap_ms ({}) must be >= backoff_base_ms ({})",
                    res.backoff_cap_ms, res.backoff_base_ms
                )));
            }
        }
        Ok(())
    }

    fn resolve_dataset(&self) -> Result<DashboardDataset, WorkloadError> {
        DashboardDataset::from_table_name(&self.dataset)
            .ok_or_else(|| WorkloadError::UnknownDataset(self.dataset.clone()))
    }

    /// The row count this spec resolves to: the [`size`](Self::size)
    /// label's tier when set, `rows` otherwise. Errors on an unknown
    /// label.
    pub fn effective_rows(&self) -> Result<usize, WorkloadError> {
        match &self.size {
            None => Ok(self.rows),
            Some(label) => DatasetSize::from_label(label)
                .map(DatasetSize::row_count)
                .ok_or_else(|| {
                    WorkloadError::InvalidSpec(format!(
                        "unknown dataset size label `{label}` (expected 10K/100K/1M/10M)"
                    ))
                }),
        }
    }

    /// Generate the dataset table this spec runs over.
    pub fn build_table(&self) -> Result<Arc<Table>, WorkloadError> {
        let ds = self.resolve_dataset()?;
        Ok(Arc::new(
            ds.generate_rows(self.effective_rows()?, self.seed),
        ))
    }
}

/// The pacing/seed/cache half of a spec, as the legacy driver config.
impl From<&ScenarioSpec> for DriverConfig {
    fn from(spec: &ScenarioSpec) -> DriverConfig {
        DriverConfig {
            workers: spec.workers,
            think_time: (&spec.think).into(),
            arrival: (&spec.arrival).into(),
            seed: spec.seed,
            cache: spec.cache.as_ref().map(CacheConfig::from),
            collect_fingerprints: spec.collect_fingerprints,
            delta: spec.delta,
            collect_metrics: spec.collect_metrics,
            resilience: spec
                .resilience
                .as_ref()
                .map(ResiliencePolicy::from)
                .unwrap_or_default(),
            // The resilient path must also engage when faults are injected
            // with an inert policy, so panics are still caught and errors
            // still classified.
            chaos: spec.fault.as_ref().is_some_and(FaultSpec::is_active),
        }
    }
}

fn resolve_mix(models: &[String]) -> Result<Vec<MarkovModel>, WorkloadError> {
    if models.is_empty() {
        return Ok(MarkovModel::presets());
    }
    models
        .iter()
        .map(|name| {
            MarkovModel::preset(name).ok_or_else(|| WorkloadError::UnknownModel(name.clone()))
        })
        .collect()
}

/// Memoizes dataset generation across the specs of one suite.
///
/// A shootout suite expands to dozens of specs sharing one
/// `(dataset, rows, seed)` triple; generating the table once per *suite*
/// instead of once per *spec* is the difference between seconds and
/// minutes at paper scale. Generation is deterministic in the key, so
/// reuse cannot change results.
#[derive(Default)]
pub struct TableCache {
    entries: Vec<((String, usize, u64), Arc<Table>)>,
}

impl TableCache {
    pub fn new() -> TableCache {
        TableCache::default()
    }

    /// The table for `spec`, generated on first use. Keys resolve through
    /// [`ScenarioSpec::effective_rows`], so a spec saying `"size": "1M"`
    /// and one saying `"rows": 1000000` share a single generation.
    pub fn get(&mut self, spec: &ScenarioSpec) -> Result<Arc<Table>, WorkloadError> {
        let key = (spec.dataset.clone(), spec.effective_rows()?, spec.seed);
        if let Some((_, table)) = self.entries.iter().find(|(k, _)| *k == key) {
            return Ok(table.clone());
        }
        let table = spec.build_table()?;
        self.entries.push((key, table.clone()));
        Ok(table)
    }
}

impl Driver {
    /// Execute one declarative scenario end to end: resolve the dataset,
    /// dashboard, engine, and session source from `spec`, run the unified
    /// concurrent loop, and stamp the report with the scenario name.
    ///
    /// Seed derivations match the legacy entry points exactly, so for any
    /// spec this produces byte-identical action sequences and result
    /// fingerprints to hand-assembling the same run with
    /// [`Driver::run`] / [`Driver::run_adaptive`].
    pub fn execute(spec: &ScenarioSpec) -> Result<DriverOutcome, WorkloadError> {
        Self::execute_with(spec, &mut TableCache::new())
    }

    /// [`execute`](Self::execute) with a caller-held [`TableCache`], so a
    /// suite of specs sharing a dataset generates it once.
    pub fn execute_with(
        spec: &ScenarioSpec,
        tables: &mut TableCache,
    ) -> Result<DriverOutcome, WorkloadError> {
        spec.validate()?;
        let table = tables.get(spec)?;
        let bare = spec.engine.resolve()?;
        bare.register(table.clone());
        // Wrap *after* registration so table setup can never fault; only
        // query execution is chaos-eligible.
        let fault = spec
            .fault
            .as_ref()
            .filter(|f| f.is_active())
            .map(|f| Arc::new(FaultInjectingDbms::new(bare.clone(), f.into())));
        let engine: Arc<dyn Dbms> = match &fault {
            Some(wrapper) => wrapper.clone(),
            None => bare,
        };
        let driver = Driver::new(DriverConfig::from(spec));

        let mut outcome = match &spec.source {
            SourceSpec::Scripted { models } => {
                let ds = spec.resolve_dataset()?;
                let dashboard = Dashboard::new(builtin(ds), &table)
                    .map_err(|e| WorkloadError::InvalidSpec(e.to_string()))?;
                let scripts = synthesize_scripts(
                    &dashboard,
                    &BatchConfig {
                        base_seed: spec.seed,
                        steps_per_session: spec.steps_per_session,
                        mix: resolve_mix(models)?,
                    },
                    spec.sessions,
                );
                driver.run_source(engine, &ScriptedSource::new(scripts))
            }
            SourceSpec::Adaptive {
                models,
                backtrack_on_empty,
                drill_into_top_group,
            } => {
                let ds = spec.resolve_dataset()?;
                let dashboard = Dashboard::new(builtin(ds), &table)
                    .map_err(|e| WorkloadError::InvalidSpec(e.to_string()))?;
                let source = AdaptiveSource::new(
                    &dashboard,
                    AdaptiveWalkConfig {
                        base_seed: spec.seed,
                        steps_per_session: spec.steps_per_session,
                        mix: resolve_mix(models)?,
                        policy: AdaptivePolicy {
                            backtrack_on_empty: *backtrack_on_empty,
                            drill_into_top_group: *drill_into_top_group,
                        },
                    },
                    spec.sessions,
                );
                driver.run_source(engine, &source)
            }
            SourceSpec::Idebench {
                add_filter,
                modify_filter,
                remove_filter,
            } => {
                let source = IdebenchSource::new(
                    table.clone(),
                    spec.seed,
                    spec.sessions,
                    spec.steps_per_session,
                )
                .with_probs(ActionProbs {
                    add_filter: *add_filter,
                    modify_filter: *modify_filter,
                    remove_filter: *remove_filter,
                });
                driver.run_source(engine, &source)
            }
        };
        outcome.report.scenario_name = spec.name.clone();
        if let Some(wrapper) = &fault {
            let stats = wrapper.stats();
            outcome.report.fault = Some(FaultReport {
                latency_spikes: stats.latency_spikes,
                transient: stats.transient_errors,
                permanent: stats.permanent_errors,
                panics: stats.panics,
            });
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let mut spec = ScenarioSpec::new("round-trip", "customer_service");
        spec.source = SourceSpec::adaptive();
        spec.cache = Some(CacheSpec::default());
        spec.think = ThinkSpec::Exponential { mean_millis: 5 };
        spec.arrival = ArrivalSpec::Open { rate_per_sec: 12.5 };
        let parsed = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);

        let idebench = ScenarioSpec {
            source: SourceSpec::idebench(),
            ..spec
        };
        let parsed = ScenarioSpec::from_json(&idebench.to_json()).unwrap();
        assert_eq!(parsed, idebench);
    }

    #[test]
    fn engine_spec_keeps_the_legacy_wire_shape() {
        // Pre-server scenario files say {"kind", "scan_threads"}; they must
        // keep parsing, and Local must keep writing that exact shape.
        let legacy = r#"{"kind": "duckdb-like", "scan_threads": 2}"#;
        let parsed: EngineSpec = serde_json::from_str(legacy).unwrap();
        assert_eq!(parsed, EngineSpec::local("duckdb-like", 2));
        let json = serde_json::to_string(&parsed).unwrap();
        assert!(
            json.contains("\"kind\"") && !json.contains("\"addr\""),
            "{json}"
        );

        let remote = EngineSpec::remote("10.0.0.7:4640", EngineSpec::local("monetdb-like", 1));
        let json = serde_json::to_string(&remote).unwrap();
        assert!(json.contains("\"addr\""), "{json}");
        let back: EngineSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, remote);
        assert_eq!(back.kind_name(), "monetdb-like");
        assert_eq!(back.scan_threads(), 1);
        assert!(back.is_remote());
        assert!(back.needs_external_server());
        assert!(
            !EngineSpec::remote("loopback", EngineSpec::new(EngineKind::SqliteLike))
                .needs_external_server()
        );
    }

    #[test]
    fn validate_rejects_unknowns_and_nonsense() {
        let good = ScenarioSpec::new("ok", "customer_service");
        assert!(good.validate().is_ok());

        let mut spec = good.clone();
        spec.dataset = "nope".into();
        assert!(matches!(
            spec.validate(),
            Err(WorkloadError::UnknownDataset(_))
        ));

        let mut spec = good.clone();
        spec.engine = EngineSpec::local("oracle23ai", 1);
        assert!(matches!(
            spec.validate(),
            Err(WorkloadError::UnknownEngine(_))
        ));

        let mut spec = good.clone();
        spec.engine = EngineSpec::remote("not-an-addr", EngineSpec::new(EngineKind::SqliteLike));
        assert!(matches!(
            spec.validate(),
            Err(WorkloadError::InvalidAddr(_))
        ));

        let mut spec = good.clone();
        spec.engine = EngineSpec::remote("127.0.0.1:0", EngineSpec::new(EngineKind::SqliteLike));
        assert!(matches!(
            spec.validate(),
            Err(WorkloadError::InvalidAddr(_))
        ));

        let mut spec = good.clone();
        spec.engine = EngineSpec::remote(
            "127.0.0.1:4640",
            EngineSpec::remote("127.0.0.1:4641", EngineSpec::new(EngineKind::SqliteLike)),
        );
        assert!(matches!(
            spec.validate(),
            Err(WorkloadError::InvalidSpec(_))
        ));

        let mut spec = good.clone();
        spec.source = SourceSpec::Scripted {
            models: vec!["brownian".into()],
        };
        assert!(matches!(
            spec.validate(),
            Err(WorkloadError::UnknownModel(_))
        ));

        let mut spec = good.clone();
        spec.sessions = 0;
        assert!(spec.validate().is_err());

        let mut spec = good.clone();
        spec.arrival = ArrivalSpec::Open { rate_per_sec: 0.0 };
        assert!(spec.validate().is_err());

        let mut spec = good.clone();
        spec.source = SourceSpec::Idebench {
            add_filter: 0.9,
            modify_filter: 0.9,
            remove_filter: 0.9,
        };
        assert!(spec.validate().is_err());

        // Sums to 1 but an individual probability is out of range: the
        // declared distribution would be unreachable at run time.
        let mut spec = good;
        spec.source = SourceSpec::Idebench {
            add_filter: 1.2,
            modify_filter: -0.2,
            remove_filter: 0.0,
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn fault_and_resilience_round_trip_and_stay_optional() {
        let mut spec = ScenarioSpec::new("chaotic", "customer_service");
        spec.fault = Some(FaultSpec {
            seed: 9,
            latency_spike_prob: 0.1,
            latency_spike_ms: 5,
            transient_error_prob: 0.2,
            permanent_error_prob: 0.05,
            panic_prob: 0.01,
        });
        spec.resilience = Some(ResilienceSpec {
            deadline_ms: 250,
            max_retries: 3,
            backoff_base_ms: 10,
            backoff_cap_ms: 200,
            breaker_failure_threshold: 5,
            breaker_cooldown_ms: 2_000,
            breaker_half_open_probes: 2,
        });
        spec.validate().unwrap();
        let parsed = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);

        // Old spec files (no chaos sections) keep parsing, and the
        // sections stay omitted when absent.
        let plain = ScenarioSpec::new("plain", "customer_service");
        let json = plain.to_json();
        assert!(!json.contains("\"fault\""), "None fault is omitted");
        assert!(
            !json.contains("\"resilience\""),
            "None resilience is omitted"
        );
        let parsed = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(parsed.fault, None);
        assert_eq!(parsed.resilience, None);
    }

    #[test]
    fn validate_rejects_bad_fault_and_resilience_values() {
        let good = ScenarioSpec::new("ok", "customer_service");

        let mut spec = good.clone();
        spec.fault = Some(FaultSpec {
            transient_error_prob: 1.5,
            ..FaultSpec::default()
        });
        assert!(spec.validate().is_err(), "probability over 1");

        let mut spec = good.clone();
        spec.fault = Some(FaultSpec {
            transient_error_prob: 0.5,
            permanent_error_prob: 0.4,
            panic_prob: 0.3,
            ..FaultSpec::default()
        });
        assert!(spec.validate().is_err(), "error bands exceed one draw");

        let mut spec = good.clone();
        spec.fault = Some(FaultSpec {
            latency_spike_prob: 0.2,
            latency_spike_ms: 0,
            ..FaultSpec::default()
        });
        assert!(spec.validate().is_err(), "spike with zero duration");

        let mut spec = good.clone();
        spec.resilience = Some(ResilienceSpec {
            max_retries: 2,
            backoff_base_ms: 100,
            backoff_cap_ms: 10,
            ..ResilienceSpec::default()
        });
        assert!(spec.validate().is_err(), "cap under base");

        // Inert sections are valid — and equivalent to omitting them.
        let mut spec = good;
        spec.fault = Some(FaultSpec::default());
        spec.resilience = Some(ResilienceSpec::default());
        spec.validate().unwrap();
        assert!(!DriverConfig::from(&spec).chaos);
        assert!(!DriverConfig::from(&spec).resilience.is_active());
    }

    #[test]
    fn active_fault_spec_switches_driver_to_chaos() {
        let mut spec = ScenarioSpec::new("chaotic", "customer_service");
        spec.fault = Some(FaultSpec {
            transient_error_prob: 0.1,
            ..FaultSpec::default()
        });
        let config = DriverConfig::from(&spec);
        assert!(config.chaos, "active faults must engage the resilient path");

        spec.resilience = Some(ResilienceSpec {
            deadline_ms: 100,
            breaker_half_open_probes: 0, // normalized to 1
            ..ResilienceSpec::default()
        });
        let config = DriverConfig::from(&spec);
        assert!(config.resilience.is_active());
        assert_eq!(config.resilience.breaker_half_open_probes, 1);
    }

    #[test]
    fn size_label_overrides_rows_and_round_trips() {
        let mut spec = ScenarioSpec::new("sized", "customer_service");
        spec.rows = 77; // ignored once a size label is set
        spec.size = Some("10K".into());
        assert_eq!(spec.effective_rows().unwrap(), 10_000);
        spec.validate().unwrap();

        let parsed = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);

        // Old spec files (no `size` field) keep parsing, with rows wins.
        let mut legacy = spec.clone();
        legacy.size = None;
        let json = legacy.to_json();
        assert!(!json.contains("\"size\""), "None size is omitted");
        let parsed = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(parsed.effective_rows().unwrap(), 77);

        let mut bad = spec;
        bad.size = Some("2G".into());
        assert!(bad.effective_rows().is_err());
        assert!(matches!(bad.validate(), Err(WorkloadError::InvalidSpec(_))));
    }

    #[test]
    fn table_cache_keys_on_effective_rows() {
        let mut by_label = ScenarioSpec::new("a", "customer_service");
        by_label.size = Some("10K".into());
        let mut by_rows = ScenarioSpec::new("b", "customer_service");
        by_rows.rows = 10_000;

        let mut cache = TableCache::new();
        let t1 = cache.get(&by_label).unwrap();
        let t2 = cache.get(&by_rows).unwrap();
        assert!(Arc::ptr_eq(&t1, &t2), "label and raw rows share one table");
    }

    #[test]
    fn execute_runs_each_source_kind() {
        for source in [
            SourceSpec::scripted(),
            SourceSpec::adaptive(),
            SourceSpec::idebench(),
        ] {
            let mut spec = ScenarioSpec::new("exec-smoke", "customer_service");
            spec.rows = 400;
            spec.sessions = 2;
            spec.steps_per_session = 3;
            spec.engine = EngineSpec::new(EngineKind::SqliteLike);
            spec.source = source;
            let outcome = Driver::execute(&spec).unwrap();
            assert_eq!(outcome.report.scenario_name, "exec-smoke");
            assert_eq!(
                outcome.report.schema_version,
                crate::report::RunReport::SCHEMA_VERSION
            );
            assert_eq!(outcome.report.session_mode, spec.source.mode());
            assert_eq!(outcome.report.sessions, 2);
            assert!(outcome.report.queries > 0, "{:?}", outcome.report);
        }
    }
}
