//! Stable result fingerprints: the cross-engine, cross-cache comparison
//! currency of every equivalence and determinism test.
//!
//! This is the canonical public home of [`fingerprint`] and
//! [`ERROR_FINGERPRINT`]; tests and downstream tools should import them
//! from here (or the crate root re-exports) rather than re-deriving their
//! own result hashes, so "byte-identical results" means the same thing
//! everywhere.

use simba_store::ResultSet;

/// Sentinel fingerprint recorded for a query that returned an engine error.
///
/// Fingerprint vectors are compared position-for-position across engines
/// and cache configurations; silently *skipping* an errored query would
/// shift every later fingerprint in the session and turn one error into a
/// wall of false mismatches. (FNV-1a of any real result never yields
/// `u64::MAX` from our offset basis in practice; collisions would only
/// mask an error against a result, never misalign positions.)
pub const ERROR_FINGERPRINT: u64 = u64::MAX;

/// Order-insensitive content hash of a result set (FNV-1a over the
/// canonically sorted rows). Two results get equal fingerprints iff their
/// row multisets are byte-identical.
pub fn fingerprint(result: &ResultSet) -> u64 {
    let mut h = crate::hash::Fnv1a::new();
    for row in result.sorted_rows() {
        h.write(format!("{row:?}").as_bytes());
        h.write(&[0xFF]);
    }
    h.finish()
}

/// Order-sensitive digest of a whole run's per-session fingerprint
/// vectors: one `u64` two runs share iff their fingerprint sequences are
/// identical session by session, position by position. Recorded as
/// `RunReport.fingerprint_digest` when fingerprints are collected, so JSON
/// artifacts (e.g. the `delta-shootout` CI gate) can assert result
/// equality between runs without carrying every vector.
pub fn digest(fingerprints: &[Vec<u64>]) -> u64 {
    let mut h = crate::hash::Fnv1a::new();
    for session in fingerprints {
        for fp in session {
            h.write(&fp.to_le_bytes());
        }
        h.write(&[0xFF]);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_store::Value;

    #[test]
    fn fingerprint_is_row_order_insensitive() {
        let a = ResultSet::new(
            vec!["x".to_string()],
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        );
        let b = ResultSet::new(
            vec!["x".to_string()],
            vec![vec![Value::Int(2)], vec![Value::Int(1)]],
        );
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = ResultSet::new(vec!["x".to_string()], vec![vec![Value::Int(3)]]);
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn empty_result_never_collides_with_error_sentinel() {
        let empty = ResultSet::empty(vec!["x".to_string()]);
        assert_ne!(fingerprint(&empty), ERROR_FINGERPRINT);
    }
}
