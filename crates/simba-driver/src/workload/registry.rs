//! The built-in scenario registry: named suites of [`ScenarioSpec`]s.
//!
//! A *scenario* is a named list of specs — typically a sweep over engines,
//! user counts, cache settings, or session modes — that the `simba-bench`
//! CLI runs with `bench --scenario <name>`. Suites are parameterized by
//! [`ScenarioParams`] (scale knobs the harness reads from flags or
//! `SIMBA_*` environment variables) but are otherwise pure data: dump one
//! with `bench --scenario <name> --dump`, edit the JSON, and run the edited
//! file with `bench --spec <file>`.

use super::datagen::DatagenSweep;
use super::{
    ArrivalSpec, CacheSpec, EngineSpec, FaultSpec, ResilienceSpec, ScenarioSpec, SourceSpec,
    ThinkSpec,
};
use simba_engine::EngineKind;

/// Scale knobs shared by every built-in suite.
#[derive(Debug, Clone)]
pub struct ScenarioParams {
    /// Dataset rows.
    pub rows: usize,
    /// Master seed.
    pub seed: u64,
    /// Concurrent-user sweep (suites that don't sweep use the first entry).
    pub users: Vec<usize>,
    /// Interactions per session after the initial render.
    pub steps: usize,
    /// Worker threads; `0` = available parallelism.
    pub workers: usize,
    /// Fixed think time between interactions, in milliseconds (`0` = none).
    pub think_ms: u64,
    /// `DatasetSize` labels for size-tier sweeps (`datagen-sweep`); empty
    /// = the paper grid (100K / 1M / 10M).
    pub sizes: Vec<String>,
    /// `simba-server` address for remote scenarios (`remote-shootout`):
    /// `host:port` of a live server, or `"loopback"` (the default) for
    /// the in-process wire transport, which needs no external process.
    pub addr: String,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            rows: 50_000,
            seed: 0,
            users: vec![4, 16, 64],
            steps: 8,
            workers: 0,
            think_ms: 0,
            sizes: Vec::new(),
            addr: "loopback".to_string(),
        }
    }
}

impl ScenarioParams {
    fn think(&self) -> ThinkSpec {
        if self.think_ms == 0 {
            ThinkSpec::None
        } else {
            ThinkSpec::Fixed {
                millis: self.think_ms,
            }
        }
    }

    fn first_users(&self) -> usize {
        self.users.first().copied().unwrap_or(4).max(1)
    }

    fn base(&self, name: &str, users: usize) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(name, "customer_service");
        spec.rows = self.rows;
        spec.seed = self.seed;
        spec.sessions = users;
        spec.steps_per_session = self.steps;
        spec.workers = self.workers;
        spec.think = self.think();
        spec.arrival = ArrivalSpec::Closed;
        spec
    }
}

/// What a named scenario executes.
#[derive(Debug, Clone)]
pub enum ScenarioBody {
    /// A suite of [`ScenarioSpec`]s run through `Driver::execute`.
    Suite(Vec<ScenarioSpec>),
    /// A dataset-generation throughput sweep (no queries run).
    Datagen(DatagenSweep),
}

/// One named scenario: what it is, and what it executes.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Registry name (`bench --scenario <name>`).
    pub name: &'static str,
    /// One-line description shown by `bench --list`.
    pub description: &'static str,
    /// What the scenario executes.
    pub body: ScenarioBody,
}

impl Scenario {
    /// The driver specs of a [`ScenarioBody::Suite`] scenario (empty for
    /// a datagen sweep).
    pub fn specs(&self) -> &[ScenarioSpec] {
        match &self.body {
            ScenarioBody::Suite(specs) => specs,
            ScenarioBody::Datagen(_) => &[],
        }
    }
}

/// Names of every built-in scenario, in presentation order.
pub const SCENARIO_NAMES: [&str; 9] = [
    "smoke",
    "concurrent-shootout",
    "adaptive-shootout",
    "idebench",
    "perf-report",
    "datagen-sweep",
    "chaos",
    "remote-shootout",
    "delta-shootout",
];

/// Expand a built-in scenario by name (case-insensitive), or `None` if
/// unknown.
pub fn scenario(name: &str, params: &ScenarioParams) -> Option<Scenario> {
    let (name, description, body) = match name.to_ascii_lowercase().as_str() {
        "smoke" => (
            "smoke",
            "every engine x every session mode, one small run each (CI gate)",
            ScenarioBody::Suite(smoke(params)),
        ),
        "concurrent-shootout" => (
            "concurrent-shootout",
            "scripted replay: users sweep x engines x cache on/off",
            ScenarioBody::Suite(concurrent_shootout(params)),
        ),
        "adaptive-shootout" => (
            "adaptive-shootout",
            "scripted vs adaptive sessions: users sweep x engines x cache on/off",
            ScenarioBody::Suite(adaptive_shootout(params)),
        ),
        "idebench" => (
            "idebench",
            "IDEBench-style stochastic storms: users sweep x engines",
            ScenarioBody::Suite(idebench(params)),
        ),
        "perf-report" => (
            "perf-report",
            "engine latency profile: every engine sequential + duckdb-like parallel scans",
            ScenarioBody::Suite(perf_report(params)),
        ),
        "datagen-sweep" => (
            "datagen-sweep",
            "dataset-generation throughput: datasets x size tiers x 1/N threads",
            ScenarioBody::Datagen(datagen_sweep(params)),
        ),
        "chaos" => (
            "chaos",
            "fault injection under resilience: every fault kind x engines x cache on/off",
            ScenarioBody::Suite(chaos(params)),
        ),
        "remote-shootout" => (
            "remote-shootout",
            "engines over the wire protocol: every engine x cache on/off, fingerprinted \
             (--addr host:port needs a running simba-server; default loopback does not)",
            ScenarioBody::Suite(remote_shootout(params)),
        ),
        "delta-shootout" => (
            "delta-shootout",
            "session-delta reuse: adaptive + scripted sessions on duckdb-like, delta on/off, \
             fingerprinted (the off runs are the equivalence baseline)",
            ScenarioBody::Suite(delta_shootout(params)),
        ),
        _ => return None,
    };
    Some(Scenario {
        name,
        description,
        body,
    })
}

/// All built-in scenarios expanded under one parameter set.
pub fn all_scenarios(params: &ScenarioParams) -> Vec<Scenario> {
    SCENARIO_NAMES
        .iter()
        .map(|name| scenario(name, params).expect("registry names are exhaustive"))
        .collect()
}

fn smoke(params: &ScenarioParams) -> Vec<ScenarioSpec> {
    let users = params.first_users();
    let mut specs = Vec::new();
    for kind in EngineKind::ALL {
        for source in [
            SourceSpec::scripted(),
            SourceSpec::adaptive(),
            SourceSpec::idebench(),
        ] {
            let mut spec = params.base("smoke", users);
            spec.engine = EngineSpec::new(kind);
            spec.source = source;
            spec.cache = Some(CacheSpec::default());
            // Smoke doubles as a cheap determinism canary: fingerprints on.
            spec.collect_fingerprints = true;
            specs.push(spec);
        }
    }
    specs
}

fn concurrent_shootout(params: &ScenarioParams) -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    for &users in &params.users {
        for kind in EngineKind::ALL {
            for cache_on in [false, true] {
                let mut spec = params.base("concurrent-shootout", users);
                spec.engine = EngineSpec::new(kind);
                spec.source = SourceSpec::scripted();
                spec.cache = cache_on.then(CacheSpec::default);
                specs.push(spec);
            }
        }
    }
    specs
}

fn adaptive_shootout(params: &ScenarioParams) -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    for &users in &params.users {
        for kind in EngineKind::ALL {
            for cache_on in [false, true] {
                for source in [SourceSpec::scripted(), SourceSpec::adaptive()] {
                    let mut spec = params.base("adaptive-shootout", users);
                    spec.engine = EngineSpec::new(kind);
                    spec.source = source;
                    spec.cache = cache_on.then(CacheSpec::default);
                    specs.push(spec);
                }
            }
        }
    }
    specs
}

fn idebench(params: &ScenarioParams) -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    for &users in &params.users {
        for kind in EngineKind::ALL {
            let mut spec = params.base("idebench", users);
            spec.engine = EngineSpec::new(kind);
            spec.source = SourceSpec::idebench();
            specs.push(spec);
        }
    }
    specs
}

fn perf_report(params: &ScenarioParams) -> Vec<ScenarioSpec> {
    // Latency profile: one user, no cache, no pacing — the driver's p50/p99
    // are then pure engine service time. Every engine sequential, plus
    // duckdb-like with morsel-parallel scans (0 = one thread per core).
    let mut specs = Vec::new();
    for kind in EngineKind::ALL {
        let mut spec = params.base("perf-report", 1);
        spec.engine = EngineSpec::new(kind);
        spec.source = SourceSpec::scripted();
        spec.think = ThinkSpec::None;
        specs.push(spec);
    }
    let mut parallel = params.base("perf-report", 1);
    parallel.engine = EngineSpec::local(EngineKind::DuckDbLike.name(), 0);
    parallel.source = SourceSpec::scripted();
    parallel.think = ThinkSpec::None;
    specs.push(parallel);
    specs
}

fn chaos(params: &ScenarioParams) -> Vec<ScenarioSpec> {
    let users = params.first_users();
    // Fault timeline seed is decoupled from the workload seed so the same
    // walks can be rerun under a different fault schedule by varying only
    // `--seed` — and vice versa.
    let fault_seed = params.seed.wrapping_add(0xC4A0_5EED);
    let retrying = ResilienceSpec {
        deadline_ms: 0,
        max_retries: 4,
        backoff_base_ms: 1,
        backoff_cap_ms: 8,
        breaker_failure_threshold: 0,
        breaker_cooldown_ms: 0,
        breaker_half_open_probes: 1,
    };

    let mut specs = Vec::new();
    // Mixed-fault sweep: transient errors, latency spikes, and rare panics
    // on every engine, cache on and off. No permanent faults, and a retry
    // budget deep enough that sessions almost always recover.
    for kind in EngineKind::ALL {
        for cache_on in [false, true] {
            let mut spec = params.base("chaos", users);
            spec.engine = EngineSpec::new(kind);
            spec.source = SourceSpec::adaptive();
            spec.cache = cache_on.then(CacheSpec::default);
            spec.collect_fingerprints = true;
            spec.fault = Some(FaultSpec {
                seed: fault_seed,
                latency_spike_prob: 0.05,
                latency_spike_ms: 2,
                transient_error_prob: 0.15,
                permanent_error_prob: 0.0,
                panic_prob: 0.03,
            });
            spec.resilience = Some(retrying.clone());
            specs.push(spec);
        }
    }

    // Deadline pressure: spikes longer than the per-attempt deadline force
    // timeouts; retries re-roll the spike draw, so most queries recover on
    // a fast attempt.
    let mut timeout = params.base("chaos", users);
    timeout.engine = EngineSpec::new(EngineKind::DuckDbLike);
    timeout.source = SourceSpec::scripted();
    timeout.fault = Some(FaultSpec {
        seed: fault_seed,
        latency_spike_prob: 0.3,
        latency_spike_ms: 50,
        ..FaultSpec::default()
    });
    timeout.resilience = Some(ResilienceSpec {
        deadline_ms: 10,
        ..retrying.clone()
    });
    specs.push(timeout);

    // Breaker storm: every execution fails permanently, so the breaker
    // must trip and shed; the run ends with every session degraded. This
    // is the worst case the degraded-run report exists for.
    let mut storm = params.base("chaos", users);
    storm.engine = EngineSpec::new(EngineKind::SqliteLike);
    storm.source = SourceSpec::scripted();
    // Pace the storm past the breaker cooldown so half-open probes get a
    // chance to run (and re-trip, since every probe fails too).
    storm.think = ThinkSpec::Fixed { millis: 10 };
    storm.fault = Some(FaultSpec {
        seed: fault_seed,
        permanent_error_prob: 1.0,
        ..FaultSpec::default()
    });
    storm.resilience = Some(ResilienceSpec {
        deadline_ms: 0,
        max_retries: 1,
        backoff_base_ms: 1,
        backoff_cap_ms: 2,
        breaker_failure_threshold: 3,
        breaker_cooldown_ms: 50,
        breaker_half_open_probes: 1,
    });
    specs.push(storm);

    specs
}

fn remote_shootout(params: &ScenarioParams) -> Vec<ScenarioSpec> {
    // The acceptance bar for the server split: the same walks, through the
    // wire protocol, must fingerprint byte-identically to in-process runs.
    // Fingerprints stay on for every spec so `--addr host:port` against a
    // live server can be diffed directly against the `smoke`/shootout
    // baselines; the default loopback address runs the full protocol
    // in-process and needs no external server.
    let users = params.first_users();
    let mut specs = Vec::new();
    for kind in EngineKind::ALL {
        for cache_on in [false, true] {
            let mut spec = params.base("remote-shootout", users);
            spec.engine = EngineSpec::remote(params.addr.clone(), EngineSpec::new(kind));
            spec.source = SourceSpec::scripted();
            spec.cache = cache_on.then(CacheSpec::default);
            spec.collect_fingerprints = true;
            specs.push(spec);
        }
    }
    specs
}

fn delta_shootout(params: &ScenarioParams) -> Vec<ScenarioSpec> {
    // Session-delta effectiveness: the same walks with delta off (baseline)
    // and on, across the session modes whose steps chain refinements.
    // duckdb-like only — it is the engine that opts in to delta execution;
    // fingerprints stay on so on/off runs can be diffed byte-for-byte.
    let users = params.first_users();
    let mut specs = Vec::new();
    for source in [SourceSpec::scripted(), SourceSpec::adaptive()] {
        for delta_on in [false, true] {
            let mut spec = params.base("delta-shootout", users);
            spec.engine = EngineSpec::new(EngineKind::DuckDbLike);
            spec.source = source.clone();
            spec.delta = delta_on;
            spec.collect_fingerprints = true;
            specs.push(spec);
        }
    }
    specs
}

fn datagen_sweep(params: &ScenarioParams) -> DatagenSweep {
    DatagenSweep {
        datasets: Vec::new(),
        sizes: params.sizes.clone(),
        threads: Vec::new(),
        seed: params.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_scenario_expands_and_validates() {
        let params = ScenarioParams {
            rows: 500,
            users: vec![2, 3],
            steps: 3,
            ..Default::default()
        };
        for name in SCENARIO_NAMES {
            let sc = scenario(name, &params).expect(name);
            assert_eq!(sc.name, name);
            match &sc.body {
                ScenarioBody::Suite(specs) => {
                    assert!(!specs.is_empty(), "{name} expanded to nothing");
                    for spec in specs {
                        spec.validate()
                            .unwrap_or_else(|e| panic!("{name}: invalid spec: {e}"));
                        assert_eq!(spec.name, name);
                    }
                }
                ScenarioBody::Datagen(sweep) => {
                    sweep
                        .validate()
                        .unwrap_or_else(|e| panic!("{name}: invalid sweep: {e}"));
                    assert!(sc.specs().is_empty());
                }
            }
        }
        assert!(scenario("no-such-scenario", &params).is_none());
        assert_eq!(all_scenarios(&params).len(), SCENARIO_NAMES.len());
    }

    #[test]
    fn datagen_sweep_inherits_params() {
        let params = ScenarioParams {
            seed: 9,
            sizes: vec!["10K".into(), "100K".into()],
            ..Default::default()
        };
        let sc = scenario("datagen-sweep", &params).unwrap();
        match sc.body {
            ScenarioBody::Datagen(sweep) => {
                assert_eq!(sweep.seed, 9);
                assert_eq!(sweep.sizes, vec!["10K", "100K"]);
                assert!(sweep.datasets.is_empty(), "all datasets by default");
            }
            ScenarioBody::Suite(_) => panic!("datagen-sweep is not a suite"),
        }
    }

    #[test]
    fn shootout_suites_cover_engines_and_cache_states() {
        let params = ScenarioParams {
            users: vec![2],
            ..Default::default()
        };
        let sc = scenario("adaptive-shootout", &params).unwrap();
        // 1 user count x 4 engines x 2 cache states x 2 modes.
        assert_eq!(sc.specs().len(), 16);
        assert!(sc.specs().iter().any(|s| s.cache.is_some()));
        assert!(sc.specs().iter().any(|s| s.cache.is_none()));
        let engines: std::collections::HashSet<&str> =
            sc.specs().iter().map(|s| s.engine.kind_name()).collect();
        assert_eq!(engines.len(), 4);
    }

    #[test]
    fn smoke_is_case_insensitive_and_fingerprinted() {
        let params = ScenarioParams::default();
        let sc = scenario("SMOKE", &params).unwrap();
        assert_eq!(sc.specs().len(), 12, "4 engines x 3 session modes");
        assert!(sc.specs().iter().all(|s| s.collect_fingerprints));
    }

    #[test]
    fn chaos_covers_every_fault_kind_and_cache_state() {
        let sc = scenario("chaos", &ScenarioParams::default()).unwrap();
        let specs = sc.specs();
        // 4 engines x 2 cache states + timeout spec + breaker storm.
        assert_eq!(specs.len(), 10);
        assert!(specs.iter().all(|s| s.fault.is_some()));
        assert!(specs.iter().all(|s| s.resilience.is_some()));
        assert!(specs.iter().any(|s| s.cache.is_some()));
        assert!(specs.iter().any(|s| s.cache.is_none()));
        let faults: Vec<&FaultSpec> = specs.iter().filter_map(|s| s.fault.as_ref()).collect();
        assert!(faults.iter().any(|f| f.transient_error_prob > 0.0));
        assert!(faults.iter().any(|f| f.permanent_error_prob > 0.0));
        assert!(faults.iter().any(|f| f.latency_spike_prob > 0.0));
        assert!(faults.iter().any(|f| f.panic_prob > 0.0));
        // At least one spec forces timeouts (deadline under spike length)
        // and one enables the breaker.
        assert!(specs.iter().any(|s| {
            let (Some(f), Some(r)) = (&s.fault, &s.resilience) else {
                return false;
            };
            r.deadline_ms > 0 && f.latency_spike_ms > r.deadline_ms
        }));
        assert!(specs
            .iter()
            .any(|s| s.resilience.as_ref().unwrap().breaker_failure_threshold > 0));
    }

    #[test]
    fn remote_shootout_defaults_to_loopback() {
        let sc = scenario("remote-shootout", &ScenarioParams::default()).unwrap();
        // 4 engines x 2 cache states, all over the wire, all fingerprinted.
        assert_eq!(sc.specs().len(), 8);
        assert!(sc.specs().iter().all(|s| s.engine.is_remote()));
        assert!(sc.specs().iter().all(|s| !s.engine.needs_external_server()));
        assert!(sc.specs().iter().all(|s| s.collect_fingerprints));

        let params = ScenarioParams {
            addr: "10.1.2.3:4640".into(),
            ..Default::default()
        };
        let sc = scenario("remote-shootout", &params).unwrap();
        assert!(sc
            .specs()
            .iter()
            .all(|s| s.engine.addr() == Some("10.1.2.3:4640")));
        assert!(sc.specs().iter().all(|s| s.engine.needs_external_server()));
    }

    #[test]
    fn delta_shootout_pairs_on_and_off_runs() {
        let sc = scenario("delta-shootout", &ScenarioParams::default()).unwrap();
        // 2 session modes x delta on/off, all duckdb-like, all fingerprinted.
        assert_eq!(sc.specs().len(), 4);
        assert!(sc
            .specs()
            .iter()
            .all(|s| s.engine.kind_name() == "duckdb-like"));
        assert!(sc.specs().iter().all(|s| s.collect_fingerprints));
        assert_eq!(sc.specs().iter().filter(|s| s.delta).count(), 2);
        assert_eq!(sc.specs().iter().filter(|s| !s.delta).count(), 2);
    }

    #[test]
    fn perf_report_includes_parallel_scans() {
        let sc = scenario("perf-report", &ScenarioParams::default()).unwrap();
        assert_eq!(sc.specs().len(), 5);
        assert!(sc
            .specs()
            .iter()
            .any(|s| s.engine.kind_name() == "duckdb-like" && s.engine.scan_threads() != 1));
        assert!(sc.specs().iter().all(|s| s.sessions == 1));
    }
}
