//! Small non-cryptographic hashing helpers shared by the cache (shard
//! selection) and the driver (result fingerprints).

/// Incremental FNV-1a over byte chunks.
#[derive(Debug, Clone)]
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_chunking_invariant() {
        let mut a = Fnv1a::new();
        a.write(b"hello world");
        let mut b = Fnv1a::new();
        b.write(b"hello ");
        b.write(b"world");
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv1a::new();
        c.write(b"hello worle");
        assert_ne!(a.finish(), c.finish());
    }
}
