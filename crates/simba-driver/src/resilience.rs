//! Driver-side resilience: deadlines, seeded retry/backoff, and per-engine
//! circuit breaking.
//!
//! The worker loop consults a [`ResiliencePolicy`] around every query:
//!
//! * **deadline** — a wall-clock budget per attempt; an attempt that blows
//!   it is *abandoned* (the in-flight call finishes on a detached thread)
//!   and counted as a timeout, so a slow engine can never wedge a session;
//! * **retry + backoff** — transient failures (and timeouts) are retried up
//!   to a budget, sleeping an exponentially growing, seeded-jittered delay
//!   between attempts. Backoff waits are accounted as think-time, not
//!   service time, so the open-loop queue-delay correction stays honest;
//! * **circuit breaker** — a [`CircuitBreaker`] per engine trips after a run
//!   of consecutive failures and sheds queries instantly while open,
//!   trickling probes through half-open until the engine proves healthy.
//!
//! Everything seeded is deterministic: backoff jitter derives from
//! `(driver seed, session seed, step, query, attempt)` via the same
//! splitmix64 mixing the pacing rng uses, never from wall clock or thread
//! identity. The breaker is the one intentionally *time-coupled* piece
//! (cooldowns are wall-clock), which is why it defaults to off and the
//! byte-identity guarantees in `workload` only cover breaker-less configs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How the worker loop reacts to slow and failing queries. The default is
/// completely inert: no deadline, no retries, no breaker — byte-identical
/// to a driver without the resilience layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Wall-clock budget per execution attempt; `None` waits forever.
    pub deadline: Option<Duration>,
    /// Retries after the first attempt (0 = fail on first error). Only
    /// transient failures and timeouts are retried; permanent errors
    /// fail immediately.
    pub max_retries: u32,
    /// Backoff before retry `n` is `min(cap, base · 2ⁿ)`, jittered into
    /// `[½, 1)·` that bound.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff wait.
    pub backoff_cap: Duration,
    /// Consecutive final failures that trip the breaker; 0 disables it.
    pub breaker_failure_threshold: u32,
    /// How long an open breaker sheds before letting probes through.
    pub breaker_cooldown: Duration,
    /// Successful half-open probes required to close again.
    pub breaker_half_open_probes: u32,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            deadline: None,
            max_retries: 0,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            breaker_failure_threshold: 0,
            breaker_cooldown: Duration::ZERO,
            breaker_half_open_probes: 1,
        }
    }
}

impl ResiliencePolicy {
    /// Does any part of the policy do anything? When `false`, the driver
    /// takes its legacy execution path untouched.
    pub fn is_active(&self) -> bool {
        self.deadline.is_some() || self.max_retries > 0 || self.breaker_enabled()
    }

    /// Is the circuit breaker configured?
    pub fn breaker_enabled(&self) -> bool {
        self.breaker_failure_threshold > 0
    }

    /// Stable one-line description for reports.
    pub fn describe(&self) -> String {
        if !self.is_active() {
            return "off".to_string();
        }
        let mut parts = Vec::new();
        if let Some(d) = self.deadline {
            parts.push(format!("deadline={}ms", d.as_millis()));
        }
        if self.max_retries > 0 {
            parts.push(format!(
                "retries={} backoff={}..{}ms",
                self.max_retries,
                self.backoff_base.as_millis(),
                self.backoff_cap.as_millis()
            ));
        }
        if self.breaker_enabled() {
            parts.push(format!(
                "breaker={}fails/{}ms/{}probes",
                self.breaker_failure_threshold,
                self.breaker_cooldown.as_millis(),
                self.breaker_half_open_probes
            ));
        }
        parts.join(" ")
    }

    /// The jittered wait before retry `attempt` (1-based: the wait that
    /// precedes attempt 1 uses `base · 2⁰`). Deterministic in
    /// `(jitter_key, attempt)`; the caller mixes its seeds into the key.
    pub fn backoff_delay(&self, jitter_key: u64, attempt: u32) -> Duration {
        if self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self
            .backoff_base
            .saturating_mul(1u32 << exp.min(31))
            .min(self.backoff_cap.max(self.backoff_base));
        // Jitter into [1/2, 1) of the bound: full-jitter loses too much
        // spacing, zero jitter synchronizes retry storms.
        let u = (splitmix64(jitter_key ^ (0xB0FF_u64 << 32) ^ attempt as u64) >> 11) as f64
            * (1.0 / (1u64 << 53) as f64);
        raw.mul_f64(0.5 + 0.5 * u)
    }
}

/// SplitMix64, the workspace-standard seed mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mix the driver seed, session seed, and step/query position into one
/// jitter key for [`ResiliencePolicy::backoff_delay`].
pub fn jitter_key(driver_seed: u64, session_seed: u64, step: u64, query: u64) -> u64 {
    let mut k = splitmix64(driver_seed ^ 0x5E11_1E4C_E000_0001);
    for part in [session_seed, step, query] {
        k = splitmix64(k ^ splitmix64(part.wrapping_add(1)));
    }
    k
}

#[derive(Debug)]
enum BreakerState {
    /// Healthy: counting consecutive final failures.
    Closed { consecutive_failures: u32 },
    /// Tripped: shedding everything until the cooldown elapses.
    Open { since: Instant },
    /// Probing: up to `probes` in-flight trial queries decide the verdict.
    HalfOpen { in_flight: u32, successes: u32 },
}

/// Classic closed → open → half-open circuit breaker, shared by every
/// worker hitting one engine. State transitions key off *final* outcomes
/// (after retries), so one flaky query that recovers on retry never counts
/// against the engine.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    probes: u32,
    state: Mutex<BreakerState>,
    opens: AtomicU64,
    half_opens: AtomicU64,
    closes: AtomicU64,
    shed: AtomicU64,
}

/// Monotonic breaker counters, snapshot via [`CircuitBreaker::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Closed/half-open → open transitions.
    pub opens: u64,
    /// Open → half-open transitions (cooldown elapsed, probes admitted).
    pub half_opens: u64,
    /// Half-open → closed transitions (engine proved healthy).
    pub closes: u64,
    /// Queries rejected without execution while open or probe-saturated.
    pub shed: u64,
}

impl CircuitBreaker {
    /// A breaker from the policy's knobs. Call only when
    /// [`ResiliencePolicy::breaker_enabled`].
    pub fn new(policy: &ResiliencePolicy) -> CircuitBreaker {
        CircuitBreaker {
            threshold: policy.breaker_failure_threshold.max(1),
            cooldown: policy.breaker_cooldown,
            probes: policy.breaker_half_open_probes.max(1),
            state: Mutex::new(BreakerState::Closed {
                consecutive_failures: 0,
            }),
            opens: AtomicU64::new(0),
            half_opens: AtomicU64::new(0),
            closes: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// May this query execute? `false` means shed: record a degraded step
    /// and do not touch the engine. Admission while half-open counts the
    /// caller as a probe; it **must** report back via
    /// [`on_success`](Self::on_success) or [`on_failure`](Self::on_failure).
    pub fn try_acquire(&self) -> bool {
        let mut state = self.state.lock().unwrap();
        match &mut *state {
            BreakerState::Closed { .. } => true,
            BreakerState::Open { since } => {
                if since.elapsed() >= self.cooldown {
                    *state = BreakerState::HalfOpen {
                        in_flight: 1,
                        successes: 0,
                    };
                    self.half_opens.fetch_add(1, Ordering::Relaxed);
                    simba_obs::counter!("resilience.breaker_half_opens").add(1);
                    true
                } else {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    simba_obs::counter!("resilience.shed").add(1);
                    false
                }
            }
            BreakerState::HalfOpen { in_flight, .. } => {
                if *in_flight < self.probes {
                    *in_flight += 1;
                    true
                } else {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    simba_obs::counter!("resilience.shed").add(1);
                    false
                }
            }
        }
    }

    /// Report a query that ended well (possibly after retries).
    pub fn on_success(&self) {
        let mut state = self.state.lock().unwrap();
        match &mut *state {
            BreakerState::Closed {
                consecutive_failures,
            } => *consecutive_failures = 0,
            BreakerState::HalfOpen {
                in_flight,
                successes,
            } => {
                *in_flight = in_flight.saturating_sub(1);
                *successes += 1;
                if *successes >= self.probes {
                    *state = BreakerState::Closed {
                        consecutive_failures: 0,
                    };
                    self.closes.fetch_add(1, Ordering::Relaxed);
                    simba_obs::counter!("resilience.breaker_closes").add(1);
                }
            }
            BreakerState::Open { .. } => {}
        }
    }

    /// Report a query whose final outcome (after retries) was a failure.
    pub fn on_failure(&self) {
        let mut state = self.state.lock().unwrap();
        match &mut *state {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.threshold {
                    *state = BreakerState::Open {
                        since: Instant::now(),
                    };
                    self.opens.fetch_add(1, Ordering::Relaxed);
                    simba_obs::counter!("resilience.breaker_opens").add(1);
                }
            }
            BreakerState::HalfOpen { .. } => {
                // A failed probe re-trips immediately: the engine is not
                // ready, restart the cooldown.
                *state = BreakerState::Open {
                    since: Instant::now(),
                };
                self.opens.fetch_add(1, Ordering::Relaxed);
                simba_obs::counter!("resilience.breaker_opens").add(1);
            }
            BreakerState::Open { .. } => {}
        }
    }

    /// Snapshot the transition counters.
    pub fn stats(&self) -> BreakerStats {
        BreakerStats {
            opens: self.opens.load(Ordering::Relaxed),
            half_opens: self.half_opens.load(Ordering::Relaxed),
            closes: self.closes.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker_policy(threshold: u32, cooldown: Duration, probes: u32) -> ResiliencePolicy {
        ResiliencePolicy {
            breaker_failure_threshold: threshold,
            breaker_cooldown: cooldown,
            breaker_half_open_probes: probes,
            ..Default::default()
        }
    }

    #[test]
    fn default_policy_is_inert() {
        let p = ResiliencePolicy::default();
        assert!(!p.is_active());
        assert!(!p.breaker_enabled());
        assert_eq!(p.describe(), "off");
        assert_eq!(p.backoff_delay(1, 1), Duration::ZERO);
    }

    #[test]
    fn describe_lists_active_knobs() {
        let p = ResiliencePolicy {
            deadline: Some(Duration::from_millis(250)),
            max_retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            breaker_failure_threshold: 5,
            breaker_cooldown: Duration::from_millis(2_000),
            breaker_half_open_probes: 2,
        };
        assert_eq!(
            p.describe(),
            "deadline=250ms retries=3 backoff=10..200ms breaker=5fails/2000ms/2probes"
        );
    }

    #[test]
    fn backoff_grows_exponentially_under_the_cap_with_bounded_jitter() {
        let p = ResiliencePolicy {
            max_retries: 8,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            ..Default::default()
        };
        let key = jitter_key(7, 11, 3, 0);
        for attempt in 1..=8u32 {
            let bound = Duration::from_millis(10)
                .saturating_mul(1 << (attempt - 1).min(31))
                .min(Duration::from_millis(100));
            let d = p.backoff_delay(key, attempt);
            assert!(
                d >= bound.mul_f64(0.5),
                "attempt {attempt}: {d:?} < ½·{bound:?}"
            );
            assert!(d < bound, "attempt {attempt}: {d:?} ≥ {bound:?}");
            // Determinism: same key + attempt, same delay.
            assert_eq!(d, p.backoff_delay(key, attempt));
        }
        // Different keys jitter differently (overwhelmingly likely).
        let other = jitter_key(7, 12, 3, 0);
        assert_ne!(p.backoff_delay(key, 1), p.backoff_delay(other, 1));
    }

    #[test]
    fn breaker_trips_after_threshold_and_sheds_while_open() {
        let b = CircuitBreaker::new(&breaker_policy(3, Duration::from_secs(3_600), 1));
        for _ in 0..2 {
            assert!(b.try_acquire());
            b.on_failure();
        }
        assert!(b.try_acquire(), "still closed below the threshold");
        b.on_failure();
        assert!(!b.try_acquire(), "tripped: must shed");
        assert!(!b.try_acquire());
        let s = b.stats();
        assert_eq!((s.opens, s.half_opens, s.closes, s.shed), (1, 0, 0, 2));
    }

    #[test]
    fn success_resets_the_consecutive_failure_count() {
        let b = CircuitBreaker::new(&breaker_policy(2, Duration::from_secs(1), 1));
        b.on_failure();
        b.on_success();
        b.on_failure();
        assert!(b.try_acquire(), "failures were not consecutive");
        assert_eq!(b.stats().opens, 0);
    }

    #[test]
    fn breaker_recovers_through_half_open_probes() {
        let b = CircuitBreaker::new(&breaker_policy(1, Duration::ZERO, 2));
        assert!(b.try_acquire());
        b.on_failure();
        assert_eq!(b.stats().opens, 1);
        // Zero cooldown: next acquire goes half-open, admitting 2 probes.
        assert!(b.try_acquire());
        assert!(b.try_acquire());
        assert!(!b.try_acquire(), "probe slots exhausted");
        b.on_success();
        b.on_success();
        assert!(b.try_acquire(), "closed again after enough probe successes");
        let s = b.stats();
        assert_eq!((s.opens, s.half_opens, s.closes), (1, 1, 1));
        assert_eq!(s.shed, 1);
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let b = CircuitBreaker::new(&breaker_policy(1, Duration::ZERO, 1));
        assert!(b.try_acquire());
        b.on_failure(); // trip
        assert!(b.try_acquire()); // half-open probe
        b.on_failure(); // probe fails → re-open
        assert_eq!(b.stats().opens, 2);
    }
}
