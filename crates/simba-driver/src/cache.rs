//! Sharded, lock-striped query-result cache.
//!
//! Keys are the result-shape-pinning cache keys of
//! [`simba_sql::query_cache_key`]: spelling variants issued by different
//! users (case differences, whitespace, reordered conjuncts, folded
//! constants) all hit one entry, while anything that changes the result's
//! column layout (reordered or re-aliased projections, `SUM/COUNT` vs
//! `AVG` output names) gets its own — a hit is always returnable verbatim.
//! The map is striped across [`CacheConfig::shards`] independently
//! locked shards so concurrent sessions rarely contend; hits take only a
//! shard read-lock (recency is tracked with a per-entry atomic, not a lock).
//! Each shard holds at most `capacity_per_shard` entries and evicts its
//! least-recently-used entry on overflow.

use simba_engine::{Dbms, EngineError, ExecStats, QueryOutput};
use simba_sql::{query_cache_key, Select};
use simba_store::ResultSet;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Cache sizing.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Number of lock stripes (rounded up to a power of two).
    pub shards: usize,
    /// Maximum entries per shard.
    pub capacity_per_shard: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            capacity_per_shard: 128,
        }
    }
}

/// Monotonic counters, read with [`ShardedResultCache::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over lookups, or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// A cached execution result (everything except the per-call latency).
#[derive(Debug)]
pub struct CachedResult {
    pub result: ResultSet,
    pub stats: ExecStats,
}

struct Entry {
    value: Arc<CachedResult>,
    /// Logical clock of the last lookup; bumped under the shard read-lock.
    last_used: AtomicU64,
}

/// The cache. Shareable across threads (`Arc<ShardedResultCache>`).
pub struct ShardedResultCache {
    shards: Vec<RwLock<HashMap<String, Entry>>>,
    capacity_per_shard: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ShardedResultCache {
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1).next_power_of_two();
        ShardedResultCache {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            capacity_per_shard: config.capacity_per_shard.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &str) -> &RwLock<HashMap<String, Entry>> {
        // FNV-1a; shard count is a power of two so masking is uniform.
        let mut h = crate::hash::Fnv1a::new();
        h.write(key.as_bytes());
        &self.shards[(h.finish() as usize) & (self.shards.len() - 1)]
    }

    /// Look up a key, bumping its recency. Counts a hit or a miss.
    pub fn lookup(&self, key: &str) -> Option<Arc<CachedResult>> {
        let shard = self.shard_of(key).read().expect("cache shard poisoned");
        match shard.get(key) {
            Some(entry) => {
                entry.last_used.store(
                    self.clock.fetch_add(1, Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or replace) an entry, evicting the shard's LRU entry when at
    /// capacity.
    pub fn insert(&self, key: String, value: Arc<CachedResult>) {
        let mut shard = self.shard_of(&key).write().expect("cache shard poisoned");
        if let Some(existing) = shard.get_mut(&key) {
            existing.value = value;
            return;
        }
        if shard.len() >= self.capacity_per_shard {
            let lru = shard
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            if let Some(k) = lru {
                shard.remove(&k);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let last_used = self.clock.fetch_add(1, Ordering::Relaxed);
        shard.insert(
            key,
            Entry {
                value,
                last_used: AtomicU64::new(last_used),
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Execute through the cache. Returns the result, the latency this
    /// caller observed (key construction + lookup on a hit, engine latency
    /// on a miss), and whether it was a hit.
    pub fn execute_cached(
        &self,
        engine: &dyn Dbms,
        query: &Select,
    ) -> Result<(Arc<CachedResult>, Duration, bool), EngineError> {
        // Key construction (AST normalization + printing) is the dominant
        // cost of a hit — time it, or cache-on latency reports understate
        // the real per-query cost.
        let start = Instant::now();
        let key = query_cache_key(query);
        if let Some(value) = self.lookup(&key) {
            return Ok((value, start.elapsed(), true));
        }
        let out = engine.execute(query)?;
        let value = Arc::new(CachedResult {
            result: out.result,
            stats: out.stats,
        });
        self.insert(key, value.clone());
        Ok((value, out.elapsed, false))
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A [`Dbms`] adapter that consults a shared cache before the inner engine.
/// Reports the inner engine's name so per-engine breakdowns stay stable.
pub struct CachedDbms {
    inner: Arc<dyn Dbms>,
    cache: Arc<ShardedResultCache>,
}

impl CachedDbms {
    pub fn new(inner: Arc<dyn Dbms>, cache: Arc<ShardedResultCache>) -> Self {
        CachedDbms { inner, cache }
    }

    pub fn cache(&self) -> &ShardedResultCache {
        &self.cache
    }
}

impl Dbms for CachedDbms {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn register(&self, table: Arc<simba_store::Table>) {
        self.inner.register(table);
    }

    fn execute(&self, query: &Select) -> Result<QueryOutput, EngineError> {
        let (value, elapsed, _hit) = self.cache.execute_cached(self.inner.as_ref(), query)?;
        Ok(QueryOutput {
            result: value.result.clone(),
            stats: value.stats.clone(),
            elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_of(n: i64) -> Arc<CachedResult> {
        Arc::new(CachedResult {
            result: ResultSet::new(
                vec!["n".to_string()],
                vec![vec![simba_store::Value::Int(n)]],
            ),
            stats: ExecStats::default(),
        })
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = ShardedResultCache::new(CacheConfig::default());
        assert!(cache.lookup("a").is_none());
        cache.insert("a".to_string(), result_of(1));
        assert!(cache.lookup("a").is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = ShardedResultCache::new(CacheConfig {
            shards: 1,
            capacity_per_shard: 2,
        });
        cache.insert("a".to_string(), result_of(1));
        cache.insert("b".to_string(), result_of(2));
        assert!(cache.lookup("a").is_some()); // "a" is now more recent than "b"
        cache.insert("c".to_string(), result_of(3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(
            cache.lookup("b").is_none(),
            "LRU entry should have been evicted"
        );
        assert!(cache.lookup("a").is_some());
        assert!(cache.lookup("c").is_some());
    }

    #[test]
    fn replacement_does_not_evict() {
        let cache = ShardedResultCache::new(CacheConfig {
            shards: 1,
            capacity_per_shard: 2,
        });
        cache.insert("a".to_string(), result_of(1));
        cache.insert("a".to_string(), result_of(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        let v = cache.lookup("a").unwrap();
        assert_eq!(
            v.result.sorted_rows(),
            vec![vec![simba_store::Value::Int(2)]]
        );
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let cache = ShardedResultCache::new(CacheConfig {
            shards: 5,
            capacity_per_shard: 4,
        });
        assert_eq!(cache.shards.len(), 8);
        let cache = ShardedResultCache::new(CacheConfig {
            shards: 0,
            capacity_per_shard: 4,
        });
        assert_eq!(cache.shards.len(), 1);
    }
}
