//! Sharded, lock-striped query-result cache.
//!
//! Keys are the result-shape-pinning cache keys of
//! [`simba_sql::query_cache_key`]: spelling variants issued by different
//! users (case differences, whitespace, reordered conjuncts, folded
//! constants) all hit one entry, while anything that changes the result's
//! column layout (reordered or re-aliased projections, `SUM/COUNT` vs
//! `AVG` output names) gets its own — a hit is always returnable verbatim.
//! The map is striped across [`CacheConfig::shards`] independently
//! locked shards so concurrent sessions rarely contend; hits take only a
//! shard read-lock (recency is tracked with a per-entry atomic, not a lock).
//! Each shard holds at most `capacity_per_shard` entries and evicts its
//! least-recently-used entry on overflow.

use simba_engine::{Dbms, EngineError, ExecStats, QueryOutput};
use simba_sql::{query_cache_key, Select};
use simba_store::ResultSet;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Cache sizing.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Number of lock stripes (rounded up to a power of two).
    pub shards: usize,
    /// Maximum entries per shard.
    pub capacity_per_shard: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            capacity_per_shard: 128,
        }
    }
}

/// Monotonic counters, read with [`ShardedResultCache::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    /// Misses that waited on another caller's in-flight execution of the
    /// same key instead of running the engine themselves (single-flight).
    pub coalesced: u64,
    /// Full-cache invalidations (one per [`ShardedResultCache::clear`]).
    pub invalidations: u64,
    /// Leader executions that ended in an error. Errors are **never
    /// cached** — the failure is handed to this flight's followers and
    /// then forgotten, so the next caller re-executes rather than being
    /// served a remembered failure.
    pub error_passthrough: u64,
}

impl CacheStats {
    /// Hits over lookups, or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// A cached execution result (everything except the per-call latency).
#[derive(Debug)]
pub struct CachedResult {
    pub result: ResultSet,
    pub stats: ExecStats,
}

struct Entry {
    value: Arc<CachedResult>,
    /// Logical clock of the last lookup; bumped under the shard read-lock.
    last_used: AtomicU64,
}

/// A single-flight slot: the first caller to miss a key executes the
/// engine; everyone else blocks here until the leader publishes.
struct Flight {
    outcome: Mutex<Option<Result<Arc<CachedResult>, EngineError>>>,
    ready: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            outcome: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, outcome: Result<Arc<CachedResult>, EngineError>) {
        // Poison recovery, not `expect`: the slot only ever transitions
        // `None -> Some(..)` in a single assignment, so a thread that
        // panicked while holding this lock cannot have left it
        // half-written. Panicking here instead would cascade the leader's
        // failure into every coalesced follower's worker thread.
        let mut slot = self.outcome.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = Some(outcome);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Arc<CachedResult>, EngineError> {
        let mut slot = self.outcome.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match &*slot {
                Some(outcome) => return outcome.clone(),
                None => {
                    slot = self
                        .ready
                        .wait(slot)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }
}

/// Unblocks single-flight followers if the leader unwinds mid-execution:
/// retires the flight and publishes an error so waiters fail fast instead
/// of parking on the condvar forever (which would hang the driver's thread
/// scope rather than propagate the panic).
struct LeaderGuard<'a> {
    inflight: &'a Mutex<HashMap<String, Arc<Flight>>>,
    key: &'a str,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Recover a poisoned lock rather than `expect`: panicking in a
        // drop that runs during unwinding would abort the process, and the
        // map is structurally sound regardless (remove/insert are the only
        // mutations).
        let mut map = match self.inflight.lock() {
            Ok(map) => map,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(flight) = map.remove(self.key) {
            flight.publish(Err(EngineError::Internal(
                "single-flight leader panicked before publishing".to_string(),
            )));
        }
    }
}

/// The cache. Shareable across threads (`Arc<ShardedResultCache>`).
pub struct ShardedResultCache {
    shards: Vec<RwLock<HashMap<String, Entry>>>,
    /// Keys currently being executed by a leader, striped like `shards`.
    inflight: Vec<Mutex<HashMap<String, Arc<Flight>>>>,
    /// Bumped by [`clear`](Self::clear) *before* the shards are wiped; a
    /// single-flight leader only inserts its result if the generation it
    /// read before executing is still current, so an execution that raced
    /// an invalidation cannot re-seed the cache with stale data.
    generation: AtomicU64,
    capacity_per_shard: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    coalesced: AtomicU64,
    invalidations: AtomicU64,
    error_passthrough: AtomicU64,
}

impl ShardedResultCache {
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1).next_power_of_two();
        ShardedResultCache {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            inflight: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            generation: AtomicU64::new(0),
            capacity_per_shard: config.capacity_per_shard.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            error_passthrough: AtomicU64::new(0),
        }
    }

    fn shard_index(&self, key: &str) -> usize {
        // FNV-1a; shard count is a power of two so masking is uniform.
        let mut h = crate::hash::Fnv1a::new();
        h.write(key.as_bytes());
        (h.finish() as usize) & (self.shards.len() - 1)
    }

    fn shard_of(&self, key: &str) -> &RwLock<HashMap<String, Entry>> {
        // simba: allow(panic-hygiene): shard_index masks by the power-of-two shard count, so the index is in range by construction
        &self.shards[self.shard_index(key)]
    }

    /// Recover a shard's map from a poisoned lock. A panic while a guard
    /// was held cannot corrupt the `HashMap` structurally (insert/remove/
    /// clear don't unwind mid-rebalance), and the worst observable state —
    /// a stale-but-valid entry — is exactly what a cache is allowed to
    /// serve. Propagating the poison would instead fail every later query
    /// that hashes to this shard.
    fn read_shard<'a>(
        shard: &'a RwLock<HashMap<String, Entry>>,
    ) -> std::sync::RwLockReadGuard<'a, HashMap<String, Entry>> {
        shard.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write-lock twin of [`read_shard`](Self::read_shard).
    fn write_shard<'a>(
        shard: &'a RwLock<HashMap<String, Entry>>,
    ) -> std::sync::RwLockWriteGuard<'a, HashMap<String, Entry>> {
        shard.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a key, bumping its recency. Counts a hit or a miss.
    pub fn lookup(&self, key: &str) -> Option<Arc<CachedResult>> {
        let shard = Self::read_shard(self.shard_of(key));
        match shard.get(key) {
            Some(entry) => {
                entry.last_used.store(
                    self.clock.fetch_add(1, Ordering::Relaxed),
                    Ordering::Relaxed,
                );
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Read a key without touching the hit/miss counters (used for the
    /// double-check inside the single-flight path, where the original
    /// lookup already counted the miss).
    fn peek(&self, key: &str) -> Option<Arc<CachedResult>> {
        let shard = Self::read_shard(self.shard_of(key));
        shard.get(key).map(|entry| {
            entry.last_used.store(
                self.clock.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            entry.value.clone()
        })
    }

    /// Drop every resident entry (all shards). Counters other than
    /// `invalidations` are left running — a cleared cache has still served
    /// its historical hits. In-flight executions are *not* cancelled, but
    /// they cannot repopulate the cache either: the generation bump below
    /// makes any leader that started before this clear skip its insert
    /// (its followers still receive the result, exactly as if they had
    /// executed the query themselves while the data changed).
    pub fn clear(&self) {
        // Bump first: a leader that checks its generation under a shard
        // write lock after this line either loses the check (no insert) or
        // inserts before we take that shard's lock — and is then wiped.
        self.generation.fetch_add(1, Ordering::AcqRel);
        for shard in &self.shards {
            Self::write_shard(shard).clear();
        }
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Insert (or replace) an entry, evicting the shard's LRU entry when at
    /// capacity.
    pub fn insert(&self, key: String, value: Arc<CachedResult>) {
        self.insert_guarded(key, value, None);
    }

    /// [`insert`](Self::insert), but a no-op when `only_if_generation` no
    /// longer matches — checked under the shard write lock, so it cannot
    /// race [`clear`](Self::clear).
    fn insert_guarded(
        &self,
        key: String,
        value: Arc<CachedResult>,
        only_if_generation: Option<u64>,
    ) {
        let mut shard = Self::write_shard(self.shard_of(&key));
        if let Some(generation) = only_if_generation {
            if self.generation.load(Ordering::Acquire) != generation {
                return;
            }
        }
        if let Some(existing) = shard.get_mut(&key) {
            existing.value = value;
            return;
        }
        if shard.len() >= self.capacity_per_shard {
            // Minimizing over `(last_used, key)` is order-insensitive: the
            // logical clock makes `last_used` unique in practice, and the
            // key tie-break pins the winner even if two entries ever carry
            // the same tick — which entry is evicted never depends on the
            // hasher's iteration order.
            // simba: allow(nondeterministic-iteration): min over the totally ordered (last_used, key) pair; iteration order cannot change the winner
            let lru = shard
                .iter()
                .min_by(|(ka, ea), (kb, eb)| {
                    ea.last_used
                        .load(Ordering::Relaxed)
                        .cmp(&eb.last_used.load(Ordering::Relaxed))
                        .then_with(|| ka.cmp(kb))
                })
                .map(|(k, _)| k.clone());
            if let Some(k) = lru {
                shard.remove(&k);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let last_used = self.clock.fetch_add(1, Ordering::Relaxed);
        shard.insert(
            key,
            Entry {
                value,
                last_used: AtomicU64::new(last_used),
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Execute through the cache. Returns the result, the latency this
    /// caller observed (key construction + lookup on a hit, engine latency
    /// on a miss, wait time when coalesced onto another caller's in-flight
    /// execution), and whether the result came from memory rather than this
    /// caller's own engine run.
    ///
    /// Misses are **single-flight**: concurrent misses on one key elect a
    /// leader that executes the engine exactly once while the rest block on
    /// its `Flight` — without this, every concurrent session redundantly
    /// executes the same query, inflating engine load (and adaptive-mode
    /// latency) on popular keys.
    pub fn execute_cached(
        &self,
        engine: &dyn Dbms,
        query: &Select,
    ) -> Result<(Arc<CachedResult>, Duration, bool), EngineError> {
        self.execute_cached_with(engine, query, &mut |e, q| e.execute(q))
    }

    /// [`execute_cached`](Self::execute_cached) with a caller-supplied
    /// execution strategy. The single-flight **leader** runs `run(engine,
    /// query)` in place of a bare `engine.execute`; followers still wait on
    /// the flight. This is how the driver's resilience layer pushes its
    /// retry loop *inside* the leader: a follower coalesced onto a flaky
    /// key observes the leader's post-retry outcome, never the raw first
    /// failure.
    pub fn execute_cached_with(
        &self,
        engine: &dyn Dbms,
        query: &Select,
        run: &mut dyn FnMut(&dyn Dbms, &Select) -> Result<QueryOutput, EngineError>,
    ) -> Result<(Arc<CachedResult>, Duration, bool), EngineError> {
        let _span = simba_obs::trace::span("cache.execute", "cache");
        // Key construction (AST normalization + printing) is the dominant
        // cost of a hit — time it, or cache-on latency reports understate
        // the real per-query cost.
        // simba: allow(wall-clock-outside-obs): hit/wait latency is this layer's measured deliverable, surfaced via obs phases; it never reaches fingerprints
        let start = Instant::now();
        let lookup_phase = simba_obs::phase!("cache.lookup", "cache", "cache.phase.lookup");
        let key = query_cache_key(query);
        if let Some(value) = self.lookup(&key) {
            return Ok((value, start.elapsed(), true));
        }
        drop(lookup_phase);
        // Miss (counted). Join an in-flight execution of this key, or
        // become its leader.
        // simba: allow(panic-hygiene): shard_index masks by the power-of-two stripe count, so the index is in range by construction
        let inflight = &self.inflight[self.shard_index(&key)];
        let flight = {
            // Poisoned-lock recovery throughout the inflight map: its only
            // mutations are insert/remove, so the map is structurally
            // sound after a panic; failing here would take this worker
            // down for an infrastructure fault another thread caused.
            let mut map = inflight.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(flight) = map.get(&key) {
                Some(flight.clone())
            } else {
                // A leader that finished between our lookup and this lock
                // has already populated the cache — re-check before
                // electing ourselves (peek: the miss was already counted).
                if let Some(value) = self.peek(&key) {
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    return Ok((value, start.elapsed(), true));
                }
                map.insert(key.clone(), Arc::new(Flight::new()));
                None
            }
        };
        if let Some(flight) = flight {
            // Follower: wait for the leader's verdict.
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            let value = {
                let _p = simba_obs::phase!("cache.wait", "cache", "cache.phase.wait");
                flight.wait()?
            };
            return Ok((value, start.elapsed(), true));
        }
        // Leader: run the engine, publish to cache + followers, then retire
        // the flight (cache-first, so late arrivals always find the value).
        // The guard retires the flight with an error if the engine panics —
        // otherwise followers would block on the condvar forever and the
        // driver's thread scope would hang instead of propagating the
        // panic.
        let generation = self.generation.load(Ordering::Acquire);
        let mut guard = LeaderGuard {
            inflight,
            key: &key,
            armed: true,
        };
        let outcome = run(engine, query).map(|out| {
            let value = Arc::new(CachedResult {
                result: out.result,
                stats: out.stats,
            });
            // Skip the insert if the cache was invalidated while we ran:
            // this result may have been computed against replaced data.
            self.insert_guarded(key.clone(), value.clone(), Some(generation));
            (value, out.elapsed)
        });
        if outcome.is_err() {
            // Negative-result policy: errors pass through uncached (the
            // next caller re-executes), but are counted so a flaky engine
            // shows up in the cache report rather than vanishing. (The
            // metrics-registry promotion happens once at end of run with
            // the other cache counters.)
            self.error_passthrough.fetch_add(1, Ordering::Relaxed);
        }
        let mut map = inflight.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(flight) = map.remove(&key) {
            flight.publish(
                outcome
                    .as_ref()
                    .map(|(v, _)| v.clone())
                    .map_err(Clone::clone),
            );
        }
        guard.armed = false;
        drop(map);
        outcome.map(|(value, elapsed)| (value, elapsed, false))
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            error_passthrough: self.error_passthrough.load(Ordering::Relaxed),
        }
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::read_shard(s).len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A [`Dbms`] adapter that consults a shared cache before the inner engine.
/// Reports the inner engine's name so per-engine breakdowns stay stable.
pub struct CachedDbms {
    inner: Arc<dyn Dbms>,
    cache: Arc<ShardedResultCache>,
}

impl CachedDbms {
    pub fn new(inner: Arc<dyn Dbms>, cache: Arc<ShardedResultCache>) -> Self {
        CachedDbms { inner, cache }
    }

    pub fn cache(&self) -> &ShardedResultCache {
        &self.cache
    }
}

impl Dbms for CachedDbms {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn register(&self, table: Arc<simba_store::Table>) {
        // Registering replaces any same-named table, so every cached result
        // is potentially derived from dead data: invalidate before the
        // inner engine can serve queries against the replacement.
        self.cache.clear();
        self.inner.register(table);
    }

    fn execute(&self, query: &Select) -> Result<QueryOutput, EngineError> {
        let (value, elapsed, _hit) = self.cache.execute_cached(self.inner.as_ref(), query)?;
        Ok(QueryOutput {
            result: value.result.clone(),
            stats: value.stats.clone(),
            elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_of(n: i64) -> Arc<CachedResult> {
        Arc::new(CachedResult {
            result: ResultSet::new(
                vec!["n".to_string()],
                vec![vec![simba_store::Value::Int(n)]],
            ),
            stats: ExecStats::default(),
        })
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = ShardedResultCache::new(CacheConfig::default());
        assert!(cache.lookup("a").is_none());
        cache.insert("a".to_string(), result_of(1));
        assert!(cache.lookup("a").is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = ShardedResultCache::new(CacheConfig {
            shards: 1,
            capacity_per_shard: 2,
        });
        cache.insert("a".to_string(), result_of(1));
        cache.insert("b".to_string(), result_of(2));
        assert!(cache.lookup("a").is_some()); // "a" is now more recent than "b"
        cache.insert("c".to_string(), result_of(3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(
            cache.lookup("b").is_none(),
            "LRU entry should have been evicted"
        );
        assert!(cache.lookup("a").is_some());
        assert!(cache.lookup("c").is_some());
    }

    #[test]
    fn replacement_does_not_evict() {
        let cache = ShardedResultCache::new(CacheConfig {
            shards: 1,
            capacity_per_shard: 2,
        });
        cache.insert("a".to_string(), result_of(1));
        cache.insert("a".to_string(), result_of(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        let v = cache.lookup("a").unwrap();
        assert_eq!(
            v.result.sorted_rows(),
            vec![vec![simba_store::Value::Int(2)]]
        );
    }

    #[test]
    fn clear_empties_every_shard_and_counts_invalidation() {
        let cache = ShardedResultCache::new(CacheConfig {
            shards: 4,
            capacity_per_shard: 8,
        });
        for i in 0..20 {
            cache.insert(format!("k{i}"), result_of(i));
        }
        assert_eq!(cache.len(), 20);
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.lookup("k3").is_none());
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.insertions, 20, "counters survive a clear");
    }

    fn rows_table(name: &str, n: i64) -> Arc<simba_store::Table> {
        let schema =
            simba_store::Schema::new(name, vec![simba_store::ColumnDef::quantitative_int("x")]);
        let mut b = simba_store::TableBuilder::new(schema, n as usize);
        for i in 0..n {
            b.push_row(vec![simba_store::Value::Int(i)]);
        }
        Arc::new(b.finish())
    }

    /// Regression: `register` used to forward the replacement table to the
    /// inner engine while the cache kept serving results computed from the
    /// old one.
    #[test]
    fn register_invalidates_stale_cached_results() {
        let cache = Arc::new(ShardedResultCache::new(CacheConfig::default()));
        let db = CachedDbms::new(simba_engine::EngineKind::SqliteLike.build(), cache.clone());
        db.register(rows_table("t", 3));
        let q = simba_sql::parse_select("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(
            db.execute(&q).unwrap().result.rows,
            vec![vec![simba_store::Value::Int(3)]]
        );
        db.execute(&q).unwrap();
        assert_eq!(cache.stats().hits, 1, "second execution hits");

        db.register(rows_table("t", 5));
        assert!(cache.is_empty(), "register must clear the cache");
        assert_eq!(
            db.execute(&q).unwrap().result.rows,
            vec![vec![simba_store::Value::Int(5)]],
            "post-register execution must see the replacement table"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 2, "post-register lookup must miss");
        assert_eq!(stats.invalidations, 2, "one per register call");
    }

    /// A clear that lands while a leader is still executing must not let
    /// the leader re-seed the cache with a result computed against the
    /// replaced data — the caller still gets its result, the cache stays
    /// empty.
    #[test]
    fn invalidation_during_inflight_execution_suppresses_stale_insert() {
        struct ClearingEngine<'a> {
            cache: &'a ShardedResultCache,
        }
        impl Dbms for ClearingEngine<'_> {
            fn name(&self) -> &'static str {
                "clearing-stub"
            }
            fn register(&self, _table: Arc<simba_store::Table>) {}
            fn execute(&self, _query: &Select) -> Result<QueryOutput, EngineError> {
                // The data is replaced while this query is mid-execution.
                self.cache.clear();
                Ok(QueryOutput {
                    result: ResultSet::new(
                        vec!["n".to_string()],
                        vec![vec![simba_store::Value::Int(1)]],
                    ),
                    stats: ExecStats::default(),
                    elapsed: Duration::from_micros(1),
                })
            }
        }
        let cache = ShardedResultCache::new(CacheConfig::default());
        let q = simba_sql::parse_select("SELECT n FROM t").unwrap();
        let engine = ClearingEngine { cache: &cache };
        let (value, _elapsed, hit) = cache.execute_cached(&engine, &q).unwrap();
        assert!(!hit);
        assert_eq!(
            value.result.rows,
            vec![vec![simba_store::Value::Int(1)]],
            "the caller still receives its result"
        );
        assert!(
            cache.is_empty(),
            "a potentially-stale in-flight result must not be cached"
        );
        assert_eq!(cache.stats().insertions, 0);
    }

    /// A leader that panics inside `engine.execute` must retire its flight
    /// on unwind; otherwise the next caller (or any blocked follower)
    /// waits on the dead flight forever.
    #[test]
    fn leader_panic_retires_flight_instead_of_wedging_followers() {
        struct PanickingEngine;
        impl Dbms for PanickingEngine {
            fn name(&self) -> &'static str {
                "panicking-stub"
            }
            fn register(&self, _table: Arc<simba_store::Table>) {}
            fn execute(&self, _query: &Select) -> Result<QueryOutput, EngineError> {
                panic!("injected engine bug");
            }
        }
        let cache = ShardedResultCache::new(CacheConfig::default());
        let q = simba_sql::parse_select("SELECT n FROM t").unwrap();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.execute_cached(&PanickingEngine, &q)
        }));
        assert!(unwound.is_err(), "the leader's panic propagates");
        // The flight was retired on unwind: a fresh caller elects itself
        // leader and succeeds instead of parking on the dead flight. (If
        // the guard were missing, this call would hang the test forever.)
        struct OkEngine;
        impl Dbms for OkEngine {
            fn name(&self) -> &'static str {
                "ok-stub"
            }
            fn register(&self, _table: Arc<simba_store::Table>) {}
            fn execute(&self, _query: &Select) -> Result<QueryOutput, EngineError> {
                Ok(QueryOutput {
                    result: ResultSet::new(
                        vec!["n".to_string()],
                        vec![vec![simba_store::Value::Int(2)]],
                    ),
                    stats: ExecStats::default(),
                    elapsed: Duration::from_micros(1),
                })
            }
        }
        let (value, _elapsed, hit) = cache.execute_cached(&OkEngine, &q).unwrap();
        assert!(!hit);
        assert_eq!(value.result.rows, vec![vec![simba_store::Value::Int(2)]]);
    }

    /// Negative-result policy: an erroring leader must not seed the cache
    /// with its failure — the next caller (a healthy retry of the same
    /// key) re-executes and caches normally, and followers of *that*
    /// flight see the good result.
    #[test]
    fn erroring_leader_does_not_poison_later_callers() {
        use std::sync::atomic::AtomicBool;
        struct FlakyOnce {
            failed: AtomicBool,
        }
        impl Dbms for FlakyOnce {
            fn name(&self) -> &'static str {
                "flaky-once-stub"
            }
            fn register(&self, _table: Arc<simba_store::Table>) {}
            fn execute(&self, _query: &Select) -> Result<QueryOutput, EngineError> {
                if !self.failed.swap(true, Ordering::SeqCst) {
                    return Err(EngineError::Transient("first call drops".to_string()));
                }
                Ok(QueryOutput {
                    result: ResultSet::new(
                        vec!["n".to_string()],
                        vec![vec![simba_store::Value::Int(7)]],
                    ),
                    stats: ExecStats::default(),
                    elapsed: Duration::from_micros(1),
                })
            }
        }
        let cache = ShardedResultCache::new(CacheConfig::default());
        let q = simba_sql::parse_select("SELECT n FROM t").unwrap();
        let engine = FlakyOnce {
            failed: AtomicBool::new(false),
        };
        let err = cache.execute_cached(&engine, &q).unwrap_err();
        assert!(err.is_transient());
        assert!(cache.is_empty(), "errors must never be cached");
        assert_eq!(cache.stats().error_passthrough, 1);

        let (value, _elapsed, hit) = cache.execute_cached(&engine, &q).unwrap();
        assert!(!hit, "the retry re-executes instead of replaying the error");
        assert_eq!(value.result.rows, vec![vec![simba_store::Value::Int(7)]]);
        assert_eq!(cache.stats().insertions, 1);
        // And now the key serves hits like any healthy entry.
        let (_, _, hit) = cache.execute_cached(&engine, &q).unwrap();
        assert!(hit);
    }

    /// `execute_cached_with` runs the caller's strategy as the leader: a
    /// retry loop inside it converts a transient first failure into a
    /// success that followers and later callers observe.
    #[test]
    fn leader_retry_strategy_hides_transient_failures_from_the_cache() {
        use std::sync::atomic::AtomicU64;
        struct FlakyTwice {
            calls: AtomicU64,
        }
        impl Dbms for FlakyTwice {
            fn name(&self) -> &'static str {
                "flaky-twice-stub"
            }
            fn register(&self, _table: Arc<simba_store::Table>) {}
            fn execute(&self, _query: &Select) -> Result<QueryOutput, EngineError> {
                if self.calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    return Err(EngineError::Transient("warming up".to_string()));
                }
                Ok(QueryOutput {
                    result: ResultSet::new(
                        vec!["n".to_string()],
                        vec![vec![simba_store::Value::Int(9)]],
                    ),
                    stats: ExecStats::default(),
                    elapsed: Duration::from_micros(1),
                })
            }
        }
        let cache = ShardedResultCache::new(CacheConfig::default());
        let q = simba_sql::parse_select("SELECT n FROM t").unwrap();
        let engine = FlakyTwice {
            calls: AtomicU64::new(0),
        };
        let mut attempts = 0u32;
        let (value, _elapsed, hit) = cache
            .execute_cached_with(&engine, &q, &mut |e, q| loop {
                attempts += 1;
                match e.execute(q) {
                    Ok(out) => return Ok(out),
                    Err(err) if err.is_transient() && attempts < 4 => continue,
                    Err(err) => return Err(err),
                }
            })
            .unwrap();
        assert!(!hit);
        assert_eq!(attempts, 3, "two transient failures were retried away");
        assert_eq!(value.result.rows, vec![vec![simba_store::Value::Int(9)]]);
        let stats = cache.stats();
        assert_eq!(
            stats.error_passthrough, 0,
            "the flight's outcome is the post-retry success"
        );
        assert_eq!(stats.insertions, 1);
    }

    /// Regression for the panic-hygiene pass: a thread that panics while
    /// holding a shard lock used to poison it and take down every later
    /// caller that hashed to that shard. The cache now recovers the lock —
    /// the map is structurally sound, and serving a cache entry is always
    /// safe — so one crashed worker cannot cascade into a dead cache.
    #[test]
    fn poisoned_shard_lock_is_recovered_not_propagated() {
        let cache = Arc::new(ShardedResultCache::new(CacheConfig {
            shards: 1,
            capacity_per_shard: 4,
        }));
        cache.insert("a".to_string(), result_of(1));
        let poisoner = Arc::clone(&cache);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.shards[0].write().unwrap();
            panic!("poison the shard lock");
        })
        .join();
        assert!(
            cache.shards[0].is_poisoned(),
            "setup: lock must be poisoned"
        );
        // Every path over the poisoned shard degrades to recovery.
        assert!(cache.lookup("a").is_some());
        cache.insert("b".to_string(), result_of(2));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    /// Regression: a follower coalesced onto a panicking leader's flight
    /// must receive `EngineError::Internal` — not hang on the condvar, and
    /// not panic itself. The leader blocks until the follower has joined
    /// (observed via the `coalesced` counter), then panics; its unwind
    /// guard retires the flight with the error the follower sees.
    #[test]
    fn follower_of_panicking_leader_gets_internal_error() {
        struct PanicOnceJoined<'a> {
            cache: &'a ShardedResultCache,
        }
        impl Dbms for PanicOnceJoined<'_> {
            fn name(&self) -> &'static str {
                "panic-once-joined-stub"
            }
            fn register(&self, _table: Arc<simba_store::Table>) {}
            fn execute(&self, _query: &Select) -> Result<QueryOutput, EngineError> {
                while self.cache.stats().coalesced == 0 {
                    std::thread::yield_now();
                }
                panic!("injected leader bug");
            }
        }
        let cache = ShardedResultCache::new(CacheConfig::default());
        let q = simba_sql::parse_select("SELECT n FROM t").unwrap();
        let follower_outcome = std::thread::scope(|scope| {
            let leader = scope.spawn(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.execute_cached(&PanicOnceJoined { cache: &cache }, &q)
                }))
            });
            let follower = scope.spawn(|| {
                // Join only after the leader's flight exists, so this
                // thread cannot win the leader election itself.
                while !cache.inflight.iter().any(|m| !m.lock().unwrap().is_empty()) {
                    std::thread::yield_now();
                }
                cache.execute_cached(&PanicOnceJoined { cache: &cache }, &q)
            });
            assert!(
                leader.join().unwrap().is_err(),
                "the leader's panic propagates"
            );
            follower.join().unwrap()
        });
        match follower_outcome {
            Err(EngineError::Internal(msg)) => {
                assert!(msg.contains("leader panicked"), "unexpected message: {msg}")
            }
            other => panic!("follower should see Internal, got {other:?}"),
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let cache = ShardedResultCache::new(CacheConfig {
            shards: 5,
            capacity_per_shard: 4,
        });
        assert_eq!(cache.shards.len(), 8);
        let cache = ShardedResultCache::new(CacheConfig {
            shards: 0,
            capacity_per_shard: 4,
        });
        assert_eq!(cache.shards.len(), 1);
    }
}
