//! Log-bucketed latency histograms.
//!
//! The implementation moved to [`simba_obs::hist`] so the observability
//! crate's metrics registry can use it as its histogram backend without a
//! dependency cycle; this module re-exports it to keep the long-standing
//! `simba_driver::LatencyHistogram` path working.

pub use simba_obs::hist::LatencyHistogram;
