//! # simba-driver — concurrent multi-session workload driver
//!
//! The paper benchmarks one exploration session at a time; a production
//! deployment serves *many simultaneous users* whose dashboards hammer the
//! same engine. This crate turns the session synthesizer plus the four
//! engines into a load-generation harness:
//!
//! * [`simba_core::session::batch`] pre-generates N heterogeneous session
//!   scripts (engine-free Markov walks, deterministic per seed);
//! * [`Driver`] replays them from a worker pool, closed-loop (fixed user
//!   population, think-time paced) or open-loop (Poisson arrivals, for
//!   saturation testing);
//! * [`Driver::run_adaptive`] instead runs *live* sessions: each user's
//!   Markov walk executes as it goes and an [`AdaptivePolicy`] steers on
//!   results (backtrack out of emptied charts, drill into dominant
//!   groups) — the paper's adaptivity argument under concurrent load;
//! * [`ShardedResultCache`] is a lock-striped result cache keyed on
//!   [`simba_sql::query_cache_key`], so normalization-equivalent queries
//!   from different users hit memory instead of the engine;
//! * [`LatencyHistogram`] log-bucketed latencies feed a [`DriverReport`]
//!   with throughput, p50/p95/p99, queue delay, and cache hit rates.
//!
//! ```
//! use simba_core::dashboard::Dashboard;
//! use simba_core::session::batch::{synthesize_scripts, BatchConfig};
//! use simba_core::spec::builtin::builtin;
//! use simba_data::DashboardDataset;
//! use simba_driver::{CacheConfig, Driver, DriverConfig};
//! use simba_engine::EngineKind;
//! use std::sync::Arc;
//!
//! let ds = DashboardDataset::CustomerService;
//! let table = Arc::new(ds.generate_rows(1_000, 42));
//! let dashboard = Dashboard::new(builtin(ds), &table).unwrap();
//! let scripts = synthesize_scripts(&dashboard, &BatchConfig::default(), 8);
//!
//! let engine = EngineKind::DuckDbLike.build();
//! engine.register(table);
//! let driver = Driver::new(DriverConfig {
//!     cache: Some(CacheConfig::default()),
//!     ..Default::default()
//! });
//! let outcome = driver.run(engine, &scripts);
//! assert!(outcome.report.queries > 0);
//! assert!(outcome.report.cache.unwrap().hits > 0);
//! ```

pub mod cache;
pub mod driver;
pub(crate) mod hash;
pub mod histogram;
pub mod report;

pub use cache::{CacheConfig, CacheStats, CachedDbms, CachedResult, ShardedResultCache};
pub use driver::{
    fingerprint, AdaptiveConfig, Arrival, Driver, DriverConfig, DriverOutcome, ThinkTime,
    ERROR_FINGERPRINT,
};
pub use histogram::LatencyHistogram;
pub use report::{CacheReport, DriverReport, LatencySummary, SteeringReport};

// Re-exported so driver users can configure steering without importing
// simba-core directly.
pub use simba_core::session::adaptive::{AdaptivePolicy, SteeringKind};
