//! # simba-driver — concurrent multi-session workload driver
//!
//! The paper benchmarks one exploration session at a time; a production
//! deployment serves *many simultaneous users* whose dashboards hammer the
//! same engine. This crate turns the session sources plus the four engines
//! into a load-generation harness with **one execution surface**:
//!
//! * [`workload::ScenarioSpec`] declaratively describes a run — dataset,
//!   seed, engine (+ scan threads), session source, pacing, cache — and
//!   [`Driver::execute`] runs it. Specs serialize to JSON, so scenarios are
//!   data files; the built-in suites live in [`workload::registry`].
//! * Session *content* comes from a
//!   [`SessionSource`]:
//!   scripted replay of pre-synthesized Markov walks, live result-steered
//!   adaptive sessions, or IDEBench-style stochastic storms
//!   ([`simba_idebench::IdebenchSource`]) — all through the same
//!   feedback-driven stream protocol and the same worker pool
//!   ([`Driver::run_source`]).
//! * Arrival pacing is closed-loop (fixed user population, think-time
//!   paced) or open-loop (Poisson arrivals, for saturation testing).
//! * [`ShardedResultCache`] is a lock-striped result cache keyed on
//!   [`simba_sql::query_cache_key`], so normalization-equivalent queries
//!   from different users hit memory instead of the engine;
//! * [`LatencyHistogram`] log-bucketed latencies feed a versioned
//!   [`RunReport`] with throughput, p50/p95/p99, queue delay, steering
//!   counters, and cache hit rates.
//! * A [`ResiliencePolicy`] (per-query deadlines, seeded retry/backoff, a
//!   circuit breaker) hardens the worker loop against the deterministic
//!   faults a [`simba_engine::FaultInjectingDbms`]-wrapped engine injects;
//!   chaos runs report an error taxonomy and per-session degradation in
//!   the [`FaultReport`]/[`ResilienceReport`] sections.
//!
//! ```
//! use simba_driver::workload::{ScenarioSpec, SourceSpec};
//! use simba_driver::Driver;
//!
//! let mut spec = ScenarioSpec::new("quickstart", "customer_service");
//! spec.rows = 1_000;
//! spec.sessions = 8;
//! spec.cache = Some(Default::default());
//! spec.source = SourceSpec::scripted();
//!
//! let outcome = Driver::execute(&spec).unwrap();
//! assert!(outcome.report.queries > 0);
//! assert!(outcome.report.cache.unwrap().hits > 0);
//! ```
//!
//! The pre-scenario entry points ([`Driver::run`] with scripts,
//! [`Driver::run_adaptive`]) remain as thin shims over the same loop:
//!
//! ```
//! use simba_core::dashboard::Dashboard;
//! use simba_core::session::batch::{synthesize_scripts, BatchConfig};
//! use simba_core::spec::builtin::builtin;
//! use simba_data::DashboardDataset;
//! use simba_driver::{CacheConfig, Driver, DriverConfig};
//! use simba_engine::EngineKind;
//! use std::sync::Arc;
//!
//! let ds = DashboardDataset::CustomerService;
//! let table = Arc::new(ds.generate_rows(1_000, 42));
//! let dashboard = Dashboard::new(builtin(ds), &table).unwrap();
//! let scripts = synthesize_scripts(&dashboard, &BatchConfig::default(), 8);
//!
//! let engine = EngineKind::DuckDbLike.build();
//! engine.register(table);
//! let driver = Driver::new(DriverConfig {
//!     cache: Some(CacheConfig::default()),
//!     ..Default::default()
//! });
//! let outcome = driver.run(engine, &scripts);
//! assert!(outcome.report.queries > 0);
//! assert!(outcome.report.cache.unwrap().hits > 0);
//! ```

pub mod cache;
pub mod driver;
pub mod fingerprint;
pub(crate) mod hash;
pub mod histogram;
pub mod report;
pub mod resilience;
pub mod workload;

pub use cache::{CacheConfig, CacheStats, CachedDbms, CachedResult, ShardedResultCache};
pub use driver::{AdaptiveConfig, Arrival, Driver, DriverConfig, DriverOutcome, ThinkTime};
pub use fingerprint::{fingerprint, ERROR_FINGERPRINT};
pub use histogram::LatencyHistogram;
pub use report::{
    CacheReport, DriverReport, FaultReport, LatencySummary, ResilienceReport, RunReport,
    SteeringReport, ADHOC_SCENARIO,
};
pub use resilience::{jitter_key, BreakerStats, CircuitBreaker, ResiliencePolicy};
pub use workload::datagen::{run_datagen_sweep, DatagenEntry, DatagenReport, DatagenSweep};
pub use workload::registry::{
    all_scenarios, scenario, Scenario, ScenarioBody, ScenarioParams, SCENARIO_NAMES,
};
pub use workload::{
    validate_addr, ArrivalSpec, CacheSpec, EngineSpec, FaultSpec, ResilienceSpec, ScenarioSpec,
    SourceSpec, TableCache, ThinkSpec, WorkloadError,
};

// Re-exported so driver users can configure steering and build custom
// sources without importing simba-core directly.
pub use simba_core::session::adaptive::{AdaptivePolicy, SteeringKind};
pub use simba_core::session::source::{
    AdaptiveSource, AdaptiveWalkConfig, QueryFeedback, ScriptedSource, SessionSource,
    SessionStream, SourceStep,
};
