//! Driver-level integration tests: the cache must be *transparent*
//! (identical results with and without it), correct under heavy
//! concurrency, and shared across normalization-equivalent queries.

use simba_core::dashboard::Dashboard;
use simba_core::session::batch::{synthesize_scripts, BatchConfig, SessionScript};
use simba_core::spec::builtin::builtin;
use simba_data::DashboardDataset;
use simba_driver::{
    AdaptiveConfig, Arrival, CacheConfig, CachedResult, Driver, DriverConfig, ShardedResultCache,
    ThinkTime, ERROR_FINGERPRINT,
};
use simba_engine::{Dbms, EngineError, EngineKind, QueryOutput};
use simba_sql::{parse_select, Select};
use simba_store::{ResultSet, Table, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

fn setup(rows: usize, sessions: usize) -> (Arc<Table>, Dashboard, Vec<SessionScript>) {
    let ds = DashboardDataset::CustomerService;
    let table = Arc::new(ds.generate_rows(rows, 42));
    let dashboard = Dashboard::new(builtin(ds), &table).unwrap();
    let scripts = synthesize_scripts(
        &dashboard,
        &BatchConfig {
            base_seed: 7,
            steps_per_session: 6,
            ..Default::default()
        },
        sessions,
    );
    (table, dashboard, scripts)
}

/// The acceptance property: enabling the cache changes *nothing* about the
/// results a session observes — every query's result multiset is
/// byte-identical to the cache-disabled run, on every engine.
#[test]
fn cached_results_are_byte_identical_to_uncached() {
    let (table, _dashboard, scripts) = setup(2_000, 12);
    for kind in EngineKind::ALL {
        let engine = kind.build();
        engine.register(table.clone());

        let run = |cache: Option<CacheConfig>| {
            Driver::new(DriverConfig {
                workers: 4,
                cache,
                collect_fingerprints: true,
                ..Default::default()
            })
            .run(engine.clone(), &scripts)
        };
        let uncached = run(None);
        let cached = run(Some(CacheConfig::default()));

        assert_eq!(uncached.report.errors, 0, "{}", kind.name());
        assert_eq!(cached.report.errors, 0, "{}", kind.name());
        assert_eq!(
            uncached.fingerprints,
            cached.fingerprints,
            "{}: cache changed some query's result",
            kind.name()
        );
        let stats = cached.report.cache.expect("cache stats present");
        assert!(
            stats.hits > 0,
            "{}: expected repeated queries to hit",
            kind.name()
        );
    }
}

/// A deterministic engine stub that counts executions and answers each
/// query with a result derived from its cache key, so any cross-key mixup
/// is visible in the payload.
struct CountingEngine {
    executions: AtomicU64,
}

impl CountingEngine {
    fn new() -> Self {
        CountingEngine {
            executions: AtomicU64::new(0),
        }
    }
}

impl Dbms for CountingEngine {
    fn name(&self) -> &'static str {
        "counting-stub"
    }

    fn register(&self, _table: Arc<Table>) {}

    fn execute(&self, query: &Select) -> Result<QueryOutput, EngineError> {
        self.executions.fetch_add(1, Ordering::SeqCst);
        let key = simba_sql::query_cache_key(query);
        let tag = key.len() as i64 + i64::from(key.as_bytes()[0]);
        Ok(QueryOutput {
            result: ResultSet::new(vec!["tag".to_string()], vec![vec![Value::Int(tag)]]),
            stats: Default::default(),
            elapsed: std::time::Duration::from_micros(1),
        })
    }
}

/// Normalization-equivalent spellings of one query must share a single
/// cache entry (one engine execution, hits for every variant) — but a
/// variant with a *different result shape* (reordered projections) must
/// get its own entry, because its column layout differs.
#[test]
fn equivalent_queries_share_one_entry() {
    let engine = CountingEngine::new();
    let cache = ShardedResultCache::new(CacheConfig::default());
    let variants = [
        "SELECT queue, COUNT(*) FROM cs WHERE a = 1 AND b = 2 GROUP BY queue",
        "select QUEUE, count( * ) from CS where b = 2 and a = 1 group by Queue",
        "SELECT queue, COUNT(*) FROM cs WHERE b = 2 AND a = 1 GROUP BY queue",
    ];
    let mut results = Vec::new();
    for sql in variants {
        let q = parse_select(sql).unwrap();
        let (value, _elapsed, _hit) = cache.execute_cached(&engine, &q).unwrap();
        results.push(value.result.clone());
    }
    assert_eq!(
        engine.executions.load(Ordering::SeqCst),
        1,
        "variants re-executed"
    );
    assert_eq!(cache.len(), 1);
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 2);
    assert!(results.windows(2).all(|w| w[0] == w[1]));

    // Same data, different column order: must miss and occupy a new entry.
    let reordered =
        parse_select("SELECT COUNT(*), queue FROM cs WHERE a = 1 AND b = 2 GROUP BY queue")
            .unwrap();
    let (_, _, hit) = cache.execute_cached(&engine, &reordered).unwrap();
    assert!(
        !hit,
        "shape-changing variant must not be served from the cache"
    );
    assert_eq!(engine.executions.load(Ordering::SeqCst), 2);
    assert_eq!(cache.len(), 2);
}

/// Distinct queries must never be conflated, even under eviction pressure.
#[test]
fn eviction_pressure_never_mixes_results() {
    let engine = CountingEngine::new();
    // Tiny cache: 2 shards × 4 entries, far fewer than the 64 keys below.
    let cache = ShardedResultCache::new(CacheConfig {
        shards: 2,
        capacity_per_shard: 4,
    });
    let queries: Vec<Select> = (0..64)
        .map(|i| parse_select(&format!("SELECT x FROM t WHERE a = {i}")).unwrap())
        .collect();
    for round in 0..3 {
        for q in &queries {
            let expected = engine.execute(q).unwrap().result;
            let (value, _, _) = cache.execute_cached(&engine, q).unwrap();
            assert!(
                value.result.multiset_eq(&expected),
                "round {round}: wrong payload for {q}"
            );
        }
    }
    let stats = cache.stats();
    assert!(
        stats.evictions > 0,
        "cache was supposed to thrash: {stats:?}"
    );
    assert!(cache.len() <= 8);
}

/// ≥8 threads hammering overlapping keys: every lookup must return the
/// payload of its own key (reader/writer races must never surface a torn
/// or mismatched entry).
#[test]
fn concurrent_readers_and_writers_get_consistent_results() {
    let cache = Arc::new(ShardedResultCache::new(CacheConfig {
        shards: 4,
        capacity_per_shard: 8, // small: forces concurrent eviction too
    }));
    let threads = 10;
    let keys_per_thread = 40;
    let ops = 2_000;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                for i in 0..ops {
                    // Overlapping key space across threads.
                    let k = (t * 7 + i * 13) % keys_per_thread;
                    let key = format!("key-{k}");
                    match cache.lookup(&key) {
                        Some(value) => {
                            let rows = value.result.sorted_rows();
                            assert_eq!(
                                rows,
                                vec![vec![Value::Int(k as i64)]],
                                "thread {t}: wrong payload for {key}"
                            );
                        }
                        None => {
                            cache.insert(
                                key,
                                Arc::new(CachedResult {
                                    result: ResultSet::new(
                                        vec!["k".to_string()],
                                        vec![vec![Value::Int(k as i64)]],
                                    ),
                                    stats: Default::default(),
                                }),
                            );
                        }
                    }
                }
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, (threads * ops) as u64);
    assert!(stats.hits > 0 && stats.insertions > 0);
    assert!(cache.len() <= 4 * 8);
}

/// A counting engine that holds every execution long enough for concurrent
/// misses on the same key to pile up behind the single-flight leader.
struct SlowCountingEngine {
    executions: AtomicU64,
}

impl Dbms for SlowCountingEngine {
    fn name(&self) -> &'static str {
        "slow-counting-stub"
    }

    fn register(&self, _table: Arc<Table>) {}

    fn execute(&self, _query: &Select) -> Result<QueryOutput, EngineError> {
        self.executions.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(std::time::Duration::from_millis(40));
        Ok(QueryOutput {
            result: ResultSet::new(vec!["n".to_string()], vec![vec![Value::Int(7)]]),
            stats: Default::default(),
            elapsed: std::time::Duration::from_millis(40),
        })
    }
}

/// Single-flight: N concurrent misses on one key must run the engine
/// exactly once — the followers block on the leader's flight and share its
/// result.
#[test]
fn concurrent_misses_on_one_key_execute_engine_once() {
    let engine = SlowCountingEngine {
        executions: AtomicU64::new(0),
    };
    let cache = ShardedResultCache::new(CacheConfig::default());
    let query = parse_select("SELECT COUNT(*) FROM t").unwrap();
    let threads = 8;
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                barrier.wait();
                let (value, _elapsed, hit) = cache.execute_cached(&engine, &query).unwrap();
                assert_eq!(
                    value.result.sorted_rows(),
                    vec![vec![Value::Int(7)]],
                    "all callers share the leader's payload"
                );
                let _ = hit;
            });
        }
    });
    assert_eq!(
        engine.executions.load(Ordering::SeqCst),
        1,
        "missed key must execute exactly once"
    );
    let stats = cache.stats();
    assert_eq!(stats.insertions, 1);
    assert_eq!(
        stats.hits + stats.coalesced,
        threads as u64 - 1,
        "everyone but the leader was served from memory: {stats:?}"
    );
}

/// A wrapper that deterministically fails a subset of queries, for the
/// fingerprint-alignment regression.
struct FlakyEngine {
    inner: Arc<dyn Dbms>,
}

fn flaky_fails(query: &Select) -> bool {
    query.to_string().contains("rep_id")
}

impl Dbms for FlakyEngine {
    fn name(&self) -> &'static str {
        "flaky"
    }

    fn register(&self, table: Arc<Table>) {
        self.inner.register(table);
    }

    fn execute(&self, query: &Select) -> Result<QueryOutput, EngineError> {
        if flaky_fails(query) {
            Err(EngineError::Unsupported("flaky: rep_id is down".into()))
        } else {
            self.inner.execute(query)
        }
    }
}

/// Regression: an errored query used to be silently *skipped* in the
/// fingerprint vector, shifting every later fingerprint and misaligning
/// per-session comparisons across engines. Errors must record
/// [`ERROR_FINGERPRINT`] so vectors stay position-for-position comparable.
#[test]
fn errored_queries_keep_fingerprints_position_aligned() {
    let (table, _dashboard, scripts) = setup(800, 6);
    let clean = EngineKind::SqliteLike.build();
    clean.register(table.clone());
    let flaky: Arc<dyn Dbms> = Arc::new(FlakyEngine {
        inner: clean.clone(),
    });

    let run = |engine: Arc<dyn Dbms>| {
        Driver::new(DriverConfig {
            workers: 3,
            collect_fingerprints: true,
            ..Default::default()
        })
        .run(engine, &scripts)
    };
    let reference = run(clean);
    let with_errors = run(flaky);
    assert_eq!(reference.report.errors, 0);
    assert!(
        with_errors.report.errors > 0,
        "scripts must hit at least one rep_id query"
    );

    let mut sentinels = 0u64;
    for (session, script) in scripts.iter().enumerate() {
        let expect_fail: Vec<bool> = script
            .steps
            .iter()
            .flat_map(|s| s.queries.iter().map(|q| flaky_fails(&q.query)))
            .collect();
        let good = &reference.fingerprints[session];
        let flaked = &with_errors.fingerprints[session];
        assert_eq!(good.len(), script.query_count());
        assert_eq!(
            flaked.len(),
            script.query_count(),
            "errored queries must still occupy a fingerprint slot"
        );
        for (pos, fail) in expect_fail.iter().enumerate() {
            if *fail {
                sentinels += 1;
                assert_eq!(
                    flaked[pos], ERROR_FINGERPRINT,
                    "session {session} pos {pos}"
                );
            } else {
                assert_eq!(
                    flaked[pos], good[pos],
                    "session {session} pos {pos}: successful queries must agree"
                );
            }
        }
    }
    assert_eq!(sentinels, with_errors.report.errors);
}

/// Adaptive-mode smoke: live sessions run to completion, the report carries
/// the session mode and steering counters, and the whole run is
/// reproducible.
#[test]
fn adaptive_mode_reports_steering_and_reproduces() {
    let ds = DashboardDataset::CustomerService;
    let table = Arc::new(ds.generate_rows(1_500, 42));
    let dashboard = Dashboard::new(builtin(ds), &table).unwrap();
    let engine = EngineKind::DuckDbLike.build();
    engine.register(table);

    let adaptive = AdaptiveConfig {
        base_seed: 11,
        steps_per_session: 6,
        ..Default::default()
    };
    let run = || {
        Driver::new(DriverConfig {
            workers: 4,
            collect_fingerprints: true,
            cache: Some(CacheConfig::default()),
            ..Default::default()
        })
        .run_adaptive(engine.clone(), &dashboard, &adaptive, 8)
    };
    let a = run();
    assert_eq!(a.report.session_mode, "adaptive");
    assert_eq!(a.report.mode, "closed");
    assert_eq!(a.report.sessions, 8);
    assert_eq!(a.report.errors, 0);
    assert!(a.report.queries > 0);
    assert!(a.report.interactions <= 8 * 6, "steps bound interactions");
    let steering = a.report.steering.as_ref().expect("adaptive run steers");
    assert_eq!(steering.policy, "backtrack_on_empty+drill_top_group");
    assert!(
        steering.drills >= 8,
        "every session's opening render exposes a dominant group: {steering:?}"
    );
    assert_eq!(a.actions.len(), 8);
    for acts in &a.actions {
        assert_eq!(acts[0], "open dashboard");
        assert!(acts.len() >= 2, "sessions should get past the render");
    }

    let b = run();
    assert_eq!(a.actions, b.actions, "same seed ⇒ same walk");
    assert_eq!(a.fingerprints, b.fingerprints, "same seed ⇒ same results");
}

/// Open-loop runs report queue delay and finish all sessions.
#[test]
fn open_loop_reports_queue_delay() {
    let (table, _dashboard, scripts) = setup(500, 8);
    let engine = EngineKind::SqliteLike.build();
    engine.register(table);
    let outcome = Driver::new(DriverConfig {
        workers: 2,
        arrival: Arrival::Open {
            rate_per_sec: 400.0,
        },
        think_time: ThinkTime::Fixed(std::time::Duration::from_micros(200)),
        cache: Some(CacheConfig::default()),
        ..Default::default()
    })
    .run(engine, &scripts);
    let report = outcome.report;
    assert_eq!(report.mode, "open");
    assert_eq!(report.sessions, 8);
    assert_eq!(report.errors, 0);
    let delay = report.queue_delay.expect("open loop records queue delay");
    assert_eq!(delay.count, 8);
    assert!(report.queries > 0 && report.throughput_qps > 0.0);
}

/// Closed-loop driver accounting: interactions/queries line up with the
/// scripts it replayed, and the JSON report round-trips the key fields.
#[test]
fn closed_loop_accounting_matches_scripts() {
    let (table, _dashboard, scripts) = setup(500, 6);
    let engine = EngineKind::PostgresLike.build();
    engine.register(table);
    let expected_queries: usize = scripts.iter().map(|s| s.query_count()).sum();
    let expected_interactions: usize = scripts.iter().map(|s| s.steps.len() - 1).sum();
    let outcome = Driver::new(DriverConfig {
        workers: 3,
        ..Default::default()
    })
    .run(engine, &scripts);
    let report = outcome.report;
    assert_eq!(report.queries as usize, expected_queries);
    assert_eq!(report.interactions as usize, expected_interactions);
    assert_eq!(report.latency.count, report.queries);
    assert!(report.queue_delay.is_none());
    assert!(report.cache.is_none());
    let json = report.to_json();
    assert!(json.contains("\"engine\": \"postgres-like\""), "{json}");
}
