//! The chaos acceptance properties: fault injection is *deterministic* —
//! same `(seed, FaultSpec)` ⇒ byte-identical runs regardless of worker
//! count or rerun — an inert `FaultSpec` is *invisible* — byte-identical
//! to a run without the wrapper — and the resilience layer actually
//! recovers: transient faults within the retry budget never surface as
//! errors, deadlines bound every query, and error-steered adaptive walks
//! reproduce.

use proptest::prelude::*;
use simba_driver::workload::{EngineSpec, FaultSpec, ResilienceSpec, ScenarioSpec, SourceSpec};
use simba_driver::{Driver, DriverConfig, ResiliencePolicy, ERROR_FINGERPRINT};
use simba_engine::{Dbms, EngineError, EngineKind, QueryOutput};
use simba_sql::Select;
use simba_store::{ResultSet, Table, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS: usize = 500;

fn base_spec(seed: u64, workers: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("fault-determinism", "customer_service");
    spec.rows = ROWS;
    spec.seed = seed;
    spec.sessions = 3;
    spec.steps_per_session = 4;
    spec.engine = EngineSpec::new(EngineKind::SqliteLike);
    spec.source = SourceSpec::adaptive();
    spec.workers = workers;
    spec.collect_fingerprints = true;
    spec
}

fn retrying_policy() -> ResilienceSpec {
    ResilienceSpec {
        deadline_ms: 0,
        max_retries: 6,
        backoff_base_ms: 0,
        backoff_cap_ms: 0,
        breaker_failure_threshold: 0,
        breaker_cooldown_ms: 0,
        breaker_half_open_probes: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Same `(seed, FaultSpec)` ⇒ the same faults hit the same queries:
    /// actions, fingerprints, and every fault/resilience counter are
    /// byte-identical across reruns *and* across worker counts. (Cache
    /// off: a shared cache makes the wrapper's hit pattern depend on
    /// which racing session leads each single-flight, by design.)
    #[test]
    fn faulted_runs_are_byte_identical_across_reruns_and_workers(
        seed in 0u64..500,
        fault_seed in 0u64..500,
        transient_prob in 0.05f64..0.35,
    ) {
        let fault = FaultSpec {
            seed: fault_seed,
            transient_error_prob: transient_prob,
            ..FaultSpec::default()
        };
        let run = |workers: usize| {
            let mut spec = base_spec(seed, workers);
            spec.fault = Some(fault.clone());
            spec.resilience = Some(retrying_policy());
            Driver::execute(&spec).unwrap()
        };
        let a = run(1);
        let b = run(1);
        let c = run(4);
        for (label, other) in [("rerun", &b), ("workers=4", &c)] {
            prop_assert_eq!(&a.actions, &other.actions, "{}: walks diverged", label);
            prop_assert_eq!(&a.fingerprints, &other.fingerprints, "{}: results diverged", label);
            prop_assert_eq!(&a.report.fault, &other.report.fault, "{}: injections diverged", label);
            let (ra, ro) = (a.report.resilience.as_ref().unwrap(), other.report.resilience.as_ref().unwrap());
            prop_assert_eq!(ra, ro, "{}: resilience taxonomy diverged", label);
        }
    }

    /// An explicit-but-inert `FaultSpec` (and the inert default
    /// `ResilienceSpec`) must be invisible: byte-identical actions,
    /// fingerprints, and execution counters to a spec without either
    /// section — the "default = off" contract that keeps old runs
    /// reproducible under the new schema.
    #[test]
    fn inert_fault_and_resilience_specs_change_nothing(seed in 0u64..500) {
        let bare = base_spec(seed, 2);
        let mut wrapped = base_spec(seed, 2);
        wrapped.fault = Some(FaultSpec::default());
        wrapped.resilience = Some(ResilienceSpec::default());
        let a = Driver::execute(&bare).unwrap();
        let b = Driver::execute(&wrapped).unwrap();
        prop_assert_eq!(&a.actions, &b.actions);
        prop_assert_eq!(&a.fingerprints, &b.fingerprints);
        prop_assert_eq!(a.report.queries, b.report.queries);
        prop_assert_eq!(a.report.errors, b.report.errors);
        prop_assert_eq!(&a.report.exec, &b.report.exec);
        // Inert specs must not even switch the report onto the new
        // sections: the wrapper is never installed, the legacy path runs.
        prop_assert!(b.report.fault.is_none());
        prop_assert!(b.report.resilience.is_none());
    }
}

/// Transient faults within the retry budget are *absorbed*: the report
/// shows injected faults and successful retries, yet zero errors, zero
/// `ERROR_FINGERPRINT` slots, and zero degraded sessions.
#[test]
fn retries_absorb_transient_faults_within_budget() {
    let mut spec = base_spec(13, 3);
    spec.fault = Some(FaultSpec {
        seed: 99,
        transient_error_prob: 0.2,
        ..FaultSpec::default()
    });
    spec.resilience = Some(retrying_policy());
    let outcome = Driver::execute(&spec).unwrap();

    let fault = outcome.report.fault.as_ref().expect("fault section");
    assert!(fault.transient > 0, "nothing was injected: {fault:?}");
    let res = outcome
        .report
        .resilience
        .as_ref()
        .expect("resilience section");
    assert!(res.retries_succeeded > 0, "no retry recovered: {res:?}");
    assert_eq!(outcome.report.errors, 0, "a fault leaked: {res:?}");
    assert_eq!(res.degraded_sessions, 0);
    assert!(res.degraded.iter().all(|d| !d));
    for fps in &outcome.fingerprints {
        assert!(
            fps.iter().all(|&fp| fp != ERROR_FINGERPRINT),
            "an absorbed fault still produced an error fingerprint"
        );
    }

    // And the recovered run is result-identical to a fault-free one: the
    // faults delayed queries, they never changed answers.
    let clean = Driver::execute(&base_spec(13, 3)).unwrap();
    assert_eq!(outcome.actions, clean.actions);
    assert_eq!(outcome.fingerprints, clean.fingerprints);
}

/// Permanent faults steer adaptive sessions the same way empty results do:
/// the walk backtracks out of the poisoned filter, deterministically
/// across reruns and worker counts.
#[test]
fn permanent_faults_backtrack_adaptive_walks_deterministically() {
    let run = |workers: usize| {
        let mut spec = base_spec(7, workers);
        spec.steps_per_session = 6;
        spec.fault = Some(FaultSpec {
            seed: 3,
            permanent_error_prob: 0.25,
            ..FaultSpec::default()
        });
        Driver::execute(&spec).unwrap()
    };
    let a = run(1);
    assert!(a.report.errors > 0, "permanent faults must surface");
    let steering = a.report.steering.as_ref().expect("adaptive run steers");
    assert!(
        steering.backtracks > 0,
        "errored charts must trigger backtracking: {steering:?}"
    );
    let res = a.report.resilience.as_ref().expect("chaos switches path");
    assert!(res.degraded_sessions > 0, "failed queries degrade sessions");

    let b = run(1);
    let c = run(4);
    assert_eq!(a.actions, b.actions, "rerun diverged");
    assert_eq!(a.actions, c.actions, "worker count changed the walk");
    assert_eq!(a.fingerprints, c.fingerprints);
}

/// An engine stub that sleeps far longer than any test deadline — the
/// wedge the per-query deadline exists to cut loose.
struct WedgedEngine;

impl Dbms for WedgedEngine {
    fn name(&self) -> &'static str {
        "wedged-stub"
    }

    fn register(&self, _table: Arc<Table>) {}

    fn execute(&self, _query: &Select) -> Result<QueryOutput, EngineError> {
        std::thread::sleep(Duration::from_secs(30));
        Ok(QueryOutput {
            result: ResultSet::new(vec!["n".to_string()], vec![vec![Value::Int(1)]]),
            stats: Default::default(),
            elapsed: Duration::from_secs(30),
        })
    }
}

/// No session ever wedges past its deadline: a driver pointed at an engine
/// that sleeps 30s per query, under a 25ms deadline, finishes the whole
/// run orders of magnitude sooner — every query times out, every session
/// completes (degraded), none hangs.
#[test]
fn deadline_abandons_wedged_queries_and_finishes_the_run() {
    use simba_core::dashboard::Dashboard;
    use simba_core::session::batch::{synthesize_scripts, BatchConfig};
    use simba_core::spec::builtin::builtin;
    use simba_data::DashboardDataset;

    let ds = DashboardDataset::CustomerService;
    let table = Arc::new(ds.generate_rows(300, 5));
    let dashboard = Dashboard::new(builtin(ds), &table).unwrap();
    let scripts = synthesize_scripts(
        &dashboard,
        &BatchConfig {
            base_seed: 5,
            steps_per_session: 2,
            ..Default::default()
        },
        2,
    );
    let queries: usize = scripts.iter().map(|s| s.query_count()).sum();

    let driver = Driver::new(DriverConfig {
        workers: 2,
        resilience: ResiliencePolicy {
            deadline: Some(Duration::from_millis(25)),
            ..Default::default()
        },
        ..Default::default()
    });
    let start = Instant::now();
    let outcome = driver.run(Arc::new(WedgedEngine), &scripts);
    let elapsed = start.elapsed();

    assert_eq!(outcome.report.errors, queries as u64, "every query fails");
    let res = outcome.report.resilience.as_ref().expect("resilient path");
    assert_eq!(res.timeouts, queries as u64, "every failure is a timeout");
    assert_eq!(res.degraded_sessions, 2, "both sessions end degraded");
    assert!(
        elapsed < Duration::from_secs(10),
        "sessions wedged: {queries} queries took {elapsed:?} despite the deadline"
    );
}
