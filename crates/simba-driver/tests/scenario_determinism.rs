//! The unified-API acceptance property: for every built-in scenario kind,
//! running through the declarative `Driver::execute(&ScenarioSpec)` path
//! produces **byte-identical** action sequences and result fingerprints to
//! the legacy entry points (`Driver::run` over synthesized scripts,
//! `Driver::run_adaptive`, and the single-session `IdeBenchRunner`) under
//! the same seed — with the shared result cache on and off.
//!
//! This is the regression gate that let the legacy paths become thin shims:
//! any drift in how `execute` derives seeds, builds tables/dashboards, or
//! wires sources is a test failure here before it is a silent workload
//! change anywhere else.

use simba_core::dashboard::Dashboard;
use simba_core::session::batch::{synthesize_scripts, BatchConfig};
use simba_core::spec::builtin::builtin;
use simba_data::DashboardDataset;
use simba_driver::fingerprint::fingerprint;
use simba_driver::workload::{CacheSpec, EngineSpec, ScenarioSpec, SourceSpec};
use simba_driver::{AdaptiveConfig, CacheConfig, Driver, DriverConfig};
use simba_engine::EngineKind;
use std::sync::Arc;

const ROWS: usize = 600;
const SEED: u64 = 21;
const SESSIONS: usize = 3;
const STEPS: usize = 4;

/// A spec mirroring what the legacy paths are hand-assembled with below.
fn spec(source: SourceSpec, engine: EngineKind, cache: bool) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("determinism", "customer_service");
    spec.rows = ROWS;
    spec.seed = SEED;
    spec.sessions = SESSIONS;
    spec.steps_per_session = STEPS;
    spec.engine = EngineSpec::new(engine);
    spec.source = source;
    spec.cache = cache.then(CacheSpec::default);
    spec.workers = 2;
    spec.collect_fingerprints = true;
    spec
}

fn legacy_driver(cache: bool) -> Driver {
    Driver::new(DriverConfig {
        workers: 2,
        seed: SEED,
        cache: cache.then(CacheConfig::default),
        collect_fingerprints: true,
        ..Default::default()
    })
}

fn legacy_context() -> (Arc<simba_store::Table>, Dashboard) {
    let ds = DashboardDataset::CustomerService;
    // `execute` seeds dataset generation with the spec's master seed.
    let table = Arc::new(ds.generate_rows(ROWS, SEED));
    let dashboard = Dashboard::new(builtin(ds), &table).unwrap();
    (table, dashboard)
}

#[test]
fn scripted_scenario_matches_legacy_run() {
    for engine_kind in [EngineKind::SqliteLike, EngineKind::DuckDbLike] {
        for cache in [false, true] {
            let via_spec =
                Driver::execute(&spec(SourceSpec::scripted(), engine_kind, cache)).unwrap();

            let (table, dashboard) = legacy_context();
            let scripts = synthesize_scripts(
                &dashboard,
                &BatchConfig {
                    base_seed: SEED,
                    steps_per_session: STEPS,
                    ..Default::default()
                },
                SESSIONS,
            );
            let engine = engine_kind.build();
            engine.register(table);
            let legacy = legacy_driver(cache).run(engine, &scripts);

            assert_eq!(via_spec.report.errors, 0);
            assert_eq!(
                via_spec.fingerprints,
                legacy.fingerprints,
                "{} cache={cache}: spec-driven scripted run diverged from legacy run()",
                engine_kind.name()
            );
            // The unified loop also records the action script; it must be
            // exactly the synthesized step descriptions.
            let expected_actions: Vec<Vec<String>> = scripts
                .iter()
                .map(|s| s.steps.iter().map(|t| t.action.clone()).collect())
                .collect();
            assert_eq!(via_spec.actions, expected_actions);
        }
    }
}

#[test]
fn adaptive_scenario_matches_legacy_run_adaptive() {
    for engine_kind in [EngineKind::SqliteLike, EngineKind::MonetDbLike] {
        for cache in [false, true] {
            let via_spec =
                Driver::execute(&spec(SourceSpec::adaptive(), engine_kind, cache)).unwrap();

            let (table, dashboard) = legacy_context();
            let engine = engine_kind.build();
            engine.register(table);
            let legacy = legacy_driver(cache).run_adaptive(
                engine,
                &dashboard,
                &AdaptiveConfig {
                    base_seed: SEED,
                    steps_per_session: STEPS,
                    ..Default::default()
                },
                SESSIONS,
            );

            assert_eq!(via_spec.report.errors, 0);
            assert_eq!(
                via_spec.actions,
                legacy.actions,
                "{} cache={cache}: spec-driven adaptive walk diverged",
                engine_kind.name()
            );
            assert_eq!(
                via_spec.fingerprints,
                legacy.fingerprints,
                "{} cache={cache}: spec-driven adaptive results diverged",
                engine_kind.name()
            );
            let a = via_spec.report.steering.as_ref().unwrap();
            let b = legacy.report.steering.as_ref().unwrap();
            assert_eq!(
                (a.backtracks, a.drills, a.empty_results),
                (b.backtracks, b.drills, b.empty_results)
            );
        }
    }
}

#[test]
fn idebench_scenario_matches_legacy_runner_sessions() {
    for cache in [false, true] {
        let via_spec =
            Driver::execute(&spec(SourceSpec::idebench(), EngineKind::SqliteLike, cache)).unwrap();
        assert_eq!(via_spec.report.errors, 0);
        assert_eq!(via_spec.report.session_mode, "idebench");

        // The legacy surface for IDEBench is the single-session runner:
        // replay each user's session through it and fingerprint its actual
        // result sets with the same public fingerprint function.
        let ds = DashboardDataset::CustomerService;
        let table = Arc::new(ds.generate_rows(ROWS, SEED));
        let engine = EngineKind::SqliteLike.build();
        engine.register(table.clone());
        let source = simba_idebench::IdebenchSource::new(table.clone(), SEED, SESSIONS, STEPS);
        for user in 0..SESSIONS {
            let log = simba_idebench::IdeBenchRunner::new(
                &table,
                engine.as_ref(),
                source.session_config(user),
            )
            .run()
            .unwrap();
            let legacy_actions: Vec<String> =
                log.interactions.iter().map(|i| i.action.clone()).collect();
            assert_eq!(
                via_spec.actions[user], legacy_actions,
                "user {user} cache={cache}: action sequence diverged from IdeBenchRunner"
            );
            let legacy_fps: Vec<u64> = log
                .interactions
                .iter()
                .flat_map(|i| i.queries.iter())
                .map(|q| {
                    let query = simba_sql::parse_select(&q.sql).unwrap();
                    fingerprint(&engine.execute(&query).unwrap().result)
                })
                .collect();
            assert_eq!(
                via_spec.fingerprints[user], legacy_fps,
                "user {user} cache={cache}: result fingerprints diverged from IdeBenchRunner"
            );
        }
    }
}

/// Observability must be a pure observer: the same spec run with span
/// tracing armed and a metrics snapshot collected produces byte-identical
/// action sequences and result fingerprints to a dark run.
#[test]
fn tracing_and_metrics_do_not_perturb_the_workload() {
    let dark = spec(SourceSpec::adaptive(), EngineKind::DuckDbLike, true);
    let baseline = Driver::execute(&dark).unwrap();

    let mut lit = dark.clone();
    lit.collect_metrics = true;
    simba_obs::trace::set_enabled(true);
    let observed = Driver::execute(&lit).unwrap();
    simba_obs::trace::set_enabled(false);
    simba_obs::trace::take_events(); // discard; this test is about the workload

    assert_eq!(
        baseline.actions, observed.actions,
        "tracing changed the walk"
    );
    assert_eq!(
        baseline.fingerprints, observed.fingerprints,
        "tracing changed results"
    );
    assert_eq!(baseline.report.queries, observed.report.queries);
    // The opt-in is what gates the extra report sections, not tracing.
    assert!(baseline.report.metrics.is_none());
}

/// Same spec, run twice, cache on vs off: the declarative path is as
/// reproducible as the legacy one.
#[test]
fn execute_is_reproducible_and_cache_transparent() {
    for source in [
        SourceSpec::scripted(),
        SourceSpec::adaptive(),
        SourceSpec::idebench(),
    ] {
        let uncached = spec(source.clone(), EngineKind::DuckDbLike, false);
        let cached = spec(source, EngineKind::DuckDbLike, true);
        let a = Driver::execute(&uncached).unwrap();
        let b = Driver::execute(&uncached).unwrap();
        let c = Driver::execute(&cached).unwrap();
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.fingerprints, b.fingerprints);
        assert_eq!(a.actions, c.actions, "cache must never change a walk");
        assert_eq!(
            a.fingerprints, c.fingerprints,
            "cache must never change results"
        );
    }
}
