//! The differential oracle for session-delta execution: turning `delta: true`
//! on a scenario spec must be **invisible** in everything the workload can
//! observe — action sequences, result fingerprints, query counts, and
//! steering counters are byte-identical to the same spec with delta off,
//! for every session source, every engine, cache on and off.
//!
//! This is the load-bearing property of the delta cache (ISSUE PR10): reuse
//! decisions are proofs (key equality over normalized queries, sound
//! implication), so a divergence anywhere in this matrix is a correctness
//! bug in the delta path, not a tuning problem. The delta-off side of every
//! comparison runs the untouched legacy execution path, so these tests also
//! pin "delta off == pre-delta behaviour" (see
//! `delta_off_matches_legacy_entry_points`).

use proptest::prelude::*;
use simba_core::session::batch::{synthesize_scripts, BatchConfig};
use simba_core::spec::builtin::builtin;
use simba_data::DashboardDataset;
use simba_driver::workload::{CacheSpec, EngineSpec, ScenarioSpec, SourceSpec};
use simba_driver::{CacheConfig, Driver, DriverConfig};
use simba_engine::EngineKind;
use simba_server::LOOPBACK_ADDR;
use std::sync::Arc;

fn spec(seed: u64, kind: EngineKind, source: SourceSpec, cache: bool, delta: bool) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("delta-equivalence", "customer_service");
    spec.rows = 500;
    spec.seed = seed;
    spec.sessions = 2;
    spec.steps_per_session = 4;
    spec.workers = 2;
    spec.engine = EngineSpec::new(kind);
    spec.source = source;
    spec.cache = cache.then(CacheSpec::default);
    spec.delta = delta;
    spec.collect_fingerprints = true;
    spec
}

/// Run `off_spec` as-is and again with `delta: true`; assert the observable
/// workload is byte-identical and the report's delta section appears exactly
/// when delta was requested.
fn assert_delta_invisible(
    off_spec: &ScenarioSpec,
    label: &str,
) -> simba_driver::report::DeltaReport {
    let mut on_spec = off_spec.clone();
    on_spec.delta = true;

    let off = Driver::execute(off_spec).unwrap();
    let on = Driver::execute(&on_spec).unwrap();

    assert_eq!(off.report.errors, 0, "{label}: delta-off run errored");
    assert_eq!(on.report.errors, 0, "{label}: delta-on run errored");
    assert_eq!(off.actions, on.actions, "{label}: delta changed the walk");
    assert_eq!(
        off.fingerprints, on.fingerprints,
        "{label}: delta changed results"
    );
    assert_eq!(off.report.queries, on.report.queries, "{label}");
    match (&off.report.steering, &on.report.steering) {
        (None, None) => {}
        (Some(a), Some(b)) => assert_eq!(
            (a.backtracks, a.drills, a.empty_results),
            (b.backtracks, b.drills, b.empty_results),
            "{label}: steering counters diverged"
        ),
        _ => panic!("{label}: steering section present on only one side"),
    }
    // The digest is the serialized currency the delta-smoke CI gate
    // compares; it must match whenever the raw fingerprints do.
    assert!(off.report.fingerprint_digest.is_some(), "{label}");
    assert_eq!(
        off.report.fingerprint_digest, on.report.fingerprint_digest,
        "{label}: fingerprint digests diverged"
    );
    assert!(
        off.report.delta.is_none(),
        "{label}: delta-off report must not carry a delta section"
    );
    on.report
        .delta
        .unwrap_or_else(|| panic!("{label}: delta-on report missing its delta section"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any seed, any engine, any session source, cache on or off:
    /// delta-on equals delta-off, byte for byte.
    #[test]
    fn delta_on_matches_delta_off(
        seed in 0u64..1_000,
        engine_ix in 0usize..4,
        source_ix in 0usize..3,
        cache in any::<bool>(),
    ) {
        let kind = EngineKind::ALL[engine_ix];
        let source = match source_ix {
            0 => SourceSpec::scripted(),
            1 => SourceSpec::adaptive(),
            _ => SourceSpec::idebench(),
        };
        let off_spec = spec(seed, kind, source, cache, false);
        assert_delta_invisible(
            &off_spec,
            &format!("{} seed={seed} source={source_ix} cache={cache}", kind.name()),
        );
    }
}

/// The delta path actually fires where refinements exist: an adaptive walk
/// on the in-process columnar engine must report selection or group-state
/// reuse — otherwise the tentpole is a no-op and the differential tests
/// above are vacuously green.
#[test]
fn adaptive_walk_reuses_work_on_duckdb_like() {
    let off_spec = spec(
        21,
        EngineKind::DuckDbLike,
        SourceSpec::adaptive(),
        false,
        false,
    );
    let report = assert_delta_invisible(&off_spec, "adaptive duckdb-like");
    assert!(
        report.hits + report.group_hits > 0,
        "adaptive session produced zero delta reuse: {report:?}"
    );
    assert!(
        report.hits + report.group_hits + report.misses > 0,
        "store was never consulted"
    );
}

/// `EngineSpec::remote` cleanly disables delta reuse: `RemoteDbms` cannot
/// observe the server's catalog generation, so it inherits the trait's
/// default-decline `execute_delta` and every query executes fresh. The run
/// must still be byte-identical (that is just the differential property
/// again) AND report zero hits — a nonzero count here means a wrapper
/// started caching selections against unobservable server state.
#[test]
fn remote_engine_declines_delta_reuse() {
    for source in [SourceSpec::scripted(), SourceSpec::adaptive()] {
        let mut off_spec = spec(7, EngineKind::DuckDbLike, source, false, false);
        off_spec.engine = EngineSpec::remote(LOOPBACK_ADDR, off_spec.engine.clone());
        let report = assert_delta_invisible(&off_spec, "remote loopback");
        assert_eq!(
            (report.hits, report.group_hits, report.rows_saved),
            (0, 0, 0),
            "remote engine must never reuse cached selections: {report:?}"
        );
        assert_eq!(
            report.misses, 0,
            "remote engine must decline before consulting the store: {report:?}"
        );
    }
}

/// The delta-off configuration runs the *untouched* legacy code path: a
/// scripted spec with `delta: false` produces the same fingerprints and
/// actions as the pre-delta `Driver::run` entry point over synthesized
/// scripts — the exact pin `scenario_determinism.rs` established before
/// this feature existed, re-asserted here against the grown config surface.
#[test]
fn delta_off_matches_legacy_entry_points() {
    const ROWS: usize = 500;
    const SEED: u64 = 21;
    let via_spec = Driver::execute(&spec(
        SEED,
        EngineKind::DuckDbLike,
        SourceSpec::scripted(),
        true,
        false,
    ))
    .unwrap();

    let ds = DashboardDataset::CustomerService;
    let table = Arc::new(ds.generate_rows(ROWS, SEED));
    let dashboard = simba_core::dashboard::Dashboard::new(builtin(ds), &table).unwrap();
    let scripts = synthesize_scripts(
        &dashboard,
        &BatchConfig {
            base_seed: SEED,
            steps_per_session: 4,
            ..Default::default()
        },
        2,
    );
    let engine = EngineKind::DuckDbLike.build();
    engine.register(table);
    let legacy = Driver::new(DriverConfig {
        workers: 2,
        seed: SEED,
        cache: Some(CacheConfig::default()),
        collect_fingerprints: true,
        ..Default::default()
    })
    .run(engine, &scripts);

    assert_eq!(via_spec.fingerprints, legacy.fingerprints);
    assert!(
        legacy.report.delta.is_none(),
        "legacy run must not report delta"
    );
}

/// A delta-enabled spec survives the JSON round trip (`bench --dump` +
/// `bench --spec`) and still runs identically, and an old spec without the
/// field parses with delta off.
#[test]
fn delta_spec_survives_json_round_trip() {
    // Cache off: with the shared result cache on, *which* worker's query
    // wins cache admission (and therefore reaches the delta store at all)
    // races across workers, making the hit/miss counters timing-dependent.
    // Results stay pinned either way; exact counter equality needs the
    // per-session walks to be the only store traffic.
    let original = spec(
        7,
        EngineKind::DuckDbLike,
        SourceSpec::adaptive(),
        false,
        true,
    );
    let json = serde_json::to_string(&original).unwrap();
    let parsed = ScenarioSpec::from_json(&json).unwrap();
    assert!(parsed.delta);

    let a = Driver::execute(&original).unwrap();
    let b = Driver::execute(&parsed).unwrap();
    assert_eq!(a.fingerprints, b.fingerprints);
    assert_eq!(a.actions, b.actions);
    assert_eq!(a.report.delta, b.report.delta);

    // Field absence == delta off (forward compatibility with old spec files).
    let stripped = json
        .replace("\"delta\":true,", "")
        .replace("\"delta\": true,", "");
    let old = ScenarioSpec::from_json(&stripped).unwrap();
    assert!(!old.delta, "missing field must default to off");
}
