//! The adaptive-mode acceptance property: identical seed + policy yield
//! **byte-identical** action sequences and result fingerprints —
//!
//! * across repeated runs (no hidden timing or scheduling dependence),
//! * across all four engines vs. the sqlite-like oracle (steering may
//!   inspect result *content* only, which the equivalence suite pins to be
//!   identical everywhere), and
//! * with the shared result cache on vs. off (the cache, including its
//!   single-flight path, changes latencies — never results, and therefore
//!   never the walk).

use proptest::prelude::*;
use simba_core::dashboard::Dashboard;
use simba_core::spec::builtin::builtin;
use simba_data::DashboardDataset;
use simba_driver::{AdaptiveConfig, CacheConfig, Driver, DriverConfig, DriverOutcome};
use simba_engine::{Dbms, EngineKind};
use simba_store::Table;
use std::sync::Arc;

const SESSIONS: usize = 3;
const STEPS: usize = 5;

fn context() -> (Arc<Table>, Dashboard) {
    let ds = DashboardDataset::CustomerService;
    let table = Arc::new(ds.generate_rows(700, 23));
    let dashboard = Dashboard::new(builtin(ds), &table).unwrap();
    (table, dashboard)
}

fn run_adaptive(
    engine: Arc<dyn Dbms>,
    dashboard: &Dashboard,
    base_seed: u64,
    cache: Option<CacheConfig>,
) -> DriverOutcome {
    Driver::new(DriverConfig {
        workers: 3,
        collect_fingerprints: true,
        cache,
        ..Default::default()
    })
    .run_adaptive(
        engine,
        dashboard,
        &AdaptiveConfig {
            base_seed,
            steps_per_session: STEPS,
            ..Default::default()
        },
        SESSIONS,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    #[test]
    fn adaptive_sessions_are_deterministic_across_runs_engines_and_cache(
        seed in 0u64..1_000_000_000,
    ) {
        let (table, dashboard) = context();

        // The sqlite-like engine is the row-at-a-time oracle every other
        // architecture is property-tested against.
        let oracle = EngineKind::SqliteLike.build();
        oracle.register(table.clone());
        let reference = run_adaptive(oracle.clone(), &dashboard, seed, None);
        prop_assert_eq!(reference.report.errors, 0);
        prop_assert!(reference.report.queries > 0);

        // Re-running the oracle must replay byte-identically.
        let again = run_adaptive(oracle, &dashboard, seed, None);
        prop_assert_eq!(&again.actions, &reference.actions);
        prop_assert_eq!(&again.fingerprints, &reference.fingerprints);

        // Every engine, cache off AND cache on, must walk the same
        // sessions and observe the same results as the oracle.
        for kind in EngineKind::ALL {
            for cache in [None, Some(CacheConfig::default())] {
                let engine = kind.build();
                engine.register(table.clone());
                let cache_label = if cache.is_some() { "on" } else { "off" };
                let outcome = run_adaptive(engine, &dashboard, seed, cache);
                prop_assert_eq!(outcome.report.errors, 0);
                prop_assert_eq!(
                    &outcome.actions,
                    &reference.actions,
                    "{} (cache {}): action sequences diverged from the oracle",
                    kind.name(),
                    cache_label
                );
                prop_assert_eq!(
                    &outcome.fingerprints,
                    &reference.fingerprints,
                    "{} (cache {}): result fingerprints diverged from the oracle",
                    kind.name(),
                    cache_label
                );
                let steering = outcome.report.steering.expect("adaptive run reports steering");
                let ref_steering = reference.report.steering.as_ref().unwrap();
                prop_assert_eq!(steering.backtracks, ref_steering.backtracks);
                prop_assert_eq!(steering.drills, ref_steering.drills);
                prop_assert_eq!(steering.empty_results, ref_steering.empty_results);
            }
        }
    }
}
