//! The acceptance property for the server split: driving an engine through
//! `RemoteDbms` over the in-process loopback transport — the full
//! encode → frame → decode → dispatch → encode → decode byte path — must
//! produce **byte-identical** action sequences, result fingerprints, and
//! steering counters to running the same engine in-process, with the
//! shared result cache on and off.
//!
//! Loopback is the same code as TCP minus the socket, so this is the
//! deterministic CI stand-in for `bench --scenario remote-shootout`
//! against a live `simba-server`.

use proptest::prelude::*;
use simba_driver::workload::{CacheSpec, EngineSpec, ScenarioSpec, SourceSpec};
use simba_driver::{scenario, Driver, ScenarioParams};
use simba_engine::EngineKind;
use simba_server::LOOPBACK_ADDR;

fn spec(seed: u64, kind: EngineKind, source: SourceSpec, cache: bool) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("remote-determinism", "customer_service");
    spec.rows = 400;
    spec.seed = seed;
    spec.sessions = 2;
    spec.steps_per_session = 3;
    spec.workers = 2;
    spec.engine = EngineSpec::new(kind);
    spec.source = source;
    spec.cache = cache.then(CacheSpec::default);
    spec.collect_fingerprints = true;
    spec
}

/// Run `local_spec` as-is and again with the engine wrapped in a loopback
/// `Remote` spec, then assert the observable workload is byte-identical.
fn assert_remote_matches_local(local_spec: &ScenarioSpec, label: &str) {
    let mut remote_spec = local_spec.clone();
    remote_spec.engine = EngineSpec::remote(LOOPBACK_ADDR, local_spec.engine.clone());

    let local = Driver::execute(local_spec).unwrap();
    let remote = Driver::execute(&remote_spec).unwrap();

    assert_eq!(local.report.errors, 0, "{label}: local run errored");
    assert_eq!(remote.report.errors, 0, "{label}: remote run errored");
    assert_eq!(
        local.actions, remote.actions,
        "{label}: the wire changed the walk"
    );
    assert_eq!(
        local.fingerprints, remote.fingerprints,
        "{label}: the wire changed results"
    );
    assert_eq!(local.report.queries, remote.report.queries, "{label}");
    match (&local.report.steering, &remote.report.steering) {
        (None, None) => {}
        (Some(a), Some(b)) => assert_eq!(
            (a.backtracks, a.drills, a.empty_results),
            (b.backtracks, b.drills, b.empty_results),
            "{label}: steering counters diverged"
        ),
        _ => panic!("{label}: steering section present on only one side"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Any seed, any engine, scripted or adaptive, cache on or off:
    /// loopback-remote equals local, byte for byte.
    #[test]
    fn remote_loopback_matches_local(
        seed in 0u64..1_000,
        engine_ix in 0usize..4,
        adaptive in any::<bool>(),
        cache in any::<bool>(),
    ) {
        let kind = EngineKind::ALL[engine_ix];
        let source = if adaptive {
            SourceSpec::adaptive()
        } else {
            SourceSpec::scripted()
        };
        let local_spec = spec(seed, kind, source, cache);
        assert_remote_matches_local(
            &local_spec,
            &format!("{} seed={seed} adaptive={adaptive} cache={cache}", kind.name()),
        );
    }
}

/// The registry's `remote-shootout` suite (loopback default) fingerprints
/// byte-identically to the same specs with the remote wrapper stripped —
/// the exact claim `bench --scenario remote-shootout` makes, pinned here
/// without needing an external process.
#[test]
fn remote_shootout_suite_matches_inprocess() {
    let params = ScenarioParams {
        rows: 400,
        users: vec![2],
        steps: 3,
        workers: 2,
        ..Default::default()
    };
    let sc = scenario("remote-shootout", &params).unwrap();
    for remote_spec in sc.specs() {
        let mut local_spec = remote_spec.clone();
        local_spec.engine = EngineSpec::local(
            remote_spec.engine.kind_name(),
            remote_spec.engine.scan_threads(),
        );
        let local = Driver::execute(&local_spec).unwrap();
        let remote = Driver::execute(remote_spec).unwrap();
        assert_eq!(local.report.errors, 0);
        assert_eq!(remote.report.errors, 0);
        assert_eq!(
            local.fingerprints,
            remote.fingerprints,
            "{} cache={}: remote-shootout diverged from in-process",
            remote_spec.engine.kind_name(),
            remote_spec.cache.is_some(),
        );
        assert_eq!(local.actions, remote.actions);
    }
}

/// A remote spec round-trips through JSON and still runs identically —
/// what `bench --dump` + `bench --spec` does to a remote suite.
#[test]
fn remote_spec_survives_json_round_trip() {
    let mut original = spec(7, EngineKind::DuckDbLike, SourceSpec::scripted(), true);
    original.engine = EngineSpec::remote(LOOPBACK_ADDR, EngineSpec::new(EngineKind::DuckDbLike));
    let json = serde_json::to_string(&original).unwrap();
    let parsed = ScenarioSpec::from_json(&json).unwrap();
    assert!(parsed.engine.is_remote());

    let a = Driver::execute(&original).unwrap();
    let b = Driver::execute(&parsed).unwrap();
    assert_eq!(a.fingerprints, b.fingerprints);
    assert_eq!(a.actions, b.actions);
}
