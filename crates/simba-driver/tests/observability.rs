//! End-to-end observability acceptance: a traced, metered run produces
//! spans that nest correctly across every layer (driver session ⊇ step ⊇
//! cache ⊇ engine phases), a metrics snapshot plus phase breakdown in the
//! report, and — in open loop — coordinated-omission-corrected response
//! latencies alongside the queue-delay distribution.
//!
//! Tracing and the metrics registry are process-global, so every test here
//! serializes on one mutex and drains leftover spans before asserting.

#![cfg(not(feature = "obs-off"))]

use simba_driver::workload::{ArrivalSpec, CacheSpec, EngineSpec, ScenarioSpec, SourceSpec};
use simba_driver::Driver;
use simba_engine::EngineKind;
use simba_obs::trace::{self, TraceEvent};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("observability", "customer_service");
    spec.rows = 600;
    spec.seed = 33;
    spec.sessions = 3;
    spec.steps_per_session = 4;
    spec.engine = EngineSpec::new(EngineKind::DuckDbLike);
    spec.source = SourceSpec::adaptive();
    spec.cache = Some(CacheSpec::default());
    spec.workers = 2;
    spec.collect_metrics = true;
    spec
}

/// Run `spec` with tracing armed (no sampling) and return the spans.
fn traced_run(spec: &ScenarioSpec) -> (simba_driver::DriverOutcome, Vec<TraceEvent>) {
    trace::take_events(); // drop anything a previous test left behind
    trace::set_sample_every(1);
    trace::set_enabled(true);
    let outcome = Driver::execute(spec).unwrap();
    trace::set_enabled(false);
    let events = trace::take_events();
    (outcome, events)
}

/// `outer` covers `inner`: same thread, earlier-or-equal start, later-or-
/// equal end, strictly shallower depth.
fn covers(outer: &TraceEvent, inner: &TraceEvent) -> bool {
    outer.tid == inner.tid
        && outer.depth < inner.depth
        && outer.start_ns <= inner.start_ns
        && inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns
}

fn enclosing<'a>(
    events: &'a [TraceEvent],
    inner: &TraceEvent,
    name: &str,
) -> Option<&'a TraceEvent> {
    events.iter().find(|e| e.name == name && covers(e, inner))
}

#[test]
fn spans_nest_across_driver_cache_and_engine_layers() {
    let _guard = SERIAL.lock().unwrap();
    let (outcome, events) = traced_run(&spec());
    assert_eq!(outcome.report.errors, 0);

    let named = |name: &'static str| events.iter().filter(move |e| e.name == name);
    for required in [
        "driver.session",
        "driver.step",
        "cache.execute",
        "engine.execute",
        "engine.plan",
        "engine.scan",
        "engine.aggregate",
        "engine.finalize",
        "cache.lookup",
        "data.chunk",
    ] {
        assert!(
            named(required).count() > 0,
            "no `{required}` span recorded; got names {:?}",
            events
                .iter()
                .map(|e| e.name)
                .collect::<std::collections::BTreeSet<_>>()
        );
    }

    // Universal containment, layer by layer: every inner span sits inside
    // an instance of its expected parent on the same thread.
    for (inner, outer) in [
        ("engine.scan", "engine.execute"),
        ("engine.aggregate", "engine.execute"),
        ("cache.lookup", "cache.execute"),
        ("cache.execute", "driver.step"),
        ("driver.step", "driver.session"),
    ] {
        for span in named(inner) {
            assert!(
                enclosing(&events, span, outer).is_some(),
                "`{inner}` span at {} not covered by any `{outer}`",
                span.start_ns
            );
        }
    }

    // And at least one complete chain reaches from the session root down
    // to a morsel scan: session ⊇ step ⊇ cache ⊇ engine ⊇ scan.
    let full_chain = named("engine.scan").any(|scan| {
        enclosing(&events, scan, "engine.execute")
            .and_then(|exec| enclosing(&events, exec, "cache.execute"))
            .and_then(|cached| enclosing(&events, cached, "driver.step"))
            .and_then(|step| enclosing(&events, step, "driver.session"))
            .is_some()
    });
    assert!(full_chain, "no scan span chained up to a session root");

    // Span categories name their layer.
    for e in &events {
        let expected = e.name.split('.').next().unwrap();
        assert_eq!(e.cat, expected, "span `{}` mis-categorized", e.name);
    }
}

#[test]
fn metrics_snapshot_and_phase_breakdown_reach_the_report() {
    let _guard = SERIAL.lock().unwrap();
    let outcome = Driver::execute(&spec()).unwrap();
    let report = &outcome.report;
    assert_eq!(report.errors, 0);

    // Fresh executions were counted at the exec-stats level.
    assert!(report.exec.rows_scanned > 0, "rows_scanned not promoted");
    assert!(report.exec.rows_matched > 0, "rows_matched not promoted");

    let metrics = report.metrics.as_ref().expect("collect_metrics snapshot");
    let counter = |name: &str| {
        metrics
            .counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    };
    assert!(counter("engine.queries") > 0);
    assert_eq!(counter("engine.rows_scanned"), report.exec.rows_scanned);
    assert_eq!(counter("driver.sessions"), report.sessions as u64);
    assert!(
        counter("cache.hits") + counter("cache.misses") > 0,
        "cache counters not promoted"
    );

    let hist_names: Vec<&str> = metrics.histograms.iter().map(|h| h.name.as_str()).collect();
    for required in [
        "cache.phase.lookup",
        "driver.phase.steer",
        "driver.phase.step",
        "engine.phase.plan",
        "engine.phase.scan",
    ] {
        assert!(
            hist_names.contains(&required),
            "missing {required} in {hist_names:?}"
        );
    }
    // One step-phase sample per executed step: the initial render of each
    // session plus every recorded interaction.
    let step_hist = metrics
        .histograms
        .iter()
        .find(|h| h.name == "driver.phase.step")
        .unwrap();
    assert_eq!(
        step_hist.count,
        report.interactions + report.sessions as u64
    );

    let phases = report.phase_breakdown.as_ref().expect("phase breakdown");
    assert!(!phases.is_empty());
    let share_sum: f64 = phases.iter().map(|p| p.share).sum();
    assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
    // Heaviest-first ordering, metric names rewritten to phase names.
    assert!(phases.windows(2).all(|w| w[0].total_ms >= w[1].total_ms));
    assert!(phases.iter().any(|p| p.phase == "engine.scan"));

    // The report (with metrics inline) still round-trips through JSON.
    let parsed = simba_driver::RunReport::from_json(&report.to_json()).unwrap();
    assert_eq!(&parsed, report);

    // Without the opt-in, the observability sections stay absent.
    let mut dark = spec();
    dark.collect_metrics = false;
    let dark_outcome = Driver::execute(&dark).unwrap();
    assert!(dark_outcome.report.metrics.is_none());
    assert!(dark_outcome.report.phase_breakdown.is_none());
    // ... but exec counters are always on (they are free).
    assert_eq!(dark_outcome.report.exec, report.exec);
}

#[test]
fn open_loop_reports_queue_delay_and_corrected_response() {
    let _guard = SERIAL.lock().unwrap();
    let mut open = spec();
    // A deliberately over-committed arrival rate: sessions queue up, so
    // scheduled-vs-actual lateness must show up in the corrected view.
    open.sessions = 6;
    open.workers = 2;
    open.arrival = ArrivalSpec::Open {
        rate_per_sec: 10_000.0,
    };
    let report = Driver::execute(&open).unwrap().report;
    assert_eq!(report.errors, 0);

    let queue = report.queue_delay.as_ref().expect("open loop queue delay");
    let response = report
        .response
        .as_ref()
        .expect("open loop response summary");
    assert_eq!(queue.count as usize, report.sessions);
    assert!(response.count > 0);
    // Response time = service time + the lateness a session inherited, so
    // its tail can only be at or above the raw latency tail.
    assert!(response.max_us >= report.latency.max_us);

    // Closed loop: neither section applies.
    let closed = Driver::execute(&spec()).unwrap().report;
    assert!(closed.queue_delay.is_none());
    assert!(closed.response.is_none());
}
